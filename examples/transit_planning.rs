//! Transit planning end to end: the paper's motivating example as code.
//!
//! Generates a synthetic city transit network, finds rebranded near-duplicate
//! routes with the overlap joinable search, and plans a transfer network
//! around a chosen corridor with the coverage joinable search — then persists
//! the index image a planning service would reload at startup.
//!
//! ```text
//! cargo run --release --example transit_planning
//! ```

use joinable_spatial_search::dits::{
    decode_local, encode_local, DatasetNode, DitsLocal, DitsLocalConfig,
};
use joinable_spatial_search::spatial::Grid;
use joinable_spatial_search::transit::{
    find_near_duplicates, generate_network, plan_transfers, NearDuplicateConfig, NetworkConfig,
    TransferPlanConfig,
};

fn main() {
    // 1. A synthetic city: grid bus routes, radial metro lines and a few
    //    rebranded duplicates.
    let network = generate_network(&NetworkConfig {
        grid_routes: 24,
        radial_routes: 10,
        duplicates: 6,
        ..NetworkConfig::default()
    });
    println!("generated {} routes", network.len());

    // 2. Near-duplicate detection (OJSP): which routes are the same shape
    //    under a different name?
    let duplicates = find_near_duplicates(&network, &NearDuplicateConfig::default());
    println!("\nnear-duplicate pairs (overlap ≥ 80% of the smaller route):");
    for pair in duplicates.iter().take(8) {
        println!(
            "  routes {:>2} and {:>2}: {:>3} shared cells ({:.0}% overlap)",
            pair.first,
            pair.second,
            pair.shared_cells,
            pair.overlap_fraction * 100.0
        );
    }

    // 3. Transfer planning (CJSP): extend the first bus corridor with up to
    //    five connected routes that maximise the covered area.
    let corridor = network[0].clone();
    let plan = plan_transfers(
        &network,
        &corridor,
        &TransferPlanConfig {
            k: 5,
            ..TransferPlanConfig::default()
        },
    );
    println!(
        "\ntransfer plan around '{}' ({} → {} covered cells):",
        corridor.name, plan.query_coverage, plan.coverage
    );
    for (route, transfer) in plan.selected.iter().zip(plan.transfers.iter()) {
        let name = network
            .iter()
            .find(|r| r.id == *route)
            .map(|r| r.name.as_str())
            .unwrap_or("?");
        println!(
            "  transfer to {:<20} at ({:>8.4}, {:>7.4}), {:.1} cells away",
            name, transfer.location.x, transfer.location.y, transfer.distance_cells
        );
    }

    // 4. Persist the index a planning service would serve from, and prove the
    //    image reloads losslessly.
    let grid = Grid::global(13).expect("valid resolution");
    let nodes: Vec<DatasetNode> = network
        .iter()
        .filter_map(|r| DatasetNode::from_dataset(&grid, &r.to_dataset(0.005)).ok())
        .collect();
    let index = DitsLocal::build(nodes, DitsLocalConfig::default());
    let image = encode_local(&index);
    let reloaded = decode_local(&image).expect("image decodes");
    println!(
        "\npersisted index image: {} KiB for {} routes; reload check: {} datasets",
        image.len() / 1024,
        index.dataset_count(),
        reloaded.dataset_count()
    );
}
