//! Approximate vs exact overlap joinable search.
//!
//! Builds a corpus of route-like datasets, runs the exact OJSP through
//! DITS-L and the approximate pipeline (MinHash sketches + LSH Ensemble
//! candidates + exact re-ranking), and reports the recall and the amount of
//! work each path performed.
//!
//! ```text
//! cargo run --release --example approximate_search
//! ```

use joinable_spatial_search::approx_join::{recall_at_k, ApproxConfig, ApproxOverlapIndex};
use joinable_spatial_search::dits::{overlap_search, DatasetNode, DitsLocal, DitsLocalConfig};
use joinable_spatial_search::spatial::{CellSet, DatasetId, Grid, Point, SpatialDataset};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let grid = Grid::global(12).expect("valid resolution");

    // A corpus of 400 synthetic routes around Washington, D.C. — a handful of
    // them deliberately retrace the query corridor so there is something
    // worth finding.
    let datasets: Vec<SpatialDataset> = (0..400u32)
        .map(|i| {
            let lon = -77.3 + f64::from(i % 40) * 0.015;
            let lat = 38.7 + f64::from(i / 40) * 0.03;
            route(i, lon, lat, 0.004, 60)
        })
        .collect();
    let query_points: Vec<Point> = (0..80)
        .map(|i| Point::new(-77.3 + i as f64 * 0.004, 38.7 + i as f64 * 0.0024))
        .collect();
    let query = CellSet::from_points(&grid, &query_points);

    // Cell sets once, shared by both paths.
    let cells: Vec<(DatasetId, CellSet)> = datasets
        .iter()
        .filter_map(|d| d.to_cell_set(&grid).ok().map(|c| (d.id, c)))
        .collect();

    // Exact path: DITS-L + OverlapSearch.
    let nodes: Vec<DatasetNode> = cells
        .iter()
        .filter_map(|(id, c)| DatasetNode::from_cell_set(*id, c.clone()))
        .collect();
    let index = DitsLocal::build(nodes, DitsLocalConfig::default());
    let started = Instant::now();
    let (exact, stats) = overlap_search(&index, &query, 10);
    let exact_time = started.elapsed();

    // Approximate path: sketches + LSH candidates + exact re-ranking.
    let approx_index = ApproxOverlapIndex::build(
        cells.iter().map(|(id, c)| (*id, c)),
        ApproxConfig::default(),
    );
    let started = Instant::now();
    let approx = approx_index.search(&query, 10);
    let approx_time = started.elapsed();

    println!(
        "corpus: {} datasets, query covers {} cells\n",
        cells.len(),
        query.len()
    );
    println!(
        "exact OJSP       : {:?} ({} leaves verified)",
        exact_time, stats.leaves_verified
    );
    println!(
        "approximate OJSP : {:?} (sketches: {} KiB)\n",
        approx_time,
        approx_index.sketch_memory_bytes() / 1024
    );

    println!(
        "{:<10} {:>14} {:>16}",
        "rank", "exact overlap", "approx overlap"
    );
    for i in 0..10 {
        let e = exact
            .get(i)
            .map(|r| format!("{} ({})", r.overlap, r.dataset))
            .unwrap_or_default();
        let a = approx
            .get(i)
            .map(|r| format!("{} ({})", r.overlap, r.dataset))
            .unwrap_or_default();
        println!("{:<10} {:>14} {:>16}", i + 1, e, a);
    }

    let corpus: HashMap<DatasetId, CellSet> = cells.into_iter().collect();
    let recall = recall_at_k(&approx, &exact, &corpus, &query);
    println!("\nrecall@10 of the approximate result: {recall:.2}");
}

/// A route of `n` points drifting north-east from a start position.
fn route(id: u32, lon: f64, lat: f64, step: f64, n: usize) -> SpatialDataset {
    SpatialDataset::named(
        id,
        format!("route-{id}"),
        (0..n)
            .map(|i| Point::new(lon + i as f64 * step, lat + i as f64 * step * 0.6))
            .collect(),
    )
}
