//! Federated search across the five (synthetic) open-data portals of the
//! paper: one `SearchRequest` per search kind goes to the framework, the
//! query engine routes the batch with DITS-G, ships clipped queries to the
//! candidate sources in parallel (one source = one shard), and aggregates
//! their local results — while the communication cost of every exchange is
//! measured in actual bytes.
//!
//! The tuple-returning `ojsp`/`cjsp`/`run_ojsp`/`run_cjsp` methods shown
//! here in earlier revisions are deprecated; `SearchRequest` +
//! `MultiSourceFramework::search` is the query surface.  (For the same
//! requests over a real TCP federation, see `examples/federated_tcp.rs`.)
//!
//! ```text
//! cargo run --release --example multi_source_federation
//! ```

use joinable_spatial_search::datagen::{
    generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale,
};
use joinable_spatial_search::multisource::{
    CommConfig, DistributionStrategy, FrameworkConfig, MultiSourceFramework, SearchRequest,
};
use joinable_spatial_search::spatial::SpatialDataset;

fn main() {
    // Generate all five sources at 1/50 of the paper's size.
    let generator = GeneratorConfig {
        scale: SourceScale::Fiftieth,
        seed: 2025,
        max_points_per_dataset: Some(500),
    };
    let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
        .iter()
        .map(|p| (p.name.to_string(), generate_source(p, &generator)))
        .collect();
    for (name, datasets) in &source_data {
        println!("{name:<18} {:>5} datasets", datasets.len());
    }

    // Pick ten query datasets from the federation.
    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 10, 3);

    let comm_config = CommConfig::default();
    for strategy in [
        DistributionStrategy::Broadcast,
        DistributionStrategy::Pruned,
        DistributionStrategy::PrunedClipped,
    ] {
        let framework = MultiSourceFramework::try_build(
            &source_data,
            FrameworkConfig {
                resolution: 12,
                leaf_capacity: 10,
                delta_cells: 10.0,
                strategy,
                workers: 0, // one engine worker per CPU
                comm: comm_config,
            },
        )
        .expect("static configuration is valid");

        // One unified request per search kind; each batch goes through the
        // parallel QueryEngine (every (query, candidate source) pair is one
        // shard task).
        let ojsp = framework
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(10))
            .expect("in-process search");
        let cjsp = framework
            .search(&SearchRequest::cjsp_batch(queries.clone()).k(10))
            .expect("in-process search");
        let knn = framework
            .search(&SearchRequest::knn_batch(queries.clone()).k(5))
            .expect("in-process search");
        println!(
            "\nstrategy {:?} ({} engine workers)\n  OJSP: {} requests, {} bytes, {:.1} ms transmission, {:.1} ms search, {} index nodes visited",
            strategy,
            framework.engine().effective_workers(),
            ojsp.comm.requests,
            ojsp.comm.total_bytes(),
            ojsp.comm.transmission_time_ms(&comm_config),
            ojsp.elapsed.as_secs_f64() * 1e3,
            ojsp.search.map(|s| s.nodes_visited).unwrap_or(0),
        );
        println!(
            "  CJSP: {} requests, {} bytes, {:.1} ms transmission, {:.1} ms search",
            cjsp.comm.requests,
            cjsp.comm.total_bytes(),
            cjsp.comm.transmission_time_ms(&comm_config),
            cjsp.elapsed.as_secs_f64() * 1e3,
        );
        println!(
            "  kNN : {} requests, {} bytes ({} sources contacted)",
            knn.comm.requests,
            knn.comm.total_bytes(),
            knn.comm.sources_contacted,
        );
        // Show the best federated match of the first query.
        let answers = ojsp.overlap().expect("OJSP answers");
        if let Some((source, result)) = answers[0].results.first() {
            println!(
                "  best match for query 0: dataset {} of source {} ({} shared cells)",
                result.dataset, source, result.overlap
            );
        }
        let neighbors = knn.knn().expect("kNN answers");
        if let Some((source, neighbor)) = neighbors[0].neighbors.first() {
            println!(
                "  nearest dataset to query 0: dataset {} of source {} (distance {:.1} cells)",
                neighbor.dataset, source, neighbor.distance
            );
        }
    }
}
