//! Price-aware dataset combination search — the paper's future-work
//! direction turned into a runnable marketplace scenario.
//!
//! A city planner holds a query corridor and a budget.  The marketplace
//! prices every dataset by its spatial coverage; the example ranks datasets
//! by value for money, runs the budgeted coverage search, compares it with
//! the exhaustive optimum on a small curated pool, and shows how
//! demand-weighted cells change the selection.
//!
//! ```text
//! cargo run --release --example data_marketplace
//! ```

use joinable_spatial_search::dits::{DatasetNode, DitsLocal, DitsLocalConfig};
use joinable_spatial_search::pricing::{
    budgeted_coverage_search, optimal_combination, rank_by_value, weighted_coverage_search,
    BudgetedConfig, CellWeights, PriceBook, PricingModel, WeightedConfig,
};
use joinable_spatial_search::spatial::{CellSet, Grid, Point, SpatialDataset};

fn main() {
    let grid = Grid::global(12).expect("valid resolution");

    // Twelve datasets for sale around the query corridor: local routes,
    // larger regional extracts, and one far-away dataset nobody should buy.
    let datasets: Vec<SpatialDataset> = (0..12u32)
        .map(|i| {
            let lon = -77.20 + f64::from(i % 6) * 0.06;
            let lat = 38.82 + f64::from(i / 6) * 0.08;
            let n = 30 + (i as usize % 4) * 25;
            route(i, lon, lat, 0.005, n)
        })
        .collect();
    let nodes: Vec<DatasetNode> = datasets
        .iter()
        .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        .collect();
    let index = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());

    // The query corridor the planner starts from.
    let query_points: Vec<Point> = (0..50)
        .map(|i| Point::new(-77.20 + i as f64 * 0.006, 38.84 + i as f64 * 0.002))
        .collect();
    let query = CellSet::from_points(&grid, &query_points);

    // Coverage-based pricing: one currency unit per 2 covered cells, minimum 3.
    let model = PricingModel::PerCell {
        rate: 0.5,
        minimum: 3.0,
    };
    let prices = PriceBook::from_model(&model, nodes.iter());

    println!("value-for-money ranking (gain per currency unit):");
    for row in rank_by_value(&nodes, &query, &prices).iter().take(5) {
        println!(
            "  dataset {:>2}: overlap {:>3}, gain {:>3}, price {:>6.1}, value {:>5.2}",
            row.dataset, row.overlap, row.gain, row.price, row.value
        );
    }

    // Budgeted coverage search at three budget levels.
    for budget in [10.0, 25.0, 60.0] {
        let (result, _) =
            budgeted_coverage_search(&index, &query, &prices, BudgetedConfig::new(budget, 10.0));
        println!(
            "\nbudget {budget:>5.1}: bought {:?} for {:.1}, coverage {} cells (query alone {})",
            result.datasets, result.spent, result.coverage, result.query_coverage
        );
    }

    // On a small curated pool the exhaustive optimum is affordable to compute.
    let pool: Vec<DatasetNode> = nodes.iter().take(10).cloned().collect();
    let optimum = optimal_combination(&pool, &query, &prices, 25.0, 10.0, 4);
    println!(
        "\nexhaustive optimum at budget 25 over a 10-dataset pool: {:?} (coverage {}, price {:.1})",
        optimum.datasets, optimum.coverage, optimum.price
    );

    // Demand-weighted planning: cells along the downtown segment are worth
    // five times as much as the periphery.
    let mut weights = CellWeights::uniform(1.0);
    for p in query_points.iter().take(20) {
        if let Ok(cell) = grid.cell_of(p) {
            weights.set(cell, 5.0);
        }
    }
    let (weighted, _) =
        weighted_coverage_search(&index, &query, &weights, WeightedConfig::new(3, 10.0));
    println!(
        "\ndemand-weighted selection (k = 3): {:?}, covered weight {:.1}, {} cells",
        weighted.datasets, weighted.covered_weight, weighted.coverage
    );
}

/// A route of `n` points drifting north-east from a start position.
fn route(id: u32, lon: f64, lat: f64, step: f64, n: usize) -> SpatialDataset {
    SpatialDataset::named(
        id,
        format!("offer-{id}"),
        (0..n)
            .map(|i| Point::new(lon + i as f64 * step, lat + i as f64 * step * 0.5))
            .collect(),
    )
}
