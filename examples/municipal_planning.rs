//! The paper's motivating scenario (Example 1): a municipal planner holds a
//! query dataset of transit stops in Washington, D.C. and wants
//!
//! 1. the `k` datasets with the maximum spatial **overlap** (to study the
//!    same corridors — OJSP), and
//! 2. the `k` connected datasets with the maximum spatial **coverage** (to
//!    plan transfer routes that reach new areas — CJSP).
//!
//! The data here is the synthetic Transit source (Maryland + D.C. routes)
//! from the `datagen` crate.
//!
//! ```text
//! cargo run --release --example municipal_planning
//! ```

use joinable_spatial_search::datagen::{
    generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale,
};
use joinable_spatial_search::dits::{
    coverage_search, overlap_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig,
};
use joinable_spatial_search::spatial::{CellSet, Grid};

fn main() {
    // The Transit-dataset profile: ~2 000 route datasets around Maryland and
    // Washington D.C. (scaled down 1/10 so the example runs in seconds).
    let profile = &paper_sources()[3];
    let datasets = generate_source(
        profile,
        &GeneratorConfig {
            scale: SourceScale::Tenth,
            seed: 42,
            max_points_per_dataset: Some(500),
        },
    );
    println!("{}: {} datasets generated", profile.name, datasets.len());

    let grid = Grid::global(12).expect("valid resolution");
    let nodes: Vec<DatasetNode> = datasets
        .iter()
        .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        .collect();
    let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 10 });

    // The query: one of the portal's own route datasets, as in the paper's
    // workload ("randomly select 50 datasets as the query datasets").
    let query_dataset = &select_queries(&datasets, 1, 7)[0];
    let query = CellSet::from_points(&grid, &query_dataset.points);
    println!(
        "query: {} ({} points, {} cells)\n",
        query_dataset.name,
        query_dataset.len(),
        query.len()
    );

    // Task 1 — overlap joinable search (Fig. 1(b)).
    let (overlaps, _) = overlap_search(&index, &query, 4);
    println!("OJSP: 4 datasets with the maximum overlap");
    for r in &overlaps {
        let d = &datasets[r.dataset as usize];
        println!(
            "  {:<24} shares {:>4} cells with the query",
            d.name, r.overlap
        );
    }

    // Task 2 — coverage joinable search (Fig. 1(c)): connected routes that
    // extend the reachable area the most.
    let (coverage, _) = coverage_search(&index, &query, CoverageConfig::new(4, 10.0));
    println!("\nCJSP: 4 connected datasets with the maximum coverage (δ = 10 cells)");
    for (id, gain) in coverage.datasets.iter().zip(coverage.gains.iter()) {
        let d = &datasets[*id as usize];
        println!("  {:<24} adds {:>4} new cells", d.name, gain);
    }
    println!(
        "\ncoverage grows from {} cells (query alone) to {} cells",
        coverage.query_coverage, coverage.coverage
    );
}
