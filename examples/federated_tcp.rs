//! A real 3-source TCP federation: every data source serves the framed
//! multi-source protocol on its own loopback socket, the data center
//! bootstraps DITS-G by polling the sockets for root summaries, and the same
//! `SearchRequest`s that drive the in-process benchmarks execute over the
//! wire — with byte-identical answers and byte-identical communication
//! accounting.
//!
//! The servers here run as threads of this process for a self-contained
//! demo; the `source-server` binary serves the identical protocol as a
//! standalone process (`source-server --id 0 --data points.tsv …`), so the
//! same client code federates sources on other machines.
//!
//! ```text
//! cargo run --release --example federated_tcp
//! ```

use joinable_spatial_search::datagen::{
    generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale,
};
use joinable_spatial_search::dits::DitsLocalConfig;
use joinable_spatial_search::multisource::{
    DataCenter, DataSource, EngineConfig, QueryEngine, SearchRequest, SourceServer, TcpTransport,
};
use joinable_spatial_search::spatial::{Grid, SpatialDataset};

fn main() {
    let resolution = 12;
    let leaf_capacity = 10;
    let delta_cells = 10.0;

    // Three synthetic portals (a subset of the paper's five).
    let generator = GeneratorConfig {
        scale: SourceScale::Fiftieth,
        seed: 7,
        max_points_per_dataset: Some(400),
    };
    let grid = Grid::global(resolution).expect("valid resolution");
    let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
        .iter()
        .take(3)
        .map(|p| (p.name.to_string(), generate_source(p, &generator)))
        .collect();

    // One TCP server per source, each on its own ephemeral loopback port.
    let mut endpoints = Vec::new();
    for (id, (name, datasets)) in source_data.iter().enumerate() {
        let source = DataSource::build(
            id as u16,
            name.clone(),
            grid,
            datasets,
            DitsLocalConfig { leaf_capacity },
        );
        let server = SourceServer::spawn("127.0.0.1:0", source).expect("bind loopback");
        println!(
            "{name:<18} {:>5} datasets  serving on {}",
            datasets.len(),
            server.addr()
        );
        endpoints.push(server.endpoint());
    }

    // The data center learns the federation by polling summaries over TCP.
    let transport = TcpTransport::new(endpoints);
    let center =
        DataCenter::from_transport(&transport, leaf_capacity).expect("summary poll over TCP");
    println!(
        "\ndata center bootstrapped: {} sources registered in DITS-G\n",
        center.global().source_count()
    );

    // The same unified requests the in-process deployment runs.
    let engine = QueryEngine::new(
        &center,
        &transport,
        EngineConfig {
            delta_cells,
            ..EngineConfig::default()
        },
    );
    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 8, 5);

    for (label, request) in [
        ("OJSP", SearchRequest::ojsp_batch(queries.clone()).k(10)),
        ("CJSP", SearchRequest::cjsp_batch(queries.clone()).k(5)),
        ("kNN ", SearchRequest::knn_batch(queries.clone()).k(5)),
    ] {
        let response = engine.run(&request).expect("federated search");
        println!(
            "{label}: {} queries, {} requests over TCP, {} protocol bytes, {:.1} ms wall clock",
            response.results.len(),
            response.comm.requests,
            response.comm.total_bytes(),
            response.elapsed.as_secs_f64() * 1e3,
        );
        for timing in &response.per_source {
            println!(
                "      source {}: {} requests, {} bytes, {:.2} ms on the wire",
                timing.source,
                timing.requests,
                timing.bytes,
                timing.elapsed.as_secs_f64() * 1e3,
            );
        }
    }

    // Show the best federated match of the first query.
    let response = engine
        .run(&SearchRequest::ojsp(queries[0].clone()).k(1))
        .expect("federated search");
    if let Some((source, result)) = response.overlap().expect("OJSP answers")[0].results.first() {
        println!(
            "\nbest match for query {}: dataset {} of source {source} ({} shared cells)",
            queries[0].id, result.dataset, result.overlap
        );
    }
}
