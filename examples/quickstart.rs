//! Quickstart: index a handful of spatial datasets, then run both joinable
//! searches — overlap (OJSP) and coverage (CJSP) — against a query dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use joinable_spatial_search::dits::{
    coverage_search, overlap_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig,
};
use joinable_spatial_search::spatial::{CellSet, Grid, Point, SpatialDataset};

fn main() {
    // 1. A grid over the whole globe at resolution θ = 12 (the paper's
    //    default: cells of roughly 10 km x 5 km).
    let grid = Grid::global(12).expect("valid resolution");

    // 2. A small "data source": five bus-route-like datasets around
    //    Washington, D.C., one of them far away in Beijing.
    let datasets = [
        route(0, -77.04, 38.90, 0.010, 40),
        route(1, -77.02, 38.91, 0.012, 35),
        route(2, -76.99, 38.93, 0.015, 30),
        route(3, -76.95, 38.96, 0.012, 30),
        route(4, 116.36, 39.88, 0.010, 40), // Beijing — never joinable here
    ];

    // 3. Build the DITS-L local index.
    let nodes: Vec<DatasetNode> = datasets
        .iter()
        .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        .collect();
    let index = DitsLocal::build(nodes, DitsLocalConfig::default());
    println!(
        "indexed {} datasets ({} tree nodes, ~{} KiB)",
        index.dataset_count(),
        index.node_count(),
        index.memory_bytes() / 1024
    );

    // 4. The query: a short trip through downtown D.C.
    let query_points: Vec<Point> = (0..25)
        .map(|i| Point::new(-77.04 + i as f64 * 0.002, 38.90 + i as f64 * 0.001))
        .collect();
    let query = CellSet::from_points(&grid, &query_points);
    println!("query covers {} grid cells", query.len());

    // 5. Overlap joinable search: which datasets share the most cells?
    let (overlaps, stats) = overlap_search(&index, &query, 3);
    println!("\nOJSP top-{}:", overlaps.len());
    for r in &overlaps {
        println!(
            "  dataset {} overlaps the query in {} cells",
            r.dataset, r.overlap
        );
    }
    println!(
        "  (visited {} tree nodes, pruned {}, verified {} leaves)",
        stats.nodes_visited, stats.nodes_pruned, stats.leaves_verified
    );

    // 6. Coverage joinable search: which connected datasets extend the query
    //    the furthest?
    let (coverage, _) = coverage_search(&index, &query, CoverageConfig::new(3, 10.0));
    println!("\nCJSP selection (δ = 10 cells):");
    for (id, gain) in coverage.datasets.iter().zip(coverage.gains.iter()) {
        println!("  dataset {id} adds {gain} new cells");
    }
    println!(
        "  total coverage {} cells (query alone: {})",
        coverage.coverage, coverage.query_coverage
    );
}

/// A simple synthetic route: `n` points drifting north-east from a start.
fn route(id: u32, lon: f64, lat: f64, step: f64, n: usize) -> SpatialDataset {
    SpatialDataset::named(
        id,
        format!("route-{id}"),
        (0..n)
            .map(|i| Point::new(lon + i as f64 * step, lat + i as f64 * step * 0.6))
            .collect(),
    )
}
