//! Index maintenance (Appendix IX-C / Figs. 21–22): spatial portals churn,
//! so DITS-L supports inserting, updating and deleting datasets without a
//! rebuild.  This example applies a batch of each operation and shows that
//! search results follow the changes immediately.
//!
//! ```text
//! cargo run --release --example index_maintenance
//! ```

use joinable_spatial_search::baselines::OverlapIndex;
use joinable_spatial_search::datagen::{
    generate_source, paper_sources, GeneratorConfig, SourceScale,
};
use joinable_spatial_search::dits::{DatasetNode, DitsLocal, DitsLocalConfig};
use joinable_spatial_search::spatial::{CellSet, Grid, Point, SpatialDataset};
use std::time::Instant;

fn main() {
    let grid = Grid::global(12).expect("valid resolution");
    let profile = &paper_sources()[3]; // Transit
    let datasets = generate_source(
        profile,
        &GeneratorConfig {
            scale: SourceScale::Fiftieth,
            seed: 9,
            max_points_per_dataset: Some(300),
        },
    );
    let nodes: Vec<DatasetNode> = datasets
        .iter()
        .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        .collect();
    let mut index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 10 });
    println!("initial index: {} datasets", index.dataset_count());

    // --- batch insert -----------------------------------------------------
    let start = Instant::now();
    let mut inserted = 0;
    for i in 0..100u32 {
        let dataset = synthetic_route(10_000 + i, -76.8 + i as f64 * 0.002, 39.2);
        let node = DatasetNode::from_dataset(&grid, &dataset).expect("non-empty");
        if index.insert(node) {
            inserted += 1;
        }
    }
    println!(
        "inserted {} datasets in {:.2} ms (now {} datasets)",
        inserted,
        start.elapsed().as_secs_f64() * 1e3,
        index.dataset_count()
    );

    // A query over the newly inserted corridor finds the new data.
    let query = CellSet::from_points(&grid, &synthetic_route(0, -76.8, 39.2).points);
    let results = OverlapIndex::overlap_search(&index, &query, 3);
    println!(
        "top matches after insert: {:?}",
        results.iter().map(|r| r.dataset).collect::<Vec<_>>()
    );

    // --- batch update -----------------------------------------------------
    let start = Instant::now();
    let mut updated = 0;
    for i in 0..50u32 {
        let dataset = synthetic_route(10_000 + i, -75.9, 38.5 + i as f64 * 0.002);
        let node = DatasetNode::from_dataset(&grid, &dataset).expect("non-empty");
        if index.update(node) {
            updated += 1;
        }
    }
    println!(
        "updated {} datasets in {:.2} ms",
        updated,
        start.elapsed().as_secs_f64() * 1e3
    );
    assert!(index.check_invariants().is_ok());

    // --- batch delete -----------------------------------------------------
    let start = Instant::now();
    let mut deleted = 0;
    for i in 50..100u32 {
        if index.delete(10_000 + i) {
            deleted += 1;
        }
    }
    println!(
        "deleted {} datasets in {:.2} ms (now {} datasets)",
        deleted,
        start.elapsed().as_secs_f64() * 1e3,
        index.dataset_count()
    );
    assert!(index.check_invariants().is_ok());
    println!("structural invariants hold after every batch ✔");
}

/// A short synthetic route used for the churn.
fn synthetic_route(id: u32, lon: f64, lat: f64) -> SpatialDataset {
    SpatialDataset::new(
        id,
        (0..30)
            .map(|j| Point::new(lon + j as f64 * 0.001, lat + j as f64 * 0.0008))
            .collect(),
    )
}
