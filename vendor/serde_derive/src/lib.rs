//! No-op stand-ins for serde's `Serialize` / `Deserialize` derives.
//!
//! The workspace builds in an offline environment with no crates.io access,
//! and nothing in the repository serialises through serde's data model (the
//! wire and persistence codecs are explicit, see `dits::persist` and
//! `multisource::message`).  The derives therefore only need to *exist* so
//! `#[derive(Serialize, Deserialize)]` attributes compile; they emit no code.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
