//! Offline minimal stand-in for the `mio` crate (1.x-style API).
//!
//! Provides the readiness-loop subset `crates/net` uses: an epoll-backed
//! [`Poll`] with a [`Registry`] for (re/de)registering any
//! [`AsRawFd`] source under a caller-chosen [`Token`] and [`Interest`],
//! level-triggered [`Events`] iteration, and a cross-thread [`Waker`].
//!
//! The real crate abstracts over kqueue/IOCP and supports edge triggering;
//! this stand-in is Linux-epoll only (the only platform the workspace
//! builds and runs on) and speaks to the kernel through direct `extern
//! "C"` declarations of the libc symbols `std` already links — no new
//! dependency, matching the offline-vendor policy in `vendor/README.md`.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw epoll FFI
// ---------------------------------------------------------------------------

const EPOLL_CLOEXEC: i32 = 0o2000000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EINTR: i32 = 4;

/// Kernel `struct epoll_event`. The x86-64 ABI packs it to 12 bytes; every
/// other architecture lays it out naturally (16 bytes) — getting this wrong
/// corrupts the token of every delivered event, so both layouts are spelled
/// out and size-checked in the tests.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Tokens and interests
// ---------------------------------------------------------------------------

/// Caller-chosen identifier delivered back with every readiness event for
/// the registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest set: readable, writable, or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (includes peer-hangup notification).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// The union of `self` and `other`.
    // The name mirrors the real crate's `Interest::add`, which is not the
    // `std::ops::Add` trait (that union is spelled `|`, below).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether the set contains read interest.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether the set contains write interest.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = 0;
        if self.is_readable() {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Buffer the kernel fills with ready events on each [`Poll::poll`] call.
pub struct Events {
    buf: Vec<EpollEvent>,
    capacity: usize,
}

impl Events {
    /// A buffer able to receive up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events delivered by the most recent poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().map(|raw| Event {
            bits: raw.events,
            data: raw.data,
        })
    }

    /// Whether the most recent poll delivered no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One readiness event: the registered token plus what the source is ready
/// for.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    bits: u32,
    data: u64,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        Token(self.data as usize)
    }

    /// Ready for reading (or the peer closed — a read will observe EOF).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Ready for writing.
    pub fn is_writable(&self) -> bool {
        self.bits & EPOLLOUT != 0
    }

    /// The source hit an error condition (connect failure, reset).
    pub fn is_error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }

    /// The peer closed its end (half or full hangup).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (EPOLLHUP | EPOLLRDHUP) != 0
    }
}

// ---------------------------------------------------------------------------
// Poll and Registry
// ---------------------------------------------------------------------------

/// Handle for registering sources with the kernel readiness queue.
///
/// Shares the `epoll` fd with its owning [`Poll`]; obtained via
/// [`Poll::registry`] and usable from any thread (epoll_ctl is
/// thread-safe against a concurrent epoll_wait).
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = match event {
            Some(e) => e as *mut EpollEvent,
            None => std::ptr::null_mut(),
        };
        // SAFETY: `self.epfd` is a live epoll fd for the lifetime of the
        // owning `Poll`; `ptr` is null only for EPOLL_CTL_DEL, where the
        // kernel ignores it (post-2.6.9, the only kernels std supports).
        check(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Starts watching `source` for `interests`, tagging events with
    /// `token`.
    pub fn register<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interests.epoll_bits(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(&mut ev))
    }

    /// Replaces the interest set (and token) of an already-registered
    /// source.
    pub fn reregister<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interests.epoll_bits(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(&mut ev))
    }

    /// Stops watching `source`.
    pub fn deregister<S: AsRawFd + ?Sized>(&self, source: &S) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }
}

/// An epoll instance: blocks on [`Poll::poll`] until a registered source is
/// ready or the timeout elapses.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall wrapper; the returned fd is owned by the
        // Poll and closed on drop.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle for this instance.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one event is ready, `timeout` elapses
    /// (`None` = forever), or a signal arrives (EINTR is retried with the
    /// full timeout; callers wanting precise deadlines pass short
    /// timeouts and re-check their clock).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a nonzero timeout never busy-spins as 0 ms.
                let ms = d.as_millis();
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        events.buf.clear();
        loop {
            // SAFETY: the spare capacity of `buf` is `capacity` properly
            // aligned `EpollEvent` slots; the kernel writes at most
            // `capacity` of them and `set_len` publishes exactly the count
            // it reports.
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd,
                    events.buf.as_mut_ptr(),
                    events.capacity as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
            // SAFETY: see above — `n` slots were initialised by the kernel.
            unsafe { events.buf.set_len(n as usize) };
            return Ok(());
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poll and not closed elsewhere.
        unsafe { close(self.registry.epfd) };
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// Cross-thread wakeup for a blocked [`Poll::poll`].
///
/// Implemented as a socketpair self-pipe: `wake` writes a byte to one end,
/// the other end is registered readable under the waker's token. The pipe
/// is drained on every delivery, so wakes coalesce instead of accumulating.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Registers a new waker on `registry` under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        registry.register(&rx, token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Makes the next (or current) `poll` return with this waker's token.
    pub fn wake(&self) -> io::Result<()> {
        use std::io::Write;
        match (&self.tx).write(&[1]) {
            Ok(_) => Ok(()),
            // A full pipe means wakeups are already pending — coalesce.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wakeups; call when the waker's token is delivered.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_event_matches_kernel_abi_size() {
        let expected = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn interest_union_and_queries() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert_eq!(both.epoll_bits() & EPOLLOUT, EPOLLOUT);
        assert_eq!(both.epoll_bits() & EPOLLIN, EPOLLIN);
    }

    #[test]
    fn poll_times_out_empty_when_nothing_ready() {
        let mut poll = Poll::new().expect("epoll_create1");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .expect("poll");
        assert!(events.is_empty());
    }

    #[test]
    fn readable_event_carries_registered_token() {
        let mut poll = Poll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        poll.registry()
            .register(&b, Token(42), Interest::READABLE)
            .expect("register");

        (&a).write_all(b"x").expect("write");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        let got: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(got, vec![Token(42)]);
        assert!(events.iter().all(|e| e.is_readable()));
    }

    #[test]
    fn reregister_switches_interest_and_deregister_silences() {
        let mut poll = Poll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        (&a).write_all(b"x").expect("write");

        // Write interest only: a readable-but-unwanted byte stays silent
        // at the readable level, while the socket reports writable.
        poll.registry()
            .register(&b, Token(1), Interest::WRITABLE)
            .expect("register");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events.iter().any(|e| e.is_writable()));

        poll.registry()
            .reregister(&b, Token(2), Interest::READABLE)
            .expect("reregister");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_readable()));

        poll.registry().deregister(&b).expect("deregister");
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .expect("poll");
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_is_delivered_as_read_closed() {
        let mut poll = Poll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        poll.registry()
            .register(&b, Token(7), Interest::READABLE)
            .expect("register");
        drop(a);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events.iter().any(|e| e.is_read_closed()));
        // A read on the closed pair observes EOF, not an error.
        let mut buf = [0u8; 4];
        assert_eq!((&b).read(&mut buf).expect("read"), 0);
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_coalesces() {
        let mut poll = Poll::new().expect("epoll_create1");
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(99)).expect("waker"));
        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            for _ in 0..100 {
                w.wake().expect("wake");
            }
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .expect("poll");
        assert!(events.iter().any(|e| e.token() == Token(99)));
        handle.join().expect("join");
        waker.drain();
        // Drained: the next poll times out clean instead of re-firing.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .expect("poll");
        assert!(events.iter().all(|e| e.token() != Token(99)));
    }

    #[test]
    fn nonblocking_tcp_connect_reports_writable_on_completion() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking");

        let mut poll = Poll::new().expect("epoll_create1");
        poll.registry()
            .register(&stream, Token(3), Interest::WRITABLE)
            .expect("register");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_writable()));
    }
}
