//! Offline minimal stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` inner attribute),
//! range and tuple strategies, [`collection::vec`] / [`collection::hash_set`],
//! [`any`], and the `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! its case number, and the generator is seeded deterministically from the
//! test name, so failures reproduce exactly on re-run.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        self.next_u64() % bound
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let value = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; keep the interval half-open.
        if value < self.end {
            value
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// A strategy for any value of `T`'s whole domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of `element` with a size in `size`
    /// (best-effort: bounded retries when the element domain is small).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property assertion (carried out of the case closure).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines property tests: an optional `#![proptest_config(...)]` followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the enclosing property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..50, f in -2.0f64..2.0, n in 1usize..4) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec((0u32..8, 0u32..8), 2..6),
            s in crate::collection::hash_set(0u64..1000, 1..20),
            b in any::<u8>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() < 20);
            prop_assert!(u16::from(b) <= 255);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
