//! Offline minimal stand-in for the `rand` crate (0.9-style API).
//!
//! Provides the deterministic subset the workspace uses: a seedable
//! [`rngs::StdRng`] plus the [`Rng`] methods `random`, `random_range`, and
//! slice [`SliceRandom::shuffle`].  The generator is SplitMix64 — not
//! cryptographic, but statistically fine for synthetic data generation and
//! reproducible tests, which is all the repository needs.

use std::ops::Range;

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over a half-open interval.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[start, end)`.
    fn sample_uniform<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "empty random_range");
                // `abs_diff` keeps this correct for signed types; modulo bias
                // is negligible for the small spans used in this repository.
                let span = start.abs_diff(end) as u64;
                start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
        let unit: f64 = Standard::sample(rng);
        let value = start + unit * (end - start);
        // Rounding can land exactly on `end`; keep the interval half-open.
        if value < end {
            value
        } else {
            end.next_down().max(start)
        }
    }
}

/// Ranges samplable via [`Rng::random_range`].
///
/// A single blanket impl over [`SampleUniform`] (mirroring the real crate's
/// shape) so integer-literal ranges like `0..8` infer their type from the
/// surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value over `T`'s whole domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value drawn from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SampleRange, SampleUniform, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }
}
