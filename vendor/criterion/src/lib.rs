//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the `bench` crate uses — benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, `Bencher::iter`
//! and `iter_batched` — with a simple measurement loop: a short warm-up,
//! then timed batches, reporting the mean and best per-iteration time.
//! There is no statistical analysis, HTML report, or regression tracking;
//! the point is that `cargo bench` runs and prints comparable numbers in an
//! environment without crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` inputs are batched (accepted for API compatibility;
/// the stub always runs one setup per measured routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
    best: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            total: Duration::ZERO,
            best: Duration::MAX,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.best = self.best.min(elapsed);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.best = self.best.min(elapsed);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up pass, then the measured pass.
        let mut warmup = Bencher::new(1);
        f(&mut warmup);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut warmup = Bencher::new(1);
        f(&mut warmup, input);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Finishes the group (the stub reports per-benchmark, so this is a
    /// formatting no-op kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, bencher: &Bencher) {
        let mean = bencher.total / bencher.iters.max(1) as u32;
        println!(
            "{}/{id:<30} iters {:>4}  mean {:>12}  best {:>12}",
            self.name,
            bencher.iters,
            format_duration(mean),
            format_duration(bencher.best),
        );
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_count() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            let mut runs = 0u32;
            g.bench_function("inc", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("add", 5), &5u64, |b, n| b.iter(|| n + 1));
            g.bench_function(BenchmarkId::from_parameter(7), |b| {
                b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
            });
            g.finish();
            // 3 measured + 1 warm-up iteration per benchmark.
            assert_eq!(runs, 4);
        }
        assert_eq!(c.benchmarks_run, 3);
    }
}
