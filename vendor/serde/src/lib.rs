//! Offline stand-in for the `serde` façade.
//!
//! Re-exports the no-op derives so `use serde::{Deserialize, Serialize}`
//! plus `#[derive(Serialize, Deserialize)]` compile unchanged.  See
//! `vendor/README.md` for why the workspace vendors stubs instead of the
//! real crates.

pub use serde_derive::{Deserialize, Serialize};
