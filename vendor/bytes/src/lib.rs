//! Offline minimal stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the workspace's explicit binary codecs use
//! (`dits::persist`, `multisource::message`): [`Bytes`], [`BytesMut`], and
//! the [`Buf`] / [`BufMut`] reader/writer traits with the big-endian and
//! little-endian scalar accessors.  Unlike the real crate there is no
//! zero-copy sharing — `Bytes` owns a plain `Vec<u8>` — which is irrelevant
//! for correctness and for the byte-counting the experiments do.

use std::ops::Range;

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copied; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether any unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A new buffer holding the given sub-range of the unread bytes.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `at` unread bytes, leaving the rest
    /// in `self` (same contract as the real crate).
    ///
    /// # Panics
    ///
    /// Panics when fewer than `at` unread bytes remain.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to past end of Bytes");
        let head = self.slice(0..at);
        self.pos += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

macro_rules! get_scalar {
    ($name:ident, $ty:ty, $from:ident) => {
        /// Reads the scalar and advances the cursor.
        ///
        /// # Panics
        ///
        /// Panics when fewer than `size_of` bytes remain (same contract as
        /// the real crate); callers check `remaining()` first.
        fn $name(&mut self) -> $ty {
            const N: usize = std::mem::size_of::<$ty>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$ty>::$from(raw)
        }
    };
}

/// Sequential reader over a byte source.
pub trait Buf {
    /// Unread bytes left in the source.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    get_scalar!(get_u16, u16, from_be_bytes);
    get_scalar!(get_u16_le, u16, from_le_bytes);
    get_scalar!(get_u32, u32, from_be_bytes);
    get_scalar!(get_u32_le, u32, from_le_bytes);
    get_scalar!(get_u64, u64, from_be_bytes);
    get_scalar!(get_u64_le, u64, from_le_bytes);
    get_scalar!(get_f64, f64, from_be_bytes);
    get_scalar!(get_f64_le, f64, from_le_bytes);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! put_scalar {
    ($name:ident, $ty:ty, $to:ident) => {
        /// Appends the scalar in the corresponding byte order.
        fn $name(&mut self, value: $ty) {
            self.put_slice(&value.$to());
        }
    };
}

/// Sequential writer into a byte sink.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    put_scalar!(put_u16, u16, to_be_bytes);
    put_scalar!(put_u16_le, u16, to_le_bytes);
    put_scalar!(put_u32, u32, to_be_bytes);
    put_scalar!(put_u32_le, u32, to_le_bytes);
    put_scalar!(put_u64, u64, to_be_bytes);
    put_scalar!(put_u64_le, u64, to_le_bytes);
    put_scalar!(put_f64, f64, to_be_bytes);
    put_scalar!(put_f64_le, f64, to_le_bytes);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64(1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0x1234);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_f64(), 1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_and_eq_use_unread_bytes() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.slice(0..2).to_vec(), vec![2, 3]);
        assert_eq!(b, Bytes::from(vec![2, 3, 4]));
    }

    #[test]
    fn slice_reader_advances() {
        let data = [1u8, 0, 2, 0];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.get_u16_le(), 1);
        assert_eq!(buf.remaining(), 2);
        assert_eq!(buf.get_u16_le(), 2);
        assert!(!buf.has_remaining());
    }
}
