//! # Joinable search over multi-source spatial datasets
//!
//! A Rust implementation of the ICDE 2025 paper *"Joinable Search over
//! Multi-source Spatial Datasets: Overlap, Coverage, and Efficiency"*: the
//! DITS index, the OverlapSearch (OJSP) and CoverageSearch (CJSP)
//! algorithms, every baseline the paper compares against, a synthetic
//! five-source data generator, and a simulated multi-source deployment with
//! communication accounting.
//!
//! This crate is a façade: it re-exports the workspace crates so examples
//! and downstream users have a single dependency.
//!
//! ```
//! use joinable_spatial_search::dits::{overlap_search, DitsLocal, DitsLocalConfig, DatasetNode};
//! use joinable_spatial_search::spatial::{CellSet, Grid, Point, SpatialDataset};
//!
//! // Grid the space, index two tiny datasets and search for the best join.
//! let grid = Grid::global(12).unwrap();
//! let datasets = vec![
//!     SpatialDataset::new(0, vec![Point::new(-77.03, 38.90), Point::new(-77.02, 38.91)]),
//!     SpatialDataset::new(1, vec![Point::new(116.36, 39.88)]),
//! ];
//! let nodes: Vec<DatasetNode> = datasets
//!     .iter()
//!     .map(|d| DatasetNode::from_dataset(&grid, d).unwrap())
//!     .collect();
//! let index = DitsLocal::build(nodes, DitsLocalConfig::default());
//! let query = CellSet::from_points(&grid, &[Point::new(-77.03, 38.90)]);
//! let (results, _stats) = overlap_search(&index, &query, 1);
//! assert_eq!(results[0].dataset, 0);
//! ```

#![warn(missing_docs)]

pub use approx_join;
pub use baselines;
pub use datagen;
pub use dits;
pub use multisource;
pub use obs;
pub use pricing;
pub use spatial;
pub use transit;
