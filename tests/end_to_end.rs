//! Cross-crate integration tests: synthetic data generation → local indexes
//! → multi-source framework, checked against index-free brute force.

use joinable_spatial_search::baselines::OverlapIndex;
use joinable_spatial_search::datagen::{
    generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale,
};
use joinable_spatial_search::dits::overlap::overlap_search_bruteforce;
use joinable_spatial_search::dits::DatasetNode;
use joinable_spatial_search::multisource::{
    DistributionStrategy, FrameworkConfig, MultiSourceFramework, SearchRequest,
};
use joinable_spatial_search::spatial::{CellSet, Grid, SpatialDataset};

fn generated_sources(divisor: u32) -> Vec<(String, Vec<SpatialDataset>)> {
    let config = GeneratorConfig {
        scale: SourceScale::Custom(divisor),
        seed: 77,
        max_points_per_dataset: Some(200),
    };
    paper_sources()
        .iter()
        .map(|p| (p.name.to_string(), generate_source(p, &config)))
        .collect()
}

#[test]
fn multi_source_ojsp_matches_global_bruteforce() {
    let source_data = generated_sources(300);
    let framework = MultiSourceFramework::build(
        &source_data,
        FrameworkConfig {
            resolution: 11,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    );
    let grid = Grid::global(11).unwrap();

    // Brute force over the union of all sources' datasets.
    let all_nodes: Vec<DatasetNode> = source_data
        .iter()
        .flat_map(|(_, datasets)| {
            datasets
                .iter()
                .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        })
        .collect();

    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 8, 5);

    for query in &queries {
        let response = framework
            .search(&SearchRequest::ojsp(query.clone()).k(10))
            .expect("in-process search");
        let answer = &response.overlap().expect("OJSP answers")[0];
        let query_cells = CellSet::from_points(&grid, &query.points);
        let expected = overlap_search_bruteforce(&all_nodes, &query_cells, usize::MAX);

        // The federated top-k overlap values must match the global ranking.
        // (Dataset ids repeat across sources, so compare the overlap values.)
        let got: Vec<usize> = answer.results.iter().map(|(_, r)| r.overlap).collect();
        let want: Vec<usize> = expected.iter().take(got.len()).map(|r| r.overlap).collect();
        assert_eq!(got, want, "query {} disagrees with brute force", query.id);
        assert!(
            !got.is_empty(),
            "a portal dataset used as query must match itself"
        );
        // The best match is the query dataset itself: full overlap.
        assert_eq!(got[0], query_cells.len());
    }
}

#[test]
fn all_distribution_strategies_return_identical_answers() {
    let source_data = generated_sources(300);
    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 6, 9);

    let mut reference: Option<Vec<Vec<usize>>> = None;
    let mut reference_bytes: Option<usize> = None;
    for strategy in [
        DistributionStrategy::Broadcast,
        DistributionStrategy::Pruned,
        DistributionStrategy::PrunedClipped,
    ] {
        let framework = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                strategy,
                ..FrameworkConfig::default()
            },
        );
        let outcome = framework
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .expect("in-process search");
        let overlaps: Vec<Vec<usize>> = outcome
            .overlap()
            .expect("OJSP answers")
            .iter()
            .map(|a| a.results.iter().map(|(_, r)| r.overlap).collect())
            .collect();
        match &reference {
            None => {
                reference = Some(overlaps);
                reference_bytes = Some(outcome.comm.total_bytes());
            }
            Some(expected) => {
                assert_eq!(
                    &overlaps, expected,
                    "strategy {strategy:?} changed the answers"
                );
                // Pruning and clipping may only reduce the communication.
                assert!(outcome.comm.total_bytes() <= reference_bytes.unwrap());
            }
        }
    }
}

#[test]
fn cjsp_answers_are_connected_and_monotone_in_k() {
    let source_data = generated_sources(300);
    let framework = MultiSourceFramework::build(
        &source_data,
        FrameworkConfig {
            resolution: 11,
            delta_cells: 10.0,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    );
    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 5, 13);

    for query in &queries {
        let small = framework
            .search(&SearchRequest::cjsp(query.clone()).k(2))
            .expect("in-process search");
        let small = &small.coverage().expect("CJSP answers")[0];
        let large = framework
            .search(&SearchRequest::cjsp(query.clone()).k(8))
            .expect("in-process search");
        let large = &large.coverage().expect("CJSP answers")[0];
        assert!(small.coverage >= small.query_coverage);
        assert!(large.coverage >= large.query_coverage);
        assert!(small.selected.len() <= 2);
        assert!(large.selected.len() <= 8);
        // Selections never repeat a dataset.
        let mut seen = std::collections::HashSet::new();
        for pair in &large.selected {
            assert!(seen.insert(*pair), "dataset selected twice: {pair:?}");
        }
        // Every selection must contribute: coverage strictly exceeds the
        // query's own coverage whenever something was selected.
        if !large.selected.is_empty() {
            assert!(large.coverage > large.query_coverage);
        }
    }
}

#[test]
fn every_index_kind_agrees_through_the_shared_trait() {
    use joinable_spatial_search::baselines::{JosieIndex, QuadTreeIndex, RTreeIndex, Sts3Index};
    use joinable_spatial_search::dits::{DitsLocal, DitsLocalConfig};

    let source_data = generated_sources(300);
    let grid = Grid::global(11).unwrap();
    let nodes: Vec<DatasetNode> = source_data[3]
        .1
        .iter()
        .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
        .collect();
    let queries: Vec<CellSet> = select_queries(&source_data[3].1, 5, 21)
        .iter()
        .map(|d| CellSet::from_points(&grid, &d.points))
        .collect();

    let indexes: Vec<Box<dyn OverlapIndex>> = vec![
        Box::new(DitsLocal::build(nodes.clone(), DitsLocalConfig::default())),
        Box::new(QuadTreeIndex::build(nodes.clone())),
        Box::new(RTreeIndex::build(nodes.clone())),
        Box::new(Sts3Index::build(nodes.clone())),
        Box::new(JosieIndex::build(nodes.clone())),
    ];
    for query in &queries {
        let expected = overlap_search_bruteforce(&nodes, query, 7);
        for index in &indexes {
            let got = index.overlap_search(query, 7);
            assert_eq!(
                got.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                expected.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                "{} disagrees with brute force",
                index.name()
            );
        }
    }
}
