//! Integration tests that replay the worked examples of the paper across
//! crate boundaries: the Fig. 2 grid, Example 2/3 cell sets and distances,
//! the Fig. 4 leaf inverted index, and the Fig. 5 overlap bounds.

use joinable_spatial_search::dits::bounds::{leaf_overlap_bounds, node_distance_bounds};
use joinable_spatial_search::dits::{
    coverage_search, overlap_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig,
    InvertedIndex,
};
use joinable_spatial_search::spatial::{
    dataset_distance, is_directly_connected, satisfies_spatial_connectivity, zorder, CellSet, Grid,
    GridConfig, Point,
};

/// Example 2 (Fig. 2): a 4×4 grid over a unit space, three datasets whose
/// cell-based representations are S_D1 = {9, 11}, S_D2 = {1, 3},
/// S_D3 = {12, 13}.
fn example2_sets() -> (CellSet, CellSet, CellSet) {
    (
        CellSet::from_cells([9u64, 11]),
        CellSet::from_cells([1u64, 3]),
        CellSet::from_cells([12u64, 13]),
    )
}

#[test]
fn fig2_zorder_numbering_is_reproduced() {
    // The z-order ids of the 4×4 grid in Fig. 2(a), bottom row first.
    let expected: [[u64; 4]; 4] = [[0, 1, 4, 5], [2, 3, 6, 7], [8, 9, 12, 13], [10, 11, 14, 15]];
    for (y, row) in expected.iter().enumerate() {
        for (x, id) in row.iter().enumerate() {
            assert_eq!(zorder::cell_id(x as u32, y as u32), *id);
        }
    }
    // Gridding points through the public Grid API produces the same ids.
    let grid = Grid::new(GridConfig {
        origin: Point::new(0.0, 0.0),
        width: 1.0,
        height: 1.0,
        resolution: 2,
    })
    .unwrap();
    assert_eq!(grid.cell_of(&Point::new(0.30, 0.55)).unwrap(), 9);
}

#[test]
fn example3_distances_and_connectivity() {
    let (d1, d2, d3) = example2_sets();
    assert_eq!(dataset_distance(&d1, &d2), 1.0);
    assert_eq!(dataset_distance(&d1, &d3), 1.0);
    assert!((dataset_distance(&d2, &d3) - 2f64.sqrt()).abs() < 1e-12);
    // δ = 1: D1–D2 and D1–D3 directly connected, D2–D3 only indirectly.
    assert!(is_directly_connected(&d1, &d2, 1.0));
    assert!(is_directly_connected(&d1, &d3, 1.0));
    assert!(!is_directly_connected(&d2, &d3, 1.0));
    assert!(satisfies_spatial_connectivity(&[&d1, &d2, &d3], 1.0));
}

#[test]
fn fig4_leaf_inverted_index_posting_lists() {
    // Source 3 of Fig. 4 holds D9 = {22, 23} and D10 = {20, 22}; the leaf
    // posting lists are 20 → {D10}, 22 → {D9, D10}, 23 → {D9}.
    let d9 = CellSet::from_cells([22u64, 23]);
    let d10 = CellSet::from_cells([20u64, 22]);
    let inv = InvertedIndex::build([(9u32, &d9), (10u32, &d10)]);
    assert_eq!(inv.posting_list(20), Some(&[10u32][..]));
    assert_eq!(inv.posting_list(22), Some(&[9u32, 10][..]));
    assert_eq!(inv.posting_list(23), Some(&[9u32][..]));
}

#[test]
fn fig5_bounds_sandwich_the_exact_overlap() {
    let d1 = CellSet::from_cells([7u64, 9, 11]);
    let d2 = CellSet::from_cells([9u64, 12, 13]);
    let inv = InvertedIndex::build([(1u32, &d1), (2u32, &d2)]);
    let query = CellSet::from_cells([3u64, 9]);
    let (lb, ub) = leaf_overlap_bounds(&inv, &query, 2);
    assert_eq!((lb, ub), (1, 1));
    for d in [&d1, &d2] {
        let exact = d.intersection_size(&query);
        assert!(lb <= exact && exact <= ub);
    }
}

#[test]
fn lemma4_bounds_hold_for_arbitrary_dataset_nodes() {
    let a = DatasetNode::from_cell_set(0, CellSet::from_cells([0u64, 3, 12])).unwrap();
    let b = DatasetNode::from_cell_set(1, CellSet::from_cells([48u64, 51])).unwrap();
    let exact = dataset_distance(&a.cells, &b.cells);
    let (lb, ub) = node_distance_bounds(&a.geometry, &b.geometry);
    assert!(lb <= exact + 1e-9);
    assert!(exact <= ub + 1e-9);
}

#[test]
fn example1_style_search_over_a_small_portal() {
    // A miniature version of the Example 1 workflow: a D.C. query against a
    // portal of routes; OJSP enriches in depth, CJSP in width.
    let grid = Grid::global(12).unwrap();
    let route = |id: u32, lon0: f64, lat0: f64| {
        DatasetNode::from_dataset(
            &grid,
            &joinable_spatial_search::spatial::SpatialDataset::new(
                id,
                (0..30)
                    .map(|i| Point::new(lon0 + i as f64 * 0.01, lat0 + i as f64 * 0.004))
                    .collect(),
            ),
        )
        .unwrap()
    };
    let nodes = vec![
        route(0, -77.05, 38.88),
        route(1, -77.03, 38.89),
        route(2, -76.90, 38.95),
        route(3, -76.75, 39.00),
        route(4, 116.30, 39.90),
    ];
    let index = DitsLocal::build(nodes, DitsLocalConfig::default());
    let query = CellSet::from_points(
        &grid,
        &(0..30)
            .map(|i| Point::new(-77.05 + i as f64 * 0.01, 38.88 + i as f64 * 0.004))
            .collect::<Vec<_>>(),
    );
    // OJSP: the identical route 0 is the best match, Beijing never appears.
    let (overlaps, _) = overlap_search(&index, &query, 4);
    assert_eq!(overlaps[0].dataset, 0);
    assert!(overlaps.iter().all(|r| r.dataset != 4));
    // CJSP: nearby connected routes extend the coverage beyond the query.
    let (coverage, _) = coverage_search(&index, &query, CoverageConfig::new(4, 10.0));
    assert!(coverage.coverage > coverage.query_coverage);
    assert!(!coverage.datasets.contains(&4));
}
