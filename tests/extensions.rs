//! Cross-crate integration tests for the extension layers: approximate
//! search, price-aware combination search, transit applications and index
//! persistence, all exercised through the public façade exactly the way a
//! downstream user would.

use joinable_spatial_search::approx_join::{ApproxConfig, ApproxOverlapIndex, LshConfig};
use joinable_spatial_search::dits::{
    build_bottom_up, decode_local, encode_local, nearest_datasets, overlap_search, range_datasets,
    DatasetNode, DitsLocal, DitsLocalConfig,
};
use joinable_spatial_search::pricing::{
    budgeted_coverage_search, rank_by_value, BudgetedConfig, PriceBook, PricingModel,
};
use joinable_spatial_search::spatial::{CellSet, DatasetId, Grid, Point, SpatialDataset};
use joinable_spatial_search::transit::{
    find_near_duplicates, generate_network, plan_transfers, NearDuplicateConfig, NetworkConfig,
    TransferPlanConfig,
};

/// A deterministic corpus of route-like datasets around Washington, D.C.
fn corpus(grid: &Grid, n: u32) -> Vec<(DatasetId, CellSet)> {
    (0..n)
        .filter_map(|i| {
            let lon = -77.4 + f64::from(i % 25) * 0.02;
            let lat = 38.6 + f64::from(i / 25) * 0.04;
            let points: Vec<Point> = (0..50)
                .map(|j| Point::new(lon + j as f64 * 0.004, lat + j as f64 * 0.002))
                .collect();
            SpatialDataset::new(i, points)
                .to_cell_set(grid)
                .ok()
                .map(|c| (i, c))
        })
        .collect()
}

fn query(grid: &Grid) -> CellSet {
    let points: Vec<Point> = (0..60)
        .map(|i| Point::new(-77.4 + i as f64 * 0.004, 38.6 + i as f64 * 0.0022))
        .collect();
    CellSet::from_points(grid, &points)
}

#[test]
fn approximate_search_recovers_the_exact_top_k_on_this_corpus() {
    let grid = Grid::global(12).unwrap();
    let cells = corpus(&grid, 300);
    let q = query(&grid);

    let nodes: Vec<DatasetNode> = cells
        .iter()
        .filter_map(|(id, c)| DatasetNode::from_cell_set(*id, c.clone()))
        .collect();
    let exact_index = DitsLocal::build(nodes, DitsLocalConfig::default());
    let (exact, _) = overlap_search(&exact_index, &q, 5);

    let approx_index = ApproxOverlapIndex::build(
        cells.iter().map(|(id, c)| (*id, c)),
        ApproxConfig {
            lsh: LshConfig {
                signature_len: 192,
                ..LshConfig::default()
            },
            ..ApproxConfig::default()
        },
    );
    let approx = approx_index.search(&q, 5);

    // With exact re-ranking the approximate pipeline must reproduce the exact
    // overlap values (the candidate shortlist easily contains the top-5 of
    // this strongly clustered corpus).
    assert_eq!(
        exact.iter().map(|r| r.overlap).collect::<Vec<_>>(),
        approx
            .iter()
            .map(|r| r.overlap as usize)
            .collect::<Vec<_>>()
    );
}

#[test]
fn persisted_index_keeps_answering_all_query_types() {
    let grid = Grid::global(12).unwrap();
    let cells = corpus(&grid, 150);
    let nodes: Vec<DatasetNode> = cells
        .iter()
        .filter_map(|(id, c)| DatasetNode::from_cell_set(*id, c.clone()))
        .collect();
    let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 8 });
    let reloaded = decode_local(&encode_local(&index)).expect("image decodes");
    let q = query(&grid);

    let (a, _) = overlap_search(&index, &q, 7);
    let (b, _) = overlap_search(&reloaded, &q, 7);
    assert_eq!(a, b);

    let (na, _) = nearest_datasets(&index, &q, 4);
    let (nb, _) = nearest_datasets(&reloaded, &q, 4);
    assert_eq!(na.len(), nb.len());
    for (x, y) in na.iter().zip(nb.iter()) {
        assert!((x.distance - y.distance).abs() < 1e-12);
    }

    let (ra, _) = range_datasets(&index, &q, 5.0);
    let (rb, _) = range_datasets(&reloaded, &q, 5.0);
    assert_eq!(
        ra.iter().map(|n| n.dataset).collect::<Vec<_>>(),
        rb.iter().map(|n| n.dataset).collect::<Vec<_>>()
    );
}

#[test]
fn bottom_up_index_is_a_drop_in_replacement() {
    let grid = Grid::global(12).unwrap();
    let cells = corpus(&grid, 120);
    let nodes: Vec<DatasetNode> = cells
        .iter()
        .filter_map(|(id, c)| DatasetNode::from_cell_set(*id, c.clone()))
        .collect();
    let q = query(&grid);
    let top_down = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
    let bottom_up = build_bottom_up(nodes, DitsLocalConfig::default());
    let (a, _) = overlap_search(&top_down, &q, 10);
    let (b, _) = overlap_search(&bottom_up, &q, 10);
    assert_eq!(a, b);
}

#[test]
fn marketplace_pipeline_is_consistent_with_its_price_book() {
    let grid = Grid::global(12).unwrap();
    let cells = corpus(&grid, 100);
    let nodes: Vec<DatasetNode> = cells
        .iter()
        .filter_map(|(id, c)| DatasetNode::from_cell_set(*id, c.clone()))
        .collect();
    let index = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
    let q = query(&grid);

    let model = PricingModel::PerCell {
        rate: 0.25,
        minimum: 1.0,
    };
    let prices = PriceBook::from_model(&model, nodes.iter());
    let ranking = rank_by_value(&nodes, &q, &prices);
    assert_eq!(ranking.len(), nodes.len());

    for budget in [5.0, 20.0, 80.0] {
        let (result, _) =
            budgeted_coverage_search(&index, &q, &prices, BudgetedConfig::new(budget, 8.0));
        assert!(result.spent <= budget + 1e-9);
        assert_eq!(prices.total(&result.datasets), Some(result.spent));
        assert!(result.coverage >= result.query_coverage);
    }

    // A larger budget can never reduce the achievable coverage.
    let (small, _) = budgeted_coverage_search(&index, &q, &prices, BudgetedConfig::new(10.0, 8.0));
    let (large, _) = budgeted_coverage_search(&index, &q, &prices, BudgetedConfig::new(200.0, 8.0));
    assert!(large.coverage >= small.coverage);
}

#[test]
fn transit_workflow_runs_end_to_end_on_a_generated_city() {
    let network = generate_network(&NetworkConfig {
        grid_routes: 16,
        radial_routes: 6,
        duplicates: 4,
        ..NetworkConfig::default()
    });
    // Near-duplicate detection finds at least the injected rebrandings.
    let duplicates = find_near_duplicates(&network, &NearDuplicateConfig::default());
    assert!(duplicates.len() >= 4);

    // Transfer planning around every radial line produces connected plans.
    for corridor in network.iter().skip(16).take(6) {
        let plan = plan_transfers(
            &network,
            corridor,
            &TransferPlanConfig {
                k: 4,
                ..TransferPlanConfig::default()
            },
        );
        assert!(plan.coverage >= plan.query_coverage);
        assert_eq!(plan.selected.len(), plan.transfers.len());
        for t in &plan.transfers {
            assert!(t.distance_cells <= TransferPlanConfig::default().max_transfer_cells);
            assert!(!plan.selected.is_empty());
        }
    }
}
