//! Search statistics: counters reported by the search algorithms so the
//! benchmark harness (and the ablation benches) can explain *why* a strategy
//! is faster, not only that it is.

use serde::{Deserialize, Serialize};

/// Counters accumulated during one search invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Tree nodes visited (internal + leaf).
    pub nodes_visited: usize,
    /// Subtrees pruned by MBR disjointness or distance bounds.
    pub nodes_pruned: usize,
    /// Leaves whose datasets were all skipped thanks to the overlap bounds.
    pub leaves_pruned_by_bounds: usize,
    /// Leaves whose posting lists were scanned for exact verification.
    pub leaves_verified: usize,
    /// Individual datasets for which an exact intersection / gain / distance
    /// was computed.
    pub exact_computations: usize,
    /// Candidate datasets that survived filtering.
    pub candidates: usize,
}

impl SearchStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges counters from another statistics block (used when aggregating
    /// per-source statistics at the data center).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned += other.nodes_pruned;
        self.leaves_pruned_by_bounds += other.leaves_pruned_by_bounds;
        self.leaves_verified += other.leaves_verified;
        self.exact_computations += other.exact_computations;
        self.candidates += other.candidates;
    }
}

impl std::iter::Sum for SearchStats {
    fn sum<I: Iterator<Item = SearchStats>>(iter: I) -> Self {
        let mut total = SearchStats::new();
        for block in iter {
            total.merge(&block);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a SearchStats> for SearchStats {
    fn sum<I: Iterator<Item = &'a SearchStats>>(iter: I) -> Self {
        let mut total = SearchStats::new();
        for block in iter {
            total.merge(block);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SearchStats {
            nodes_visited: 1,
            nodes_pruned: 2,
            leaves_pruned_by_bounds: 3,
            leaves_verified: 4,
            exact_computations: 5,
            candidates: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.nodes_visited, 2);
        assert_eq!(a.nodes_pruned, 4);
        assert_eq!(a.leaves_pruned_by_bounds, 6);
        assert_eq!(a.leaves_verified, 8);
        assert_eq!(a.exact_computations, 10);
        assert_eq!(a.candidates, 12);
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(SearchStats::new(), SearchStats::default());
        assert_eq!(SearchStats::new().nodes_visited, 0);
    }

    #[test]
    fn sum_matches_repeated_merge() {
        let blocks: Vec<SearchStats> = (0..5)
            .map(|i| SearchStats {
                nodes_visited: i,
                candidates: 2 * i,
                ..SearchStats::new()
            })
            .collect();
        let by_sum: SearchStats = blocks.iter().sum();
        let mut by_merge = SearchStats::new();
        for b in &blocks {
            by_merge.merge(b);
        }
        assert_eq!(by_sum, by_merge);
        assert_eq!(by_sum.nodes_visited, 10);
        assert_eq!(by_sum.candidates, 20);
        let owned: SearchStats = blocks.into_iter().sum();
        assert_eq!(owned, by_merge);
    }
}
