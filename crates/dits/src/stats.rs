//! Search statistics: counters reported by the search algorithms so the
//! benchmark harness (and the ablation benches) can explain *why* a strategy
//! is faster, not only that it is.

use serde::{Deserialize, Serialize};

/// Counters accumulated during one search invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Tree nodes visited (internal + leaf).
    pub nodes_visited: usize,
    /// Subtrees pruned by MBR disjointness or distance bounds.
    pub nodes_pruned: usize,
    /// Leaves whose datasets were all skipped thanks to the overlap bounds.
    pub leaves_pruned_by_bounds: usize,
    /// Leaves whose posting lists were scanned for exact verification.
    pub leaves_verified: usize,
    /// Individual datasets for which an exact intersection / gain / distance
    /// was computed.
    pub exact_computations: usize,
    /// Candidate datasets that survived filtering.
    pub candidates: usize,
}

impl SearchStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges counters from another statistics block (used when aggregating
    /// per-source statistics at the data center).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned += other.nodes_pruned;
        self.leaves_pruned_by_bounds += other.leaves_pruned_by_bounds;
        self.leaves_verified += other.leaves_verified;
        self.exact_computations += other.exact_computations;
        self.candidates += other.candidates;
    }
}

impl SearchStats {
    /// The counters as a fixed-order array, the form the multi-source frame
    /// codec puts on the wire.  Field order is part of the wire contract:
    /// append new counters at the end, never reorder.
    pub fn to_array(&self) -> [u64; 6] {
        [
            self.nodes_visited as u64,
            self.nodes_pruned as u64,
            self.leaves_pruned_by_bounds as u64,
            self.leaves_verified as u64,
            self.exact_computations as u64,
            self.candidates as u64,
        ]
    }

    /// Rebuilds a statistics block from its wire array (see
    /// [`Self::to_array`]).
    pub fn from_array(a: [u64; 6]) -> Self {
        Self {
            nodes_visited: a[0] as usize,
            nodes_pruned: a[1] as usize,
            leaves_pruned_by_bounds: a[2] as usize,
            leaves_verified: a[3] as usize,
            exact_computations: a[4] as usize,
            candidates: a[5] as usize,
        }
    }
}

impl std::iter::Sum for SearchStats {
    fn sum<I: Iterator<Item = SearchStats>>(iter: I) -> Self {
        let mut total = SearchStats::new();
        for block in iter {
            total.merge(&block);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a SearchStats> for SearchStats {
    fn sum<I: Iterator<Item = &'a SearchStats>>(iter: I) -> Self {
        let mut total = SearchStats::new();
        for block in iter {
            total.merge(block);
        }
        total
    }
}

/// Counters accumulated while applying maintenance operations (Appendix
/// IX-C) to the local and global indexes.  The multi-source maintenance
/// pipeline threads one block per `ApplyUpdates` batch so the benches (and
/// operators) can see *how* the indexes absorbed a batch — how many updates
/// relocated a dataset across leaves, how often an emptied leaf was
/// collapsed into its sibling, and whether the data center decided to
/// rebuild DITS-G.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceStats {
    /// Datasets inserted into a local index.
    pub inserts: usize,
    /// Datasets updated in place or via relocation.
    pub updates: usize,
    /// Datasets deleted from a local index.
    pub deletes: usize,
    /// Operations rejected because the target id was missing (update /
    /// delete) or already present (insert).
    pub rejected: usize,
    /// Updates whose new pivot left the old leaf's MBR, forcing a
    /// delete-and-reinsert instead of an in-place replacement.
    pub reinserts: usize,
    /// Leaves split because an insert pushed them over the capacity `f`.
    pub leaf_splits: usize,
    /// Emptied leaves collapsed into their sibling after a delete.
    pub leaf_collapses: usize,
    /// Source summaries refreshed in DITS-G.
    pub summary_refreshes: usize,
    /// Full DITS-G rebuilds triggered by the degradation heuristic.
    pub global_rebuilds: usize,
}

impl MaintenanceStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges counters from another statistics block.
    pub fn merge(&mut self, other: &MaintenanceStats) {
        self.inserts += other.inserts;
        self.updates += other.updates;
        self.deletes += other.deletes;
        self.rejected += other.rejected;
        self.reinserts += other.reinserts;
        self.leaf_splits += other.leaf_splits;
        self.leaf_collapses += other.leaf_collapses;
        self.summary_refreshes += other.summary_refreshes;
        self.global_rebuilds += other.global_rebuilds;
    }

    /// Operations that actually mutated an index.
    pub fn applied(&self) -> usize {
        self.inserts + self.updates + self.deletes
    }
}

impl MaintenanceStats {
    /// The counters as a fixed-order array for the multi-source frame codec.
    /// Field order is part of the wire contract: append, never reorder.
    pub fn to_array(&self) -> [u64; 9] {
        [
            self.inserts as u64,
            self.updates as u64,
            self.deletes as u64,
            self.rejected as u64,
            self.reinserts as u64,
            self.leaf_splits as u64,
            self.leaf_collapses as u64,
            self.summary_refreshes as u64,
            self.global_rebuilds as u64,
        ]
    }

    /// Rebuilds a statistics block from its wire array (see
    /// [`Self::to_array`]).
    pub fn from_array(a: [u64; 9]) -> Self {
        Self {
            inserts: a[0] as usize,
            updates: a[1] as usize,
            deletes: a[2] as usize,
            rejected: a[3] as usize,
            reinserts: a[4] as usize,
            leaf_splits: a[5] as usize,
            leaf_collapses: a[6] as usize,
            summary_refreshes: a[7] as usize,
            global_rebuilds: a[8] as usize,
        }
    }
}

impl std::iter::Sum for MaintenanceStats {
    fn sum<I: Iterator<Item = MaintenanceStats>>(iter: I) -> Self {
        let mut total = MaintenanceStats::new();
        for block in iter {
            total.merge(&block);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a MaintenanceStats> for MaintenanceStats {
    fn sum<I: Iterator<Item = &'a MaintenanceStats>>(iter: I) -> Self {
        let mut total = MaintenanceStats::new();
        for block in iter {
            total.merge(block);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_stats_merge_and_sum() {
        let a = MaintenanceStats {
            inserts: 1,
            updates: 2,
            deletes: 3,
            rejected: 1,
            reinserts: 1,
            leaf_splits: 2,
            leaf_collapses: 1,
            summary_refreshes: 4,
            global_rebuilds: 1,
        };
        let total: MaintenanceStats = [a, a].iter().sum();
        assert_eq!(total.inserts, 2);
        assert_eq!(total.deletes, 6);
        assert_eq!(total.global_rebuilds, 2);
        assert_eq!(a.applied(), 6);
        assert_eq!(MaintenanceStats::new(), MaintenanceStats::default());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = SearchStats {
            nodes_visited: 1,
            nodes_pruned: 2,
            leaves_pruned_by_bounds: 3,
            leaves_verified: 4,
            exact_computations: 5,
            candidates: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.nodes_visited, 2);
        assert_eq!(a.nodes_pruned, 4);
        assert_eq!(a.leaves_pruned_by_bounds, 6);
        assert_eq!(a.leaves_verified, 8);
        assert_eq!(a.exact_computations, 10);
        assert_eq!(a.candidates, 12);
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(SearchStats::new(), SearchStats::default());
        assert_eq!(SearchStats::new().nodes_visited, 0);
    }

    #[test]
    fn sum_matches_repeated_merge() {
        let blocks: Vec<SearchStats> = (0..5)
            .map(|i| SearchStats {
                nodes_visited: i,
                candidates: 2 * i,
                ..SearchStats::new()
            })
            .collect();
        let by_sum: SearchStats = blocks.iter().sum();
        let mut by_merge = SearchStats::new();
        for b in &blocks {
            by_merge.merge(b);
        }
        assert_eq!(by_sum, by_merge);
        assert_eq!(by_sum.nodes_visited, 10);
        assert_eq!(by_sum.candidates, 20);
        let owned: SearchStats = blocks.into_iter().sum();
        assert_eq!(owned, by_merge);
    }
}
