//! Bottom-up (agglomerative) construction of DITS-L.
//!
//! Section V-A motivates the top-down median split by contrasting it with the
//! classic bottom-up ball-tree construction, which "repeatedly finds the two
//! balls that make the parent node's MBR volume smallest" and costs up to
//! O(n³).  This module implements that alternative so the design choice can
//! be ablated (DESIGN.md ablation 4): same tree node types, same leaf
//! inverted indexes, same search algorithms — only the build strategy
//! differs.
//!
//! The implementation follows the textbook greedy agglomeration:
//!
//! 1. start with one cluster per dataset node,
//! 2. repeatedly merge the pair of clusters whose union MBR has the smallest
//!    area (ties: smallest diagonal, then smallest indices),
//! 3. stop a cluster from merging further once it reaches the leaf capacity,
//!    and pack each final cluster into a leaf,
//! 4. build the internal levels over the leaves with the same greedy pairing.
//!
//! The pairing scan is O(n²) per merge, O(n³) in total — exactly the cost the
//! paper argues against — so the constructor is intended for ablation studies
//! and modest corpus sizes, not production loads.  A guard rejects inputs
//! that would take unreasonably long.

use crate::inverted::InvertedIndex;
use crate::local::{DitsLocal, DitsLocalConfig, NodeKind, TreeNode};
use crate::node::{DatasetNode, NodeGeometry};
use spatial::Mbr;

/// Maximum number of dataset nodes accepted by the bottom-up builder.
pub const BOTTOM_UP_MAX_DATASETS: usize = 4_096;

/// Builds a DITS-L index bottom-up (agglomeratively).
///
/// The resulting index satisfies exactly the same invariants as
/// [`DitsLocal::build`] and answers searches identically; only the tree shape
/// (and therefore pruning efficiency) differs.
///
/// # Panics
///
/// Panics when more than [`BOTTOM_UP_MAX_DATASETS`] dataset nodes are
/// supplied — the cubic pairing cost makes larger inputs impractical and the
/// top-down builder should be used instead.
pub fn build_bottom_up(dataset_nodes: Vec<DatasetNode>, config: DitsLocalConfig) -> DitsLocal {
    assert!(
        dataset_nodes.len() <= BOTTOM_UP_MAX_DATASETS,
        "bottom-up construction supports at most {BOTTOM_UP_MAX_DATASETS} datasets; use DitsLocal::build"
    );
    let capacity = config.leaf_capacity.max(1);
    let config = DitsLocalConfig {
        leaf_capacity: capacity,
    };
    let dataset_count = dataset_nodes.len();

    // Phase 1: agglomerate dataset nodes into clusters of at most `capacity`.
    let clusters = agglomerate(dataset_nodes, capacity);

    // Phase 2: materialise one leaf per cluster, then pair leaves greedily
    // into internal nodes until a single root remains.
    let mut index = DitsLocal::from_parts(Vec::new(), 0, config, dataset_count);
    let mut level: Vec<usize> = clusters
        .into_iter()
        .map(|entries| {
            let geometry = geometry_of_entries(&entries);
            let inverted = InvertedIndex::build(entries.iter().map(|n| (n.id, &n.cells)));
            index.push_node(TreeNode {
                geometry,
                parent: None,
                kind: NodeKind::Leaf { entries, inverted },
            })
        })
        .collect();

    if level.is_empty() {
        // Same convention as the top-down builder: an empty input produces a
        // single empty leaf root.
        let root = index.push_node(TreeNode {
            geometry: NodeGeometry::from_mbr(Mbr::new(
                spatial::Point::new(0.0, 0.0),
                spatial::Point::new(0.0, 0.0),
            )),
            parent: None,
            kind: NodeKind::Leaf {
                entries: Vec::new(),
                inverted: InvertedIndex::new(),
            },
        });
        return finish(index, root, dataset_count, config);
    }

    while level.len() > 1 {
        // Find the pair of current-level nodes with the smallest union area.
        let (best_i, best_j) = best_pair(&index, &level);
        let (i, j) = (level[best_i], level[best_j]);
        let geometry = index.node(i).geometry.union(&index.node(j).geometry);
        let parent = index.push_node(TreeNode {
            geometry,
            parent: None,
            kind: NodeKind::Internal { left: i, right: j },
        });
        index.node_mut_for_bulkload(i).parent = Some(parent);
        index.node_mut_for_bulkload(j).parent = Some(parent);
        // Remove the higher index first so the lower one stays valid.
        let (hi, lo) = if best_i > best_j {
            (best_i, best_j)
        } else {
            (best_j, best_i)
        };
        level.swap_remove(hi);
        level.swap_remove(lo);
        level.push(parent);
    }
    let root = level[0];
    finish(index, root, dataset_count, config)
}

fn finish(
    index: DitsLocal,
    root: usize,
    dataset_count: usize,
    config: DitsLocalConfig,
) -> DitsLocal {
    let (nodes, _, _, _) = index.parts();
    DitsLocal::from_parts(nodes.to_vec(), root, config, dataset_count)
}

/// Greedy agglomeration of dataset nodes into clusters of at most `capacity`.
fn agglomerate(nodes: Vec<DatasetNode>, capacity: usize) -> Vec<Vec<DatasetNode>> {
    let mut clusters: Vec<Option<(Mbr, Vec<DatasetNode>)>> = nodes
        .into_iter()
        .map(|n| Some((*n.rect(), vec![n])))
        .collect();
    loop {
        // Find the mergeable pair (combined size ≤ capacity) with the
        // smallest union area.
        let mut best: Option<(f64, f64, usize, usize)> = None;
        for i in 0..clusters.len() {
            let Some((rect_i, members_i)) = &clusters[i] else {
                continue;
            };
            for j in (i + 1)..clusters.len() {
                let Some((rect_j, members_j)) = &clusters[j] else {
                    continue;
                };
                if members_i.len() + members_j.len() > capacity {
                    continue;
                }
                let union = rect_i.union(rect_j);
                let key = (union.area(), union.radius());
                let better = match best {
                    None => true,
                    Some((area, radius, _, _)) => key.0 < area || (key.0 == area && key.1 < radius),
                };
                if better {
                    best = Some((key.0, key.1, i, j));
                }
            }
        }
        let Some((_, _, i, j)) = best else { break };
        let (rect_j, mut members_j) = clusters[j].take().unwrap();
        let (rect_i, members_i) = clusters[i].as_mut().unwrap();
        members_i.append(&mut members_j);
        *rect_i = rect_i.union(&rect_j);
    }
    clusters
        .into_iter()
        .flatten()
        .map(|(_, members)| members)
        .collect()
}

/// The pair of tree nodes (by position in `level`) whose union MBR has the
/// smallest area.
fn best_pair(index: &DitsLocal, level: &[usize]) -> (usize, usize) {
    let mut best = (f64::INFINITY, f64::INFINITY, 0usize, 1usize);
    for a in 0..level.len() {
        for b in (a + 1)..level.len() {
            let union = index
                .node(level[a])
                .geometry
                .rect
                .union(&index.node(level[b]).geometry.rect);
            let key = (union.area(), union.radius());
            if key.0 < best.0 || (key.0 == best.0 && key.1 < best.1) {
                best = (key.0, key.1, a, b);
            }
        }
    }
    (best.2, best.3)
}

fn geometry_of_entries(entries: &[DatasetNode]) -> NodeGeometry {
    let mut rect: Option<Mbr> = None;
    for e in entries {
        rect = Some(match rect {
            Some(r) => r.union(e.rect()),
            None => *e.rect(),
        });
    }
    NodeGeometry::from_mbr(
        rect.unwrap_or_else(|| {
            Mbr::new(spatial::Point::new(0.0, 0.0), spatial::Point::new(0.0, 0.0))
        }),
    )
}

impl DitsLocal {
    /// Mutable node access restricted to the bulk loader (kept out of the
    /// public API so external code cannot invalidate the tree invariants).
    pub(crate) fn node_mut_for_bulkload(&mut self, idx: usize) -> &mut TreeNode {
        self.node_mut(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::{overlap_search, overlap_search_bruteforce};
    use proptest::prelude::*;
    use spatial::zorder::cell_id;
    use spatial::{CellSet, DatasetId};

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn clustered_nodes(n: u32) -> Vec<DatasetNode> {
        (0..n)
            .map(|i| {
                let bx = (i * 5) % 80;
                let by = ((i * 5) / 80) * 5;
                node(i, &[(bx, by), (bx + 1, by), (bx, by + 1)])
            })
            .collect()
    }

    #[test]
    fn bottom_up_tree_satisfies_invariants() {
        let nodes = clustered_nodes(60);
        let idx = build_bottom_up(nodes, DitsLocalConfig { leaf_capacity: 5 });
        assert_eq!(idx.dataset_count(), 60);
        assert!(idx.check_invariants().is_ok());
        for leaf in idx.leaves() {
            if let NodeKind::Leaf { entries, .. } = &idx.node(leaf).kind {
                assert!(entries.len() <= 5);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let idx = build_bottom_up(Vec::new(), DitsLocalConfig::default());
        assert_eq!(idx.dataset_count(), 0);
        assert!(idx.check_invariants().is_ok());
        let idx = build_bottom_up(vec![node(0, &[(1, 1)])], DitsLocalConfig::default());
        assert_eq!(idx.dataset_count(), 1);
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn bottom_up_and_top_down_answer_searches_identically() {
        let nodes = clustered_nodes(80);
        let config = DitsLocalConfig { leaf_capacity: 6 };
        let bottom_up = build_bottom_up(nodes.clone(), config);
        let top_down = DitsLocal::build(nodes.clone(), config);
        let query = CellSet::from_cells([cell_id(5, 0), cell_id(6, 0), cell_id(10, 5)]);
        for k in [1usize, 5, 20] {
            let (a, _) = overlap_search(&bottom_up, &query, k);
            let (b, _) = overlap_search(&top_down, &query, k);
            let brute = overlap_search_bruteforce(&nodes, &query, k);
            assert_eq!(a, brute, "bottom-up deviates from brute force at k={k}");
            assert_eq!(b, brute, "top-down deviates from brute force at k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "bottom-up construction supports at most")]
    fn oversized_input_is_rejected() {
        let nodes: Vec<DatasetNode> = (0..(BOTTOM_UP_MAX_DATASETS as u32 + 1))
            .map(|i| node(i, &[(i % 100, i / 100)]))
            .collect();
        let _ = build_bottom_up(nodes, DitsLocalConfig::default());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_bottom_up_invariants_and_search_equivalence(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..64, 0u32..64), 1..8), 1..40),
            capacity in 1usize..8,
            query in proptest::collection::vec((0u32..64, 0u32..64), 1..10),
            k in 1usize..8,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = build_bottom_up(nodes.clone(), DitsLocalConfig { leaf_capacity: capacity });
            prop_assert!(idx.check_invariants().is_ok());
            let q = CellSet::from_cells(query.iter().map(|&(x, y)| cell_id(x, y)));
            let (fast, _) = overlap_search(&idx, &q, k);
            let brute = overlap_search_bruteforce(&nodes, &q, k);
            prop_assert_eq!(
                fast.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                brute.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }
}
