//! DITS-L: the per-data-source local index (Section V-A, Algorithm 1).
//!
//! The local index is a binary ball-tree-like structure over *dataset nodes*
//! built top-down: the widest dimension of the current node's MBR is chosen
//! as the split dimension, dataset nodes are partitioned by the median of
//! their pivots on that dimension, and the recursion stops when a node holds
//! at most `f` (the leaf capacity) dataset nodes, at which point an inverted
//! index over the contained datasets' cells is materialised.
//!
//! The tree is stored as an arena of [`TreeNode`]s with parent indices, the
//! "bidirectional pointer structure" the paper relies on for efficient
//! updates (Appendix IX-C, implemented in [`crate::update`]).

use crate::inverted::InvertedIndex;
use crate::node::{DatasetNode, NodeGeometry};
use serde::{Deserialize, Serialize};
use spatial::{DatasetId, Grid, Mbr, SpatialDataset};
use std::sync::OnceLock;

/// Index of a node inside the arena.
pub type NodeIdx = usize;

/// Configuration of a local index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DitsLocalConfig {
    /// Leaf-node capacity `f` (Definition 14). Paper default: 10.
    pub leaf_capacity: usize,
}

impl Default for DitsLocalConfig {
    fn default() -> Self {
        Self { leaf_capacity: 10 }
    }
}

/// Content of a tree node: either an internal node with two children or a
/// leaf holding dataset nodes plus their inverted index.
// The Leaf variant is large (the inverted index carries packed word-parallel
// summaries), but boxing it would put a pointer chase on the verification
// hot path, and internal nodes' hot traversal fields already live in the
// separate SoA `TraversalLayout` — the arena slack is idle memory, not
// touched per query.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeKind {
    /// Internal node (Definition 13).
    Internal {
        /// Left child index.
        left: NodeIdx,
        /// Right child index.
        right: NodeIdx,
    },
    /// Leaf node (Definition 14).
    Leaf {
        /// The dataset nodes stored in this leaf (`ch`).
        entries: Vec<DatasetNode>,
        /// Inverted index over the entries' cells (`inv`).
        inverted: InvertedIndex,
    },
}

/// One node of the local index arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// Geometry (MBR, pivot, radius) of everything below this node.
    pub geometry: NodeGeometry,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeIdx>,
    /// Node content.
    pub kind: NodeKind,
}

impl TreeNode {
    /// Returns `true` when this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// The DITS-L local index of one data source.
///
/// The structure-of-arrays [`TraversalLayout`] of the reachable tree is
/// cached lazily (same `OnceLock` pattern as the packed cells of `CellSet`)
/// and dropped by every arena mutation, so queries between maintenance
/// operations share one layout build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DitsLocal {
    nodes: Vec<TreeNode>,
    root: NodeIdx,
    config: DitsLocalConfig,
    dataset_count: usize,
    layout: OnceLock<TraversalLayout>,
}

impl DitsLocal {
    /// Builds the local index over a list of dataset nodes (Algorithm 1).
    ///
    /// An empty input produces a valid index with an empty root leaf.
    pub fn build(dataset_nodes: Vec<DatasetNode>, config: DitsLocalConfig) -> Self {
        let capacity = config.leaf_capacity.max(1);
        let config = DitsLocalConfig {
            leaf_capacity: capacity,
        };
        let dataset_count = dataset_nodes.len();
        let mut index = Self {
            nodes: Vec::new(),
            root: 0,
            config,
            dataset_count,
            layout: OnceLock::new(),
        };
        index.root = index.build_subtree(dataset_nodes, None);
        index
    }

    /// Builds the index directly from raw datasets on a grid, skipping
    /// datasets that have no points inside the grid.
    pub fn build_from_datasets(
        grid: &Grid,
        datasets: &[SpatialDataset],
        config: DitsLocalConfig,
    ) -> Self {
        let nodes: Vec<DatasetNode> = datasets
            .iter()
            .filter_map(|d| DatasetNode::from_dataset(grid, d).ok())
            .collect();
        Self::build(nodes, config)
    }

    /// Recursively builds the subtree for `entries` and returns its arena
    /// index. `parent` is patched into the created node.
    pub(crate) fn build_subtree(
        &mut self,
        mut entries: Vec<DatasetNode>,
        parent: Option<NodeIdx>,
    ) -> NodeIdx {
        let geometry = geometry_of(&entries);
        if entries.len() <= self.config.leaf_capacity {
            let inverted = InvertedIndex::build(entries.iter().map(|n| (n.id, &n.cells)));
            return self.push_node(TreeNode {
                geometry,
                parent,
                kind: NodeKind::Leaf { entries, inverted },
            });
        }

        // Choose the split dimension: the axis with the maximum MBR width.
        let dsplit = if geometry.rect.width() >= geometry.rect.height() {
            0
        } else {
            1
        };

        // Partition by the median pivot on that dimension. Using the median
        // (select_nth_unstable) rather than the node pivot guarantees both
        // sides are non-empty, so construction is O(n log n) and always
        // terminates even for heavily skewed data.
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| coord(a, dsplit).total_cmp(&coord(b, dsplit)));
        let right_entries = entries.split_off(mid);
        let left_entries = entries;

        let idx = self.push_node(TreeNode {
            geometry,
            parent,
            kind: NodeKind::Internal { left: 0, right: 0 },
        });
        let left = self.build_subtree(left_entries, Some(idx));
        let right = self.build_subtree(right_entries, Some(idx));
        if let NodeKind::Internal { left: l, right: r } = &mut self.nodes[idx].kind {
            *l = left;
            *r = right;
        }
        idx
    }

    pub(crate) fn push_node(&mut self, node: TreeNode) -> NodeIdx {
        self.layout.take();
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Decomposes the index into its raw parts (arena, root, config, count);
    /// used by the persistence codec.
    pub(crate) fn parts(&self) -> (&[TreeNode], NodeIdx, DitsLocalConfig, usize) {
        (&self.nodes, self.root, self.config, self.dataset_count)
    }

    /// Reassembles an index from raw parts produced by [`Self::parts`] (or by
    /// the persistence codec).  The caller is responsible for structural
    /// consistency; [`Self::check_invariants`] can verify it afterwards.
    pub(crate) fn from_parts(
        nodes: Vec<TreeNode>,
        root: NodeIdx,
        config: DitsLocalConfig,
        dataset_count: usize,
    ) -> Self {
        Self {
            nodes,
            root,
            config,
            dataset_count,
            layout: OnceLock::new(),
        }
    }

    /// The root node's arena index.
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// Access a node by arena index.
    pub fn node(&self, idx: NodeIdx) -> &TreeNode {
        &self.nodes[idx]
    }

    pub(crate) fn node_mut(&mut self, idx: NodeIdx) -> &mut TreeNode {
        // Every maintenance path (insert/update/delete, splits, collapses)
        // funnels its arena writes through here, so dropping the cached
        // layout at this chokepoint keeps it from ever going stale.
        self.layout.take();
        &mut self.nodes[idx]
    }

    /// Number of nodes in the arena (including nodes orphaned by updates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of datasets currently indexed.
    pub fn dataset_count(&self) -> usize {
        self.dataset_count
    }

    pub(crate) fn set_dataset_count(&mut self, count: usize) {
        self.dataset_count = count;
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> DitsLocalConfig {
        self.config
    }

    /// Geometry of the root node (sent to the data center to build DITS-G).
    pub fn root_geometry(&self) -> NodeGeometry {
        self.nodes[self.root].geometry
    }

    /// Iterates over all leaf arena indices reachable from the root.
    pub fn leaves(&self) -> Vec<NodeIdx> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx].kind {
                NodeKind::Leaf { .. } => out.push(idx),
                NodeKind::Internal { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out
    }

    /// Iterates over every dataset node reachable from the root.
    pub fn dataset_nodes(&self) -> Vec<&DatasetNode> {
        let mut out = Vec::new();
        for leaf in self.leaves() {
            if let NodeKind::Leaf { entries, .. } = &self.nodes[leaf].kind {
                out.extend(entries.iter());
            }
        }
        out
    }

    /// Finds the dataset node with the given id, returning the leaf holding
    /// it plus a reference.
    pub fn find_dataset(&self, id: DatasetId) -> Option<(NodeIdx, &DatasetNode)> {
        for leaf in self.leaves() {
            if let NodeKind::Leaf { entries, .. } = &self.nodes[leaf].kind {
                if let Some(node) = entries.iter().find(|n| n.id == id) {
                    return Some((leaf, node));
                }
            }
        }
        None
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[TreeNode], idx: NodeIdx) -> usize {
            match &nodes[idx].kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Internal { left, right } => {
                    1 + depth(nodes, *left).max(depth(nodes, *right))
                }
            }
        }
        depth(&self.nodes, self.root)
    }

    /// Estimated memory footprint of the index in bytes: tree nodes, dataset
    /// nodes (cell sets) and leaf inverted indexes.  Used for the Fig. 8
    /// memory comparison.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<TreeNode>();
        for node in &self.nodes {
            if let NodeKind::Leaf { entries, inverted } = &node.kind {
                bytes += entries.iter().map(|e| e.memory_bytes()).sum::<usize>();
                bytes += inverted.memory_bytes();
            }
        }
        bytes + self.layout.get().map_or(0, TraversalLayout::memory_bytes)
    }

    /// Checks the structural invariants of the tree; used by tests and by
    /// the update module after mutations. Returns a description of the first
    /// violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen: Vec<DatasetId> = Vec::new();
        self.check_node(self.root, None, &mut seen)?;
        if seen.len() != self.dataset_count {
            return Err(format!(
                "dataset_count {} does not match reachable datasets {}",
                self.dataset_count,
                seen.len()
            ));
        }
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != self.dataset_count {
            return Err("duplicate dataset ids in the tree".to_string());
        }
        Ok(())
    }

    fn check_node(
        &self,
        idx: NodeIdx,
        parent: Option<NodeIdx>,
        seen: &mut Vec<DatasetId>,
    ) -> Result<(), String> {
        let node = &self.nodes[idx];
        if node.parent != parent {
            return Err(format!("node {idx} has wrong parent pointer"));
        }
        match &node.kind {
            NodeKind::Leaf { entries, inverted } => {
                // An emptied leaf must be collapsed into its sibling by the
                // delete path; if one survives anywhere below the root, its
                // fabricated degenerate MBR would be unioned into every
                // ancestor and corrupt the pruning bounds.
                if entries.is_empty() && parent.is_some() {
                    return Err(format!(
                        "leaf {idx} is empty but not the root (degenerate geometry leak)"
                    ));
                }
                if node.geometry.rect != geometry_of(entries).rect {
                    return Err(format!("leaf {idx} geometry is stale or loose"));
                }
                for e in entries {
                    if !node.geometry.rect.contains(e.rect()) {
                        return Err(format!("leaf {idx} MBR does not contain dataset {}", e.id));
                    }
                    seen.push(e.id);
                    for cell in e.cells.iter() {
                        match inverted.posting_list(cell) {
                            Some(list) if list.contains(&e.id) => {}
                            _ => {
                                return Err(format!(
                                    "leaf {idx} inverted index misses cell {cell} of dataset {}",
                                    e.id
                                ))
                            }
                        }
                    }
                }
                Ok(())
            }
            NodeKind::Internal { left, right } => {
                let union = self.nodes[*left]
                    .geometry
                    .rect
                    .union(&self.nodes[*right].geometry.rect);
                if node.geometry.rect != union {
                    return Err(format!(
                        "internal {idx} MBR is not the exact union of its children"
                    ));
                }
                for child in [*left, *right] {
                    let crect = self.nodes[child].geometry.rect;
                    if !node.geometry.rect.contains(&crect) {
                        return Err(format!("internal {idx} MBR does not contain child {child}"));
                    }
                    self.check_node(child, Some(idx), seen)?;
                }
                Ok(())
            }
        }
    }
}

/// Cache-conscious structure-of-arrays arena of the reachable tree, used by
/// every traversal (per-query and batch): node geometries (MBR, pivot,
/// radius), child pairs and leaf entry ranges live in parallel contiguous
/// arrays, and the leaf entries' geometries and ids are flattened into two
/// more, so descent and per-entry bound checks stride over tightly packed
/// cache lines instead of full [`TreeNode`]s (whose leaf payloads — cell
/// sets and inverted indexes — are dead weight until verification).
///
/// Nodes are renumbered in DFS preorder (left subtree first), so an internal
/// node's left child is always the next array slot — the descent direction
/// taken first is the prefetch-friendly one — and arena slots orphaned by
/// leaf collapses are excluded entirely.  [`Self::arena_index`] maps a
/// layout index back to the arena slot holding the node's payload.
///
/// The layout is cached inside [`DitsLocal`] and invalidated by every
/// maintenance mutation; obtain it with [`DitsLocal::traversal_layout`].
#[derive(Debug, Clone, Default)]
pub struct TraversalLayout {
    arena: Vec<NodeIdx>,
    geometries: Vec<NodeGeometry>,
    children: Vec<[NodeIdx; 2]>,
    entry_ranges: Vec<(u32, u32)>,
    entry_geometries: Vec<NodeGeometry>,
    entry_ids: Vec<DatasetId>,
}

/// Sentinel child index marking a leaf in [`TraversalLayout`].
const NO_CHILD: NodeIdx = NodeIdx::MAX;

impl TraversalLayout {
    /// Layout index of the tree root (the DFS starts there).
    pub fn root(&self) -> NodeIdx {
        0
    }

    /// Geometry of layout node `idx`.
    pub fn geometry(&self, idx: NodeIdx) -> &NodeGeometry {
        &self.geometries[idx]
    }

    /// MBR of layout node `idx`.
    pub fn rect(&self, idx: NodeIdx) -> &Mbr {
        &self.geometries[idx].rect
    }

    /// Children of layout node `idx` (layout indices), or `None` for a leaf.
    pub fn children(&self, idx: NodeIdx) -> Option<(NodeIdx, NodeIdx)> {
        let [left, right] = self.children[idx];
        (left != NO_CHILD).then_some((left, right))
    }

    /// Arena slot holding the payload of layout node `idx`.
    pub fn arena_index(&self, idx: NodeIdx) -> NodeIdx {
        self.arena[idx]
    }

    /// Range of layout node `idx`'s leaf entries in the flat entry arrays
    /// (empty for internal nodes).
    pub fn entry_range(&self, idx: NodeIdx) -> std::ops::Range<usize> {
        let (start, end) = self.entry_ranges[idx];
        start as usize..end as usize
    }

    /// Geometry of flat entry `i` (index into an [`Self::entry_range`]).
    pub fn entry_geometry(&self, i: usize) -> &NodeGeometry {
        &self.entry_geometries[i]
    }

    /// Dataset id of flat entry `i` (index into an [`Self::entry_range`]).
    pub fn entry_id(&self, i: usize) -> DatasetId {
        self.entry_ids[i]
    }

    /// Number of reachable nodes covered by the layout.
    pub fn len(&self) -> usize {
        self.geometries.len()
    }

    /// Whether the layout covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.geometries.is_empty()
    }

    /// Heap bytes held by the layout arrays (counted by
    /// [`DitsLocal::memory_bytes`] once the cache is built).
    pub fn memory_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<NodeIdx>()
            + self.geometries.capacity() * std::mem::size_of::<NodeGeometry>()
            + self.children.capacity() * std::mem::size_of::<[NodeIdx; 2]>()
            + self.entry_ranges.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.entry_geometries.capacity() * std::mem::size_of::<NodeGeometry>()
            + self.entry_ids.capacity() * std::mem::size_of::<DatasetId>()
    }
}

impl DitsLocal {
    /// The cached structure-of-arrays [`TraversalLayout`] of the reachable
    /// tree, building it on first use after a mutation.
    pub fn traversal_layout(&self) -> &TraversalLayout {
        self.layout.get_or_init(|| {
            let mut layout = TraversalLayout::default();
            self.layout_subtree(self.root, &mut layout);
            layout
        })
    }

    /// DFS-preorder (left first) flattening of the subtree at arena index
    /// `arena_idx`; returns the layout index assigned to it.
    fn layout_subtree(&self, arena_idx: NodeIdx, out: &mut TraversalLayout) -> NodeIdx {
        let node = &self.nodes[arena_idx];
        let idx = out.arena.len();
        out.arena.push(arena_idx);
        out.geometries.push(node.geometry);
        out.children.push([NO_CHILD; 2]);
        out.entry_ranges.push((0, 0));
        match &node.kind {
            NodeKind::Leaf { entries, .. } => {
                let start = out.entry_ids.len() as u32;
                for e in entries {
                    out.entry_ids.push(e.id);
                    out.entry_geometries.push(e.geometry);
                }
                out.entry_ranges[idx] = (start, out.entry_ids.len() as u32);
            }
            NodeKind::Internal { left, right } => {
                let l = self.layout_subtree(*left, out);
                let r = self.layout_subtree(*right, out);
                out.children[idx] = [l, r];
            }
        }
        idx
    }
}

/// Geometry of a set of dataset nodes (an empty set gets a degenerate MBR at
/// the origin).
pub(crate) fn geometry_of(entries: &[DatasetNode]) -> NodeGeometry {
    let mut rect: Option<Mbr> = None;
    for e in entries {
        rect = Some(match rect {
            Some(r) => r.union(e.rect()),
            None => *e.rect(),
        });
    }
    NodeGeometry::from_mbr(
        rect.unwrap_or_else(|| {
            Mbr::new(spatial::Point::new(0.0, 0.0), spatial::Point::new(0.0, 0.0))
        }),
    )
}

/// Coordinate of a dataset node's pivot along dimension `d`.
fn coord(node: &DatasetNode, d: usize) -> f64 {
    match d {
        0 => node.pivot().x,
        _ => node.pivot().y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;
    use spatial::CellSet;

    pub(crate) fn make_node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn grid_nodes(n: u32) -> Vec<DatasetNode> {
        // n datasets, dataset i occupies a 2x2 block around (4i mod 64, 4i/64).
        (0..n)
            .map(|i| {
                let bx = (i * 4) % 64;
                let by = ((i * 4) / 64) * 4;
                make_node(i, &[(bx, by), (bx + 1, by), (bx, by + 1), (bx + 1, by + 1)])
            })
            .collect()
    }

    #[test]
    fn empty_index_is_valid() {
        let idx = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        assert_eq!(idx.dataset_count(), 0);
        assert_eq!(idx.leaves().len(), 1);
        assert!(idx.node(idx.root()).is_leaf());
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn small_input_becomes_single_leaf() {
        let nodes = grid_nodes(5);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 10 });
        assert_eq!(idx.leaves().len(), 1);
        assert_eq!(idx.height(), 1);
        assert_eq!(idx.dataset_count(), 5);
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn large_input_splits_until_capacity() {
        let nodes = grid_nodes(100);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 8 });
        assert_eq!(idx.dataset_count(), 100);
        assert!(idx.check_invariants().is_ok());
        for leaf in idx.leaves() {
            if let NodeKind::Leaf { entries, .. } = &idx.node(leaf).kind {
                assert!(entries.len() <= 8);
                assert!(!entries.is_empty());
            }
        }
        // Balanced median splits: height is O(log n).
        assert!(idx.height() <= 6, "height {} too large", idx.height());
    }

    #[test]
    fn all_datasets_reachable() {
        let nodes = grid_nodes(37);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let mut ids: Vec<DatasetId> = idx.dataset_nodes().iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn find_dataset_locates_leaf() {
        let nodes = grid_nodes(30);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let (leaf, node) = idx.find_dataset(17).unwrap();
        assert_eq!(node.id, 17);
        assert!(idx.node(leaf).is_leaf());
        assert!(idx.find_dataset(1000).is_none());
    }

    #[test]
    fn identical_pivots_still_terminate() {
        // All datasets identical: median split cannot separate by value but
        // select_nth still produces two non-empty halves.
        let nodes: Vec<DatasetNode> = (0..20).map(|i| make_node(i, &[(5, 5), (6, 6)])).collect();
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 3 });
        assert_eq!(idx.dataset_count(), 20);
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn root_geometry_covers_everything() {
        let nodes = grid_nodes(64);
        let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
        let root = idx.root_geometry();
        for n in &nodes {
            assert!(root.rect.contains(n.rect()));
        }
    }

    #[test]
    fn memory_estimate_is_positive_and_grows() {
        let small = DitsLocal::build(grid_nodes(10), DitsLocalConfig::default());
        let large = DitsLocal::build(grid_nodes(200), DitsLocalConfig::default());
        assert!(small.memory_bytes() > 0);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn traversal_layout_mirrors_the_arena() {
        let idx = DitsLocal::build(grid_nodes(50), DitsLocalConfig { leaf_capacity: 4 });
        let layout = idx.traversal_layout();
        // A freshly built tree has no orphans: every arena slot is reachable.
        assert_eq!(layout.len(), idx.node_count());
        assert!(!layout.is_empty());
        assert_eq!(layout.arena_index(layout.root()), idx.root());
        let mut seen_entries = 0usize;
        for i in 0..layout.len() {
            let node = idx.node(layout.arena_index(i));
            assert_eq!(layout.rect(i), &node.geometry.rect);
            assert_eq!(layout.geometry(i).pivot, node.geometry.pivot);
            match &node.kind {
                NodeKind::Internal { left, right } => {
                    let (l, r) = layout.children(i).expect("internal node has children");
                    // DFS preorder: the left child is the next slot.
                    assert_eq!(l, i + 1);
                    assert_eq!(layout.arena_index(l), *left);
                    assert_eq!(layout.arena_index(r), *right);
                    assert!(layout.entry_range(i).is_empty());
                }
                NodeKind::Leaf { entries, .. } => {
                    assert_eq!(layout.children(i), None);
                    let range = layout.entry_range(i);
                    assert_eq!(range.len(), entries.len());
                    for (j, e) in range.zip(entries.iter()) {
                        assert_eq!(layout.entry_id(j), e.id);
                        assert_eq!(layout.entry_geometry(j).rect, e.geometry.rect);
                        seen_entries += 1;
                    }
                }
            }
        }
        assert_eq!(seen_entries, idx.dataset_count());
    }

    #[test]
    fn traversal_layout_cache_invalidated_by_maintenance() {
        let mut idx = DitsLocal::build(grid_nodes(20), DitsLocalConfig { leaf_capacity: 4 });
        let before = idx.traversal_layout().len();
        assert!(idx.insert(make_node(100, &[(60, 60), (61, 61)])));
        let layout = idx.traversal_layout();
        // The rebuilt layout sees the new dataset.
        let flat_ids: Vec<DatasetId> = (0..layout.len())
            .flat_map(|i| layout.entry_range(i))
            .map(|j| layout.entry_id(j))
            .collect();
        assert!(flat_ids.contains(&100));
        assert_eq!(flat_ids.len(), idx.dataset_count());
        assert!(layout.len() >= before);
        // Deletions that collapse leaves leave orphaned arena slots behind;
        // the layout excludes them.
        assert!(idx.delete(100));
        assert!(idx.delete(0));
        let layout = idx.traversal_layout();
        assert!(layout.len() <= idx.node_count());
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn layout_cache_counts_in_memory_estimate() {
        let idx = DitsLocal::build(grid_nodes(50), DitsLocalConfig { leaf_capacity: 4 });
        let cold = idx.memory_bytes();
        let layout_bytes = idx.traversal_layout().memory_bytes();
        assert!(layout_bytes > 0);
        assert_eq!(idx.memory_bytes(), cold + layout_bytes);
    }

    #[test]
    fn build_from_datasets_skips_empty() {
        let grid = spatial::Grid::global(10).unwrap();
        let datasets = vec![
            SpatialDataset::new(0, vec![spatial::Point::new(10.0, 10.0)]),
            SpatialDataset::new(1, vec![]),
            SpatialDataset::new(2, vec![spatial::Point::new(-10.0, -10.0)]),
        ];
        let idx = DitsLocal::build_from_datasets(&grid, &datasets, DitsLocalConfig::default());
        assert_eq!(idx.dataset_count(), 2);
    }

    proptest! {
        #[test]
        fn prop_construction_invariants_hold(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..256, 0u32..256), 1..12), 1..80),
            capacity in 1usize..12,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, coords)| make_node(i as DatasetId, coords))
                .collect();
            let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: capacity });
            prop_assert!(idx.check_invariants().is_ok());
            for leaf in idx.leaves() {
                if let NodeKind::Leaf { entries, .. } = &idx.node(leaf).kind {
                    prop_assert!(entries.len() <= capacity.max(1));
                }
            }
        }
    }
}
