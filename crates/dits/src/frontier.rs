//! Shared frontier traversal: one DITS-L walk for a whole batch of queries.
//!
//! A batch of `N` queries against the same local index does not need `N`
//! independent root-to-leaf walks — the tree is the same for all of them.
//! The batch algorithms here descend the arena once per batch (overlap) or
//! once per greedy iteration (coverage), carrying a per-node *frontier*: the
//! list of query indices still alive at that node.  At every node each query
//! in the frontier is tested against the exact same pruning rules its
//! per-query counterpart would apply — MBR intersection plus the Lemma 2/3
//! leaf bounds for OJSP ([`crate::overlap`]), the Lemma 4 distance bounds
//! for CJSP ([`crate::coverage`]) — and queries drop out of the frontier
//! individually.  A node is therefore visited at most once per batch while
//! every query's answer, and every counter of its [`SearchStats`], is
//! **identical** to the per-query run: the walk shares the traversal, never
//! the pruning decisions.  The descent runs over the cache-conscious
//! structure-of-arrays [`TraversalLayout`](crate::local::TraversalLayout)
//! snapshot, and verification (the expensive exact phase) reuses the same
//! code as the per-query algorithms.
//!
//! The multi-source engine's per-(source, batch) shard mode is built on
//! these entry points; the per-(query, source) mode remains the parity
//! oracle.  See the repository README's "Performance" section.

use crate::bounds::{leaf_overlap_bounds, node_distance_bounds};
use crate::coverage::{collect_all, greedy_pick, CoverageConfig, CoverageResult};
use crate::local::{DitsLocal, NodeIdx, NodeKind};
use crate::node::{DatasetNode, NodeGeometry};
use crate::overlap::{verify_candidates, LeafCandidate, OverlapResult};
use crate::stats::SearchStats;
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId, Mbr};
use std::collections::HashSet;

/// Batch OverlapSearch: answers every query of the batch with one shared
/// walk of the index.
///
/// Returns one `(results, stats)` pair per query, in query order, each
/// identical to what [`overlap_search`](crate::overlap::overlap_search)
/// returns for that query alone.
pub fn overlap_search_batch(
    index: &DitsLocal,
    queries: &[CellSet],
    k: usize,
) -> Vec<(Vec<OverlapResult>, SearchStats)> {
    overlap_search_batch_with_options(index, queries, k, true)
}

/// Per-query state of the batch overlap search: the pruning rect, the stats
/// the shared walk accumulates, and the leaf candidates it collects.  One
/// struct per query keeps the walk to a single checked lookup per frontier
/// entry instead of indexing three parallel vectors.
struct OverlapState {
    /// `None` for queries that never enter the walk (empty query, or
    /// `k = 0` for the whole batch): the per-query fast path — empty
    /// results, zero stats.
    rect: Option<Mbr>,
    stats: SearchStats,
    candidates: Vec<LeafCandidate>,
}

/// Batch OverlapSearch with the leaf-bound pruning optionally disabled
/// (mirrors [`overlap_search_with_options`](crate::overlap::overlap_search_with_options)).
pub fn overlap_search_batch_with_options(
    index: &DitsLocal,
    queries: &[CellSet],
    k: usize,
    use_bounds: bool,
) -> Vec<(Vec<OverlapResult>, SearchStats)> {
    let mut states: Vec<OverlapState> = queries
        .iter()
        .map(|q| OverlapState {
            rect: if k == 0 { None } else { q.mbr_cell_space() },
            stats: SearchStats::new(),
            candidates: Vec::new(),
        })
        .collect();
    let root_frontier: Vec<u32> = states
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.rect.as_ref().map(|_| i as u32))
        .collect();

    let walk_started = std::time::Instant::now();
    if !root_frontier.is_empty() {
        let layout = index.traversal_layout();
        let mut stack: Vec<(NodeIdx, Vec<u32>)> = vec![(layout.root(), root_frontier)];
        while let Some((node_idx, frontier)) = stack.pop() {
            let rect = layout.rect(node_idx);
            let mut survivors: Vec<u32> = Vec::with_capacity(frontier.len());
            for &q in &frontier {
                // Frontier indices come from the enumeration above, so a
                // miss here (or a rect-less query below) would mean the
                // frontier was built wrong; dropping the query is the
                // panic-free containment of that bug.
                let Some(qs) = states.get_mut(q as usize) else {
                    continue;
                };
                qs.stats.nodes_visited += 1;
                let Some(qrect) = qs.rect.as_ref() else {
                    continue;
                };
                if rect.intersects(qrect) {
                    survivors.push(q);
                } else {
                    qs.stats.nodes_pruned += 1;
                }
            }
            if survivors.is_empty() {
                continue;
            }
            match layout.children(node_idx) {
                Some((left, right)) => {
                    // Left before right, exactly like the per-query
                    // recursion, so each query's candidate list accumulates
                    // in the same order (ties in the later upper-bound sort
                    // then resolve identically).
                    stack.push((right, survivors.clone()));
                    stack.push((left, survivors));
                }
                None => {
                    let arena_idx = layout.arena_index(node_idx);
                    if let NodeKind::Leaf { entries, inverted } = &index.node(arena_idx).kind {
                        if entries.is_empty() {
                            continue;
                        }
                        for &q in &survivors {
                            let qi = q as usize;
                            let (Some(qs), Some(query)) = (states.get_mut(qi), queries.get(qi))
                            else {
                                continue;
                            };
                            let (lb, ub) = if use_bounds {
                                leaf_overlap_bounds(inverted, query, entries.len())
                            } else {
                                (0, usize::MAX)
                            };
                            if use_bounds && ub == 0 {
                                qs.stats.leaves_pruned_by_bounds += 1;
                                continue;
                            }
                            qs.candidates.push((ub, lb, arena_idx));
                        }
                    }
                }
            }
        }
    }

    crate::phase::add_traversal(walk_started.elapsed());

    let verify_started = std::time::Instant::now();
    let out = queries
        .iter()
        .zip(states)
        .map(|(query, mut qs)| {
            let results = if qs.rect.is_some() {
                verify_candidates(
                    index,
                    query,
                    k,
                    use_bounds,
                    std::mem::take(&mut qs.candidates),
                    &mut qs.stats,
                )
            } else {
                Vec::new()
            };
            (results, qs.stats)
        })
        .collect();
    crate::phase::add_verify(verify_started.elapsed());
    out
}

/// Per-query state of the batch coverage search.  The `probe`, `connected`
/// and `seen` fields are rebuilt at the start of every greedy iteration
/// (clearing, not reallocating, the collections); keeping them here instead
/// of in per-iteration parallel vectors means the shared walk performs one
/// checked lookup per frontier entry.
struct CoverageState<'a> {
    merged_cells: CellSet,
    merged_geometry: NodeGeometry,
    selected: HashSet<DatasetId>,
    result: CoverageResult,
    stats: SearchStats,
    active: bool,
    /// Distance probe over `merged_cells`, snapshotted before each walk so
    /// the walk never aliases the cells it prunes against; `None` while the
    /// query is inactive.  The per-query algorithm rebuilds its probe every
    /// iteration too.
    probe: Option<NeighborProbe>,
    /// Connect set collected by the current walk, in discovery order.
    connected: Vec<&'a DatasetNode>,
    /// Dataset ids already in `connected` for the current walk.
    seen: HashSet<DatasetId>,
}

/// Batch CoverageSearch: runs the greedy algorithm for every query of the
/// batch, sharing one index walk per greedy iteration across all queries
/// that are still selecting.
///
/// Returns one `(result, stats)` pair per query, in query order, each
/// identical to what [`coverage_search`](crate::coverage::coverage_search)
/// returns for that query alone.  The shared walk requires the merged-result
/// strategy; with `merge_results = false` (the SG+DITS ablation mode, whose
/// per-member searches have nothing to share) the batch simply runs the
/// per-query algorithm.
pub fn coverage_search_batch(
    index: &DitsLocal,
    queries: &[CellSet],
    config: CoverageConfig,
) -> Vec<(CoverageResult, SearchStats)> {
    if !config.merge_results {
        return queries
            .iter()
            .map(|q| crate::coverage::coverage_search(index, q, config))
            .collect();
    }

    let mut states: Vec<CoverageState<'_>> = queries
        .iter()
        .map(|q| {
            let query_coverage = q.len();
            let mut state = CoverageState {
                merged_cells: q.clone(),
                merged_geometry: NodeGeometry::from_mbr(Mbr::new(
                    spatial::Point::new(0.0, 0.0),
                    spatial::Point::new(0.0, 0.0),
                )),
                selected: HashSet::new(),
                result: CoverageResult {
                    datasets: Vec::new(),
                    coverage: query_coverage,
                    query_coverage,
                    gains: Vec::new(),
                },
                stats: SearchStats::new(),
                active: true,
                probe: None,
                connected: Vec::new(),
                seen: HashSet::new(),
            };
            match q.mbr_cell_space() {
                Some(m) if config.k > 0 && index.dataset_count() > 0 => {
                    state.merged_geometry = NodeGeometry::from_mbr(m);
                }
                _ => state.active = false,
            }
            state
        })
        .collect();

    let layout = index.traversal_layout();
    loop {
        let active: Vec<u32> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| i as u32)
            .collect();
        if active.is_empty() {
            break;
        }

        // Snapshot the probe before the walk: it owns its coordinates, so
        // the walk never aliases the cells it prunes against.  The per-query
        // algorithm rebuilds its probe every iteration too.  The connect-set
        // collections are cleared, not reallocated, across iterations.
        let walk_started = std::time::Instant::now();
        for s in states.iter_mut() {
            let probe = s.active.then(|| NeighborProbe::new(&s.merged_cells));
            s.probe = probe;
            s.connected.clear();
            s.seen.clear();
        }

        // FindConnectSet for all active queries in one walk.
        let mut stack: Vec<(NodeIdx, Vec<u32>)> = vec![(layout.root(), active)];
        while let Some((node_idx, frontier)) = stack.pop() {
            let geometry = layout.geometry(node_idx);
            let mut kept: Vec<u32> = Vec::with_capacity(frontier.len());
            for &q in &frontier {
                // Frontier indices come from the active-query enumeration,
                // so a miss is a frontier-construction bug; skipping the
                // query contains it without a panic.
                let Some(state) = states.get_mut(q as usize) else {
                    continue;
                };
                state.stats.nodes_visited += 1;
                let (lb, ub) = node_distance_bounds(geometry, &state.merged_geometry);
                if ub <= config.delta {
                    // Everything below is connected for this query: collect
                    // the subtree and drop the query from the frontier.
                    collect_all(
                        index,
                        layout.arena_index(node_idx),
                        &mut state.connected,
                        &mut state.seen,
                    );
                } else if lb > config.delta {
                    state.stats.nodes_pruned += 1;
                } else {
                    kept.push(q);
                }
            }
            if kept.is_empty() {
                continue;
            }
            match layout.children(node_idx) {
                Some((left, right)) => {
                    stack.push((right, kept.clone()));
                    stack.push((left, kept));
                }
                None => {
                    let arena_idx = layout.arena_index(node_idx);
                    if let NodeKind::Leaf { entries, .. } = &index.node(arena_idx).kind {
                        let base = layout.entry_range(node_idx).start;
                        for &q in &kept {
                            let Some(state) = states.get_mut(q as usize) else {
                                continue;
                            };
                            // Probes exist for exactly the active queries; a
                            // missing one is a frontier-construction bug and
                            // skipping the query contains it without a panic.
                            let Some(probe) = state.probe.as_ref() else {
                                continue;
                            };
                            for (offset, entry) in entries.iter().enumerate() {
                                if state.seen.contains(&layout.entry_id(base + offset)) {
                                    continue;
                                }
                                let (elb, eub) = node_distance_bounds(
                                    layout.entry_geometry(base + offset),
                                    &state.merged_geometry,
                                );
                                let is_connected = if eub <= config.delta {
                                    true
                                } else if elb > config.delta {
                                    false
                                } else {
                                    state.stats.exact_computations += 1;
                                    probe.within(&entry.cells, config.delta)
                                };
                                if is_connected && state.seen.insert(entry.id) {
                                    state.connected.push(entry);
                                    state.stats.candidates += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        crate::phase::add_traversal(walk_started.elapsed());

        // Greedy selection per query, identical to the per-query algorithm.
        let verify_started = std::time::Instant::now();
        for state in states.iter_mut().filter(|s| s.active) {
            match greedy_pick(
                &state.connected,
                &state.selected,
                &state.merged_cells,
                &mut state.stats,
            ) {
                Some((best, tau)) if tau > 0 => {
                    state.selected.insert(best.id);
                    state.result.datasets.push(best.id);
                    state.result.gains.push(tau as usize);
                    state.merged_cells.union_in_place(&best.cells);
                    state.merged_geometry = state.merged_geometry.union(&best.geometry);
                    state.result.coverage = state.merged_cells.len();
                    if state.result.datasets.len() >= config.k {
                        state.active = false;
                    }
                }
                _ => state.active = false,
            }
        }
        crate::phase::add_verify(verify_started.elapsed());
    }

    states.into_iter().map(|s| (s.result, s.stats)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage_search;
    use crate::local::DitsLocalConfig;
    use crate::overlap::{overlap_search, overlap_search_with_options};
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    fn random_nodes(n: usize, seed: u64) -> Vec<DatasetNode> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx = rng.random_range(0..200u32);
                let cy = rng.random_range(0..200u32);
                let len = rng.random_range(1..20usize);
                let coords: Vec<(u32, u32)> = (0..len)
                    .map(|_| {
                        (
                            (cx + rng.random_range(0..8)).min(255),
                            (cy + rng.random_range(0..8)).min(255),
                        )
                    })
                    .collect();
                node(i as DatasetId, &coords)
            })
            .collect()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<CellSet> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cx = rng.random_range(0..200u32);
                let cy = rng.random_range(0..200u32);
                let len = rng.random_range(1..12usize);
                cs(&(0..len)
                    .map(|_| {
                        (
                            (cx + rng.random_range(0..10)).min(255),
                            (cy + rng.random_range(0..10)).min(255),
                        )
                    })
                    .collect::<Vec<_>>())
            })
            .collect()
    }

    #[test]
    fn batch_overlap_matches_per_query_exactly() {
        let nodes = random_nodes(300, 42);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 10 });
        let queries = random_queries(20, 7);
        for k in [1usize, 5, 20] {
            let batch = overlap_search_batch(&idx, &queries, k);
            for (q, (batch_results, batch_stats)) in queries.iter().zip(&batch) {
                let (solo_results, solo_stats) = overlap_search(&idx, q, k);
                assert_eq!(batch_results, &solo_results, "results diverge at k={k}");
                assert_eq!(batch_stats, &solo_stats, "stats diverge at k={k}");
            }
        }
    }

    #[test]
    fn batch_overlap_without_bounds_matches_per_query() {
        let nodes = random_nodes(150, 9);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 5 });
        let queries = random_queries(8, 11);
        let batch = overlap_search_batch_with_options(&idx, &queries, 10, false);
        for (q, (batch_results, batch_stats)) in queries.iter().zip(&batch) {
            let (solo_results, solo_stats) = overlap_search_with_options(&idx, q, 10, false);
            assert_eq!(batch_results, &solo_results);
            assert_eq!(batch_stats, &solo_stats);
        }
    }

    #[test]
    fn batch_overlap_handles_degenerate_queries() {
        let nodes = random_nodes(50, 3);
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        // An empty query mixed into the batch, and an empty batch.
        let queries = vec![cs(&[(10, 10)]), CellSet::new(), cs(&[(250, 250)])];
        let batch = overlap_search_batch(&idx, &queries, 5);
        assert_eq!(batch.len(), 3);
        assert!(batch[1].0.is_empty());
        assert_eq!(batch[1].1, SearchStats::new());
        assert!(overlap_search_batch(&idx, &[], 5).is_empty());
        // k = 0 short-circuits every query.
        for (results, stats) in overlap_search_batch(&idx, &queries, 0) {
            assert!(results.is_empty());
            assert_eq!(stats, SearchStats::new());
        }
    }

    #[test]
    fn batch_overlap_on_empty_index() {
        let idx = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let queries = vec![cs(&[(0, 0)])];
        let batch = overlap_search_batch(&idx, &queries, 3);
        let (solo_results, solo_stats) = overlap_search(&idx, &queries[0], 3);
        assert_eq!(batch[0].0, solo_results);
        assert_eq!(batch[0].1, solo_stats);
    }

    #[test]
    fn batch_coverage_matches_per_query_exactly() {
        let nodes = random_nodes(200, 21);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 6 });
        let queries = random_queries(12, 22);
        for delta in [2.0, 8.0] {
            let config = CoverageConfig::new(4, delta);
            let batch = coverage_search_batch(&idx, &queries, config);
            for (q, (batch_result, batch_stats)) in queries.iter().zip(&batch) {
                let (solo_result, solo_stats) = coverage_search(&idx, q, config);
                assert_eq!(batch_result, &solo_result, "results diverge at δ={delta}");
                assert_eq!(batch_stats, &solo_stats, "stats diverge at δ={delta}");
            }
        }
    }

    #[test]
    fn batch_coverage_without_merge_falls_back_to_per_query() {
        let nodes = random_nodes(60, 5);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let queries = random_queries(4, 6);
        let config = CoverageConfig {
            k: 3,
            delta: 4.0,
            merge_results: false,
        };
        let batch = coverage_search_batch(&idx, &queries, config);
        for (q, (batch_result, batch_stats)) in queries.iter().zip(&batch) {
            let (solo_result, solo_stats) = coverage_search(&idx, q, config);
            assert_eq!(batch_result, &solo_result);
            assert_eq!(batch_stats, &solo_stats);
        }
    }

    #[test]
    fn batch_coverage_handles_degenerate_queries() {
        let nodes = random_nodes(40, 13);
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let queries = vec![CellSet::new(), cs(&[(5, 5), (6, 6)])];
        let config = CoverageConfig::new(3, 4.0);
        let batch = coverage_search_batch(&idx, &queries, config);
        assert_eq!(batch.len(), 2);
        assert!(batch[0].0.datasets.is_empty());
        assert_eq!(batch[0].1, SearchStats::new());
        let (solo, solo_stats) = coverage_search(&idx, &queries[1], config);
        assert_eq!(batch[1].0, solo);
        assert_eq!(batch[1].1, solo_stats);
        assert!(coverage_search_batch(&idx, &[], config).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_batch_overlap_parity(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..64, 0u32..64), 1..10), 1..50),
            queries in proptest::collection::vec(
                proptest::collection::vec((0u32..64, 0u32..64), 0..12), 1..8),
            k in 1usize..10,
            capacity in 1usize..8,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: capacity });
            let qs: Vec<CellSet> = queries.iter().map(|q| cs(q)).collect();
            let batch = overlap_search_batch(&idx, &qs, k);
            for (q, (batch_results, batch_stats)) in qs.iter().zip(&batch) {
                let (solo_results, solo_stats) = overlap_search(&idx, q, k);
                prop_assert_eq!(batch_results, &solo_results);
                prop_assert_eq!(batch_stats, &solo_stats);
            }
        }

        #[test]
        fn prop_batch_coverage_parity(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u32..24), 1..6), 1..25),
            queries in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u32..24), 0..5), 1..6),
            k in 1usize..5,
            delta in 1.0f64..6.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 3 });
            let qs: Vec<CellSet> = queries.iter().map(|q| cs(q)).collect();
            let config = CoverageConfig::new(k, delta);
            let batch = coverage_search_batch(&idx, &qs, config);
            for (q, (batch_result, batch_stats)) in qs.iter().zip(&batch) {
                let (solo_result, solo_stats) = coverage_search(&idx, q, config);
                prop_assert_eq!(batch_result, &solo_result);
                prop_assert_eq!(batch_stats, &solo_stats);
            }
        }
    }
}
