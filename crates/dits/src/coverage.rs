//! CoverageSearch: the greedy approximation algorithm for CJSP
//! (Section VI-C, Algorithm 3).
//!
//! CJSP asks for at most `k` datasets maximising `|S_Q ∪ (∪ S_Di)|` under the
//! constraint that the result set together with the query satisfies spatial
//! connectivity.  The problem is NP-hard (Lemma 1), so the paper proposes a
//! greedy strategy: in each of `k` iterations, find all datasets *directly
//! connected* to the merged result obtained so far (`FindConnectSet`, pruned
//! with Lemma 4's distance bounds over DITS-L), and add the one with the
//! largest marginal gain (Equation 3).  Merging the running result into a
//! single node means each iteration performs one tree search instead of one
//! per already-selected dataset, which is the difference between
//! CoverageSearch and the SG+DITS baseline.

use crate::bounds::node_distance_bounds;
use crate::local::{DitsLocal, NodeIdx, NodeKind, TraversalLayout};
use crate::node::{DatasetNode, NodeGeometry};
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId};
use std::collections::HashSet;

/// Configuration of a coverage search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageConfig {
    /// Maximum number of result datasets `k`.
    pub k: usize,
    /// Connectivity threshold δ (in cell units).
    pub delta: f64,
    /// When `true` (the default and the paper's CoverageSearch), the running
    /// result is merged into a single query node so each iteration performs
    /// one connectivity search.  When `false` the algorithm behaves like the
    /// SG+DITS baseline: one connectivity search per already-selected
    /// dataset per iteration.
    pub merge_results: bool,
}

impl CoverageConfig {
    /// Convenience constructor with merging enabled.
    pub fn new(k: usize, delta: f64) -> Self {
        Self {
            k,
            delta,
            merge_results: true,
        }
    }
}

/// Result of a coverage search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageResult {
    /// Selected datasets in the order the greedy algorithm picked them.
    pub datasets: Vec<DatasetId>,
    /// Total coverage `|S_Q ∪ (∪ S_Di)|` after all selections.
    pub coverage: usize,
    /// Coverage of the query alone, for reference.
    pub query_coverage: usize,
    /// Per-iteration marginal gains.
    pub gains: Vec<usize>,
}

/// Runs CoverageSearch (Algorithm 3) over a local index.
pub fn coverage_search(
    index: &DitsLocal,
    query: &CellSet,
    config: CoverageConfig,
) -> (CoverageResult, SearchStats) {
    let mut stats = SearchStats::new();
    let query_coverage = query.len();
    let mut result = CoverageResult {
        datasets: Vec::new(),
        coverage: query_coverage,
        query_coverage,
        gains: Vec::new(),
    };
    if config.k == 0 || query.is_empty() || index.dataset_count() == 0 {
        return (result, stats);
    }

    // The merged node N_M starts as the query node.
    let mut merged_cells = query.clone();
    let mut merged_geometry = match merged_cells.mbr_cell_space() {
        Some(m) => NodeGeometry::from_mbr(m),
        None => return (result, stats),
    };
    let mut selected: HashSet<DatasetId> = HashSet::new();
    // When merging is disabled (SG+DITS mode) we keep the individual result
    // members and search from each of them every iteration, with the probe of
    // every member pre-built once.
    let mut members: Vec<(NodeGeometry, NeighborProbe)> =
        vec![(merged_geometry, NeighborProbe::new(&merged_cells))];

    while result.datasets.len() < config.k {
        // FindConnectSet: all dataset nodes directly connected to the merged
        // result (or to any member when merging is off).
        let mut connected: Vec<&DatasetNode> = Vec::new();
        let mut seen: HashSet<DatasetId> = HashSet::new();
        let started = std::time::Instant::now();
        let layout = index.traversal_layout();
        if config.merge_results {
            let probe = NeighborProbe::new(&merged_cells);
            find_connect_set(
                index,
                layout,
                layout.root(),
                &merged_geometry,
                &probe,
                config.delta,
                &mut connected,
                &mut seen,
                &mut stats,
            );
        } else {
            for (geom, probe) in &members {
                find_connect_set(
                    index,
                    layout,
                    layout.root(),
                    geom,
                    probe,
                    config.delta,
                    &mut connected,
                    &mut seen,
                    &mut stats,
                );
            }
        }
        crate::phase::add_traversal(started.elapsed());

        let started = std::time::Instant::now();
        let pick = greedy_pick(&connected, &selected, &merged_cells, &mut stats);
        crate::phase::add_verify(started.elapsed());
        let Some((best, tau)) = pick else {
            break;
        };
        if tau <= 0 {
            // No remaining connected dataset adds any new cell.
            break;
        }
        selected.insert(best.id);
        result.datasets.push(best.id);
        result.gains.push(tau as usize);
        merged_cells.union_in_place(&best.cells);
        merged_geometry = merged_geometry.union(&best.geometry);
        result.coverage = merged_cells.len();
        if !config.merge_results {
            members.push((best.geometry, NeighborProbe::new(&best.cells)));
        }
    }

    (result, stats)
}

/// The greedy choice of Algorithm 3, shared between the per-query search and
/// the batch frontier traversal so both make identical selections and count
/// identical statistics: the connected dataset with the maximum marginal
/// gain, with the paper's size filter `|N_D.S_D| ≥ τ` as a cheap pre-test (a
/// dataset with fewer cells than the best gain found so far can never match
/// it).  Ties are broken by the smaller dataset id so every greedy variant
/// (CoverageSearch, SG+DITS, SG) makes identical choices and stays
/// comparable.  Returns the winner and its gain `τ`; the caller stops when
/// the gain is not positive.
pub(crate) fn greedy_pick<'a>(
    connected: &[&'a DatasetNode],
    selected: &HashSet<DatasetId>,
    merged_cells: &CellSet,
    stats: &mut SearchStats,
) -> Option<(&'a DatasetNode, isize)> {
    let mut tau: isize = -1;
    let mut best: Option<&DatasetNode> = None;
    for &node in connected {
        if selected.contains(&node.id) {
            continue;
        }
        if (node.cells.len() as isize) < tau {
            continue;
        }
        stats.exact_computations += 1;
        let gain = node.cells.marginal_gain(merged_cells) as isize;
        let wins = match best {
            None => true,
            Some(current) => gain > tau || (gain == tau && node.id < current.id),
        };
        if wins {
            tau = gain;
            best = Some(node);
        }
    }
    best.map(|b| (b, tau))
}

/// `FindConnectSet` of Algorithm 3, descending the cached layout
/// (`node_idx` is a layout index): collects every dataset node whose
/// cell-based distance to the probe is at most δ, pruning subtrees with the
/// Lemma 4 bounds.  Per-entry bound checks read the layout's flat entry
/// geometry array; a dataset's cells are only touched when its bounds are
/// inconclusive.
#[allow(clippy::too_many_arguments)]
fn find_connect_set<'a>(
    index: &'a DitsLocal,
    layout: &TraversalLayout,
    node_idx: NodeIdx,
    probe_geometry: &NodeGeometry,
    probe: &NeighborProbe,
    delta: f64,
    out: &mut Vec<&'a DatasetNode>,
    seen: &mut HashSet<DatasetId>,
    stats: &mut SearchStats,
) {
    stats.nodes_visited += 1;
    let (lb, ub) = node_distance_bounds(layout.geometry(node_idx), probe_geometry);
    if ub <= delta {
        // Every dataset below this node is guaranteed to be connected.
        collect_all(index, layout.arena_index(node_idx), out, seen);
        return;
    }
    if lb > delta {
        stats.nodes_pruned += 1;
        return;
    }
    match layout.children(node_idx) {
        None => {
            let arena_idx = layout.arena_index(node_idx);
            if let NodeKind::Leaf { entries, .. } = &index.node(arena_idx).kind {
                let base = layout.entry_range(node_idx).start;
                for (offset, entry) in entries.iter().enumerate() {
                    if seen.contains(&layout.entry_id(base + offset)) {
                        // Already found connected through an earlier member —
                        // skip the (potentially expensive) exact distance test.
                        continue;
                    }
                    let (elb, eub) =
                        node_distance_bounds(layout.entry_geometry(base + offset), probe_geometry);
                    let connected = if eub <= delta {
                        true
                    } else if elb > delta {
                        false
                    } else {
                        stats.exact_computations += 1;
                        probe.within(&entry.cells, delta)
                    };
                    if connected && seen.insert(entry.id) {
                        out.push(entry);
                        stats.candidates += 1;
                    }
                }
            }
        }
        Some((left, right)) => {
            find_connect_set(
                index,
                layout,
                left,
                probe_geometry,
                probe,
                delta,
                out,
                seen,
                stats,
            );
            find_connect_set(
                index,
                layout,
                right,
                probe_geometry,
                probe,
                delta,
                out,
                seen,
                stats,
            );
        }
    }
}

/// Adds every dataset node in the subtree to the output.
pub(crate) fn collect_all<'a>(
    index: &'a DitsLocal,
    node_idx: NodeIdx,
    out: &mut Vec<&'a DatasetNode>,
    seen: &mut HashSet<DatasetId>,
) {
    match &index.node(node_idx).kind {
        NodeKind::Leaf { entries, .. } => {
            for e in entries {
                if seen.insert(e.id) {
                    out.push(e);
                }
            }
        }
        NodeKind::Internal { left, right } => {
            collect_all(index, *left, out, seen);
            collect_all(index, *right, out, seen);
        }
    }
}

/// Exhaustive-search CJSP solver for tiny instances: tries every subset of at
/// most `k` datasets that satisfies spatial connectivity with the query and
/// returns the best coverage.  Exponential — only for tests validating the
/// greedy algorithm's approximation quality.
pub fn coverage_search_exhaustive(
    datasets: &[DatasetNode],
    query: &CellSet,
    k: usize,
    delta: f64,
) -> usize {
    use spatial::satisfies_spatial_connectivity;
    let n = datasets.len();
    assert!(n <= 16, "exhaustive CJSP only supports tiny instances");
    let mut best = query.len();
    for mask in 0u32..(1 << n) {
        if (mask.count_ones() as usize) > k {
            continue;
        }
        let chosen: Vec<&DatasetNode> = datasets
            .iter()
            .take(n)
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| d)
            .collect();
        let mut sets: Vec<&CellSet> = chosen.iter().map(|d| &d.cells).collect();
        sets.push(query);
        if !satisfies_spatial_connectivity(&sets, delta) {
            continue;
        }
        let mut union = query.clone();
        for d in &chosen {
            union.union_in_place(&d.cells);
        }
        best = best.max(union.len());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::DitsLocalConfig;
    use proptest::prelude::*;
    use spatial::satisfies_spatial_connectivity;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn selects_connected_chain() {
        // Query at x=0; datasets form a chain 0-1-2 going right plus a far
        // island 3 that is never connected.
        let nodes = vec![
            node(0, &[(1, 0), (2, 0)]),
            node(1, &[(3, 0), (4, 0)]),
            node(2, &[(5, 0), (6, 0)]),
            node(3, &[(50, 50), (51, 50)]),
        ];
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 2 });
        let query = cs(&[(0, 0)]);
        let (result, _) = coverage_search(&idx, &query, CoverageConfig::new(3, 1.0));
        assert_eq!(result.datasets, vec![0, 1, 2]);
        assert_eq!(result.coverage, 7); // query 1 cell + 6 dataset cells
        assert_eq!(result.gains, vec![2, 2, 2]);
    }

    #[test]
    fn far_island_reached_only_with_large_delta() {
        let nodes = vec![node(0, &[(10, 10), (11, 10)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0)]);
        let (tight, _) = coverage_search(&idx, &query, CoverageConfig::new(1, 2.0));
        assert!(tight.datasets.is_empty());
        assert_eq!(tight.coverage, 1);
        let (loose, _) = coverage_search(&idx, &query, CoverageConfig::new(1, 20.0));
        assert_eq!(loose.datasets, vec![0]);
        assert_eq!(loose.coverage, 3);
    }

    #[test]
    fn greedy_prefers_larger_marginal_gain() {
        // Both datasets are connected; dataset 1 covers more new cells.
        let nodes = vec![
            node(0, &[(1, 1), (2, 1)]),
            node(1, &[(1, 2), (2, 2), (3, 2), (4, 2)]),
        ];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 1)]);
        let (result, _) = coverage_search(&idx, &query, CoverageConfig::new(1, 2.0));
        assert_eq!(result.datasets, vec![1]);
        assert_eq!(result.gains, vec![4]);
    }

    #[test]
    fn results_satisfy_spatial_connectivity() {
        let nodes: Vec<DatasetNode> = (0..40)
            .map(|i| {
                let x = (i % 8) * 3;
                let y = (i / 8) * 3;
                node(i, &[(x, y), (x + 1, y)])
            })
            .collect();
        let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 4 });
        let query = cs(&[(0, 0), (1, 1)]);
        let (result, _) = coverage_search(&idx, &query, CoverageConfig::new(6, 3.0));
        assert!(!result.datasets.is_empty());
        let chosen: Vec<&CellSet> = nodes
            .iter()
            .filter(|n| result.datasets.contains(&n.id))
            .map(|n| &n.cells)
            .collect();
        let mut sets = chosen.clone();
        sets.push(&query);
        assert!(satisfies_spatial_connectivity(&sets, 3.0));
    }

    #[test]
    fn merge_and_no_merge_modes_agree_on_coverage_quality() {
        let nodes: Vec<DatasetNode> = (0..30)
            .map(|i| {
                let x = (i % 6) * 2;
                let y = (i / 6) * 2;
                node(i, &[(x, y), (x + 1, y), (x, y + 1)])
            })
            .collect();
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let query = cs(&[(0, 0)]);
        let merged = coverage_search(
            &idx,
            &query,
            CoverageConfig {
                k: 5,
                delta: 2.5,
                merge_results: true,
            },
        )
        .0;
        let unmerged = coverage_search(
            &idx,
            &query,
            CoverageConfig {
                k: 5,
                delta: 2.5,
                merge_results: false,
            },
        )
        .0;
        // Both are greedy over the same candidate space; coverage must match.
        assert_eq!(merged.coverage, unmerged.coverage);
    }

    #[test]
    fn respects_k_budget_and_stops_when_no_gain() {
        let nodes = vec![node(0, &[(1, 0)]), node(1, &[(1, 0)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0), (1, 0)]);
        // Both datasets are fully covered by the query: no positive gain.
        let (result, _) = coverage_search(&idx, &query, CoverageConfig::new(2, 5.0));
        assert!(result.datasets.is_empty());
        assert_eq!(result.coverage, 2);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let idx = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let (r, _) = coverage_search(&idx, &cs(&[(0, 0)]), CoverageConfig::new(3, 1.0));
        assert!(r.datasets.is_empty());
        let nodes = vec![node(0, &[(0, 0)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let (r, _) = coverage_search(&idx, &CellSet::new(), CoverageConfig::new(3, 1.0));
        assert!(r.datasets.is_empty());
        let (r, _) = coverage_search(&idx, &cs(&[(0, 0)]), CoverageConfig::new(0, 1.0));
        assert!(r.datasets.is_empty());
    }

    #[test]
    fn greedy_achieves_good_fraction_of_optimum_on_small_instances() {
        // 10 datasets in a connected cluster around the query.
        let nodes: Vec<DatasetNode> = (0..10)
            .map(|i| {
                let x = i % 5;
                let y = i / 5;
                node(i, &[(x * 2, y * 2), (x * 2 + 1, y * 2), (x * 2, y * 2 + 1)])
            })
            .collect();
        let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
        let query = cs(&[(0, 0)]);
        let k = 3;
        let delta = 3.0;
        let (greedy, _) = coverage_search(&idx, &query, CoverageConfig::new(k, delta));
        let optimum = coverage_search_exhaustive(&nodes, &query, k, delta);
        let bound = 1.0 - 1.0 / std::f64::consts::E;
        assert!(
            greedy.coverage as f64 >= bound * optimum as f64,
            "greedy {} below (1-1/e) of optimum {}",
            greedy.coverage,
            optimum
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_results_connected_and_within_k(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u32..24), 1..6), 1..25),
            query in proptest::collection::vec((0u32..24, 0u32..24), 1..5),
            k in 1usize..6,
            delta in 1.0f64..6.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
            let q = cs(&query);
            let (result, _) = coverage_search(&idx, &q, CoverageConfig::new(k, delta));
            prop_assert!(result.datasets.len() <= k);
            prop_assert!(result.coverage >= q.len());
            // Connectivity of the chosen sets together with the query.
            let chosen: Vec<&CellSet> = nodes
                .iter()
                .filter(|n| result.datasets.contains(&n.id))
                .map(|n| &n.cells)
                .collect();
            let mut sets = chosen.clone();
            sets.push(&q);
            prop_assert!(satisfies_spatial_connectivity(&sets, delta));
            // Coverage equals the union size of query + chosen datasets.
            let mut union = q.clone();
            for c in &chosen {
                union.union_in_place(c);
            }
            prop_assert_eq!(union.len(), result.coverage);
        }

        #[test]
        fn prop_greedy_within_bound_of_optimum(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..12, 0u32..12), 1..5), 1..9),
            k in 1usize..4,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 3 });
            let q = cs(&[(0, 0), (1, 1)]);
            let delta = 4.0;
            let (greedy, _) = coverage_search(&idx, &q, CoverageConfig::new(k, delta));
            let optimum = coverage_search_exhaustive(&nodes, &q, k, delta);
            // The greedy solution is feasible, so it can never exceed the
            // exhaustive optimum, and it always covers at least the query.
            prop_assert!(greedy.coverage <= optimum,
                "greedy {} exceeds optimum {}", greedy.coverage, optimum);
            prop_assert!(greedy.coverage >= q.len());
            // With a budget of one the greedy choice (max marginal gain among
            // datasets directly connected to the query) is optimal whenever
            // the optimum is reachable in one step.
            if k == 1 && greedy.datasets.len() == 1 && optimum > q.len() {
                prop_assert!(greedy.coverage * 2 >= optimum,
                    "k=1 greedy {} far below optimum {}", greedy.coverage, optimum);
            }
        }
    }
}
