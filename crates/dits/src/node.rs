//! Dataset nodes (Definition 12) and shared node geometry.

use serde::{Deserialize, Serialize};
use spatial::{CellSet, DatasetId, Grid, Mbr, Point, SpatialDataset, SpatialError};

/// The geometric summary shared by every DITS node: the MBR of the content,
/// its pivot (centre of the MBR) and its radius (half the MBR diagonal).
///
/// All geometry lives in *cell-coordinate space* — the integer grid
/// coordinates produced by the z-order decomposition — because both the
/// overlap bounds and the connectivity distance of the paper are defined on
/// cells, not raw longitude/latitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeGeometry {
    /// Minimum bounding rectangle of the content.
    pub rect: Mbr,
    /// Pivot `o`: centre of the MBR.
    pub pivot: Point,
    /// Radius `r`: half of the MBR diagonal.
    pub radius: f64,
}

impl NodeGeometry {
    /// Builds the geometry from an MBR.
    pub fn from_mbr(rect: Mbr) -> Self {
        Self {
            rect,
            pivot: rect.center(),
            radius: rect.radius(),
        }
    }

    /// Geometry of the union of two geometries' rectangles.
    pub fn union(&self, other: &NodeGeometry) -> NodeGeometry {
        NodeGeometry::from_mbr(self.rect.union(&other.rect))
    }
}

/// A dataset node `N_D = (id, rect, o, r, S_D)` (Definition 12): one spatial
/// dataset prepared for indexing.
///
/// The parent pointer `pa` of the paper is implicit in the arena
/// representation of [`DitsLocal`](crate::local::DitsLocal); dataset nodes
/// themselves only carry content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetNode {
    /// Identifier of the dataset within its data source.
    pub id: DatasetId,
    /// Geometry (MBR / pivot / radius) in cell-coordinate space.
    pub geometry: NodeGeometry,
    /// The dataset's cell-based representation `S_D`.
    pub cells: CellSet,
}

impl DatasetNode {
    /// Builds a dataset node from an already-computed cell set.
    ///
    /// Returns `None` when the cell set is empty (an empty dataset has no
    /// MBR and can never be joinable).
    pub fn from_cell_set(id: DatasetId, cells: CellSet) -> Option<Self> {
        let rect = cells.mbr_cell_space()?;
        Some(Self {
            id,
            geometry: NodeGeometry::from_mbr(rect),
            cells,
        })
    }

    /// Builds a dataset node by gridding a raw spatial dataset
    /// (Definition 5 followed by Definition 12).
    pub fn from_dataset(grid: &Grid, dataset: &SpatialDataset) -> Result<Self, SpatialError> {
        let cells = dataset.to_cell_set(grid)?;
        Self::from_cell_set(dataset.id, cells).ok_or(SpatialError::EmptyDataset)
    }

    /// The node's MBR.
    pub fn rect(&self) -> &Mbr {
        &self.geometry.rect
    }

    /// The node's pivot.
    pub fn pivot(&self) -> Point {
        self.geometry.pivot
    }

    /// The node's radius.
    pub fn radius(&self) -> f64 {
        self.geometry.radius
    }

    /// Spatial coverage of the dataset: the number of cells it occupies.
    pub fn coverage(&self) -> usize {
        self.cells.len()
    }

    /// Estimated heap memory of the node in bytes (cell set plus the fixed
    /// geometry fields), used by the Fig. 8 memory comparison.  The cell
    /// set's lazily-built caches — packed words and the sorted coordinate
    /// decomposition of the verification sweep — are counted once built.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cells.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::zorder::cell_id;
    use spatial::GridConfig;

    fn cells(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn geometry_from_mbr() {
        let rect = Mbr::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        let g = NodeGeometry::from_mbr(rect);
        assert_eq!(g.pivot, Point::new(2.0, 1.0));
        assert!((g.radius - (20f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometry_union_covers_both() {
        let a = NodeGeometry::from_mbr(Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let b = NodeGeometry::from_mbr(Mbr::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)));
        let u = a.union(&b);
        assert!(u.rect.contains(&a.rect));
        assert!(u.rect.contains(&b.rect));
    }

    #[test]
    fn dataset_node_from_cell_set() {
        let n = DatasetNode::from_cell_set(3, cells(&[(1, 1), (3, 5)])).unwrap();
        assert_eq!(n.id, 3);
        assert_eq!(n.coverage(), 2);
        assert_eq!(n.rect().min, Point::new(1.0, 1.0));
        assert_eq!(n.rect().max, Point::new(3.0, 5.0));
        assert_eq!(n.pivot(), Point::new(2.0, 3.0));
        assert!(n.memory_bytes() > 0);
        assert!(DatasetNode::from_cell_set(0, CellSet::new()).is_none());
    }

    #[test]
    fn memory_estimate_grows_after_verify_cache_materializes() {
        let n = DatasetNode::from_cell_set(1, cells(&[(0, 0), (3, 1), (7, 9), (2, 2)])).unwrap();
        let cold = n.memory_bytes();
        // Materialise the cached verify state (the sorted coordinate
        // decomposition used by the distance sweep): the reported footprint
        // must grow, keeping the Fig. 8 memory comparison honest.
        let coords = n.cells.sorted_coords();
        assert_eq!(coords.len(), n.coverage());
        let warm = n.memory_bytes();
        assert!(
            warm >= cold + std::mem::size_of_val(coords),
            "cold {cold} -> warm {warm}"
        );
    }

    #[test]
    fn dataset_node_from_raw_dataset() {
        let grid = Grid::new(GridConfig {
            origin: Point::new(0.0, 0.0),
            width: 1.0,
            height: 1.0,
            resolution: 4,
        })
        .unwrap();
        let ds = SpatialDataset::new(9, vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)]);
        let node = DatasetNode::from_dataset(&grid, &ds).unwrap();
        assert_eq!(node.id, 9);
        assert_eq!(node.coverage(), 2);

        let empty = SpatialDataset::new(10, vec![]);
        assert!(DatasetNode::from_dataset(&grid, &empty).is_err());
    }
}
