//! DITS-G: the global index maintained by the data center (Section V-B).
//!
//! After each data source builds its DITS-L, it uploads only its *root node*
//! — an MBR, pivot and radius, converted back into longitude/latitude so
//! sources indexed at different resolutions are comparable.  The data center
//! organises these root summaries in a small binary tree built with the same
//! top-down procedure as the local index (but leaves carry no inverted
//! index), and uses it to route a query to the *candidate sources*: those
//! whose region intersects the query MBR or lies within the connectivity
//! threshold of it.  Pruning a source at the global level removes one whole
//! round of communication (the paper's first query-distribution strategy).

use crate::node::NodeGeometry;
use serde::{Deserialize, Serialize};
use spatial::{Grid, Mbr, Point, SourceId};

/// What a data source uploads to the data center: its identifier and the
/// geometry of its local index root, expressed in longitude/latitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceSummary {
    /// The data source's identifier.
    pub source: SourceId,
    /// Root geometry in longitude/latitude space.
    pub geometry: NodeGeometry,
    /// Resolution θ the source used for its local grid (informational; the
    /// data center does not require sources to share a resolution).
    pub resolution: u32,
}

impl SourceSummary {
    /// Builds a summary from a local root geometry expressed in cell
    /// coordinates of `grid`, converting the MBR corners back to
    /// longitude/latitude.
    pub fn from_local_root(source: SourceId, grid: &Grid, root: NodeGeometry) -> Self {
        let min = cell_coord_to_lonlat(grid, root.rect.min);
        let max = cell_coord_to_lonlat(grid, root.rect.max);
        Self {
            source,
            geometry: NodeGeometry::from_mbr(Mbr::new(min, max)),
            resolution: grid.resolution(),
        }
    }

    /// The summary's root MBR converted back into *cell coordinate* space of
    /// `grid` — the exact inverse of [`Self::from_local_root`] when `grid`
    /// has the summary's resolution (the lonlat corners are cell centres, so
    /// `Grid::locate` recovers the original integer cell coordinates).
    ///
    /// This is what lets a data center plan query clipping and kNN distance
    /// bounds for a *remote* source from its uploaded summary alone, without
    /// ever touching the source's local index.
    pub fn cell_space_rect(&self, grid: &Grid) -> Mbr {
        grid.mbr_to_cell_space(&self.geometry.rect)
    }
}

/// Converts a point in cell-coordinate space back to longitude/latitude by
/// taking the centre of the corresponding cell.
fn cell_coord_to_lonlat(grid: &Grid, p: Point) -> Point {
    let origin = grid.config().origin;
    Point::new(
        origin.x + (p.x + 0.5) * grid.cell_width(),
        origin.y + (p.y + 0.5) * grid.cell_height(),
    )
}

/// One node of the global index tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum GlobalNode {
    Internal {
        geometry: NodeGeometry,
        left: usize,
        right: usize,
    },
    Leaf {
        geometry: NodeGeometry,
        sources: Vec<SourceSummary>,
    },
}

impl GlobalNode {
    fn geometry(&self) -> &NodeGeometry {
        match self {
            GlobalNode::Internal { geometry, .. } => geometry,
            GlobalNode::Leaf { geometry, .. } => geometry,
        }
    }
}

/// The data center's global index over data-source summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DitsGlobal {
    nodes: Vec<GlobalNode>,
    root: usize,
    leaf_capacity: usize,
    source_count: usize,
    /// Maintenance operations absorbed in place since the last (re)build.
    /// Drives the occasional-rebuild heuristic of [`Self::needs_rebuild`].
    churn: usize,
}

impl DitsGlobal {
    /// Builds the global index from the uploaded source summaries.
    pub fn build(summaries: Vec<SourceSummary>, leaf_capacity: usize) -> Self {
        let leaf_capacity = leaf_capacity.max(1);
        let source_count = summaries.len();
        let mut index = Self {
            nodes: Vec::new(),
            root: 0,
            leaf_capacity,
            source_count,
            churn: 0,
        };
        index.root = index.build_subtree(summaries);
        index
    }

    fn build_subtree(&mut self, mut summaries: Vec<SourceSummary>) -> usize {
        let geometry = geometry_of(&summaries);
        if summaries.len() <= self.leaf_capacity {
            self.nodes.push(GlobalNode::Leaf {
                geometry,
                sources: summaries,
            });
            return self.nodes.len() - 1;
        }
        let dsplit = if geometry.rect.width() >= geometry.rect.height() {
            0
        } else {
            1
        };
        let mid = summaries.len() / 2;
        summaries.select_nth_unstable_by(mid, |a, b| coord(a, dsplit).total_cmp(&coord(b, dsplit)));
        let right = summaries.split_off(mid);
        let left = summaries;
        let left_idx = self.build_subtree(left);
        let right_idx = self.build_subtree(right);
        self.nodes.push(GlobalNode::Internal {
            geometry,
            left: left_idx,
            right: right_idx,
        });
        self.nodes.len() - 1
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.source_count
    }

    /// Leaf capacity the tree was built with.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Maintenance operations absorbed in place since the last (re)build.
    pub fn churn(&self) -> usize {
        self.churn
    }

    /// Decomposes the index into its raw parts (arena, root, leaf capacity,
    /// source count, churn); used by the persistence codec.
    pub(crate) fn parts(&self) -> (&[GlobalNode], usize, usize, usize, usize) {
        (
            &self.nodes,
            self.root,
            self.leaf_capacity,
            self.source_count,
            self.churn,
        )
    }

    /// Reassembles an index from raw parts produced by [`Self::parts`] (or
    /// by the persistence codec).  The caller is responsible for structural
    /// consistency; [`Self::check_invariants`] can verify it afterwards.
    pub(crate) fn from_parts(
        nodes: Vec<GlobalNode>,
        root: usize,
        leaf_capacity: usize,
        source_count: usize,
        churn: usize,
    ) -> Self {
        Self {
            nodes,
            root,
            leaf_capacity,
            source_count,
            churn,
        }
    }

    /// Registers one more source without rebuilding the rest of the tree:
    /// the summary is added to the closest leaf (mirroring the local-index
    /// insertion strategy of Appendix IX-C).
    pub fn insert_source(&mut self, summary: SourceSummary) {
        self.source_count += 1;
        if self.nodes.is_empty() {
            self.nodes.push(GlobalNode::Leaf {
                geometry: summary.geometry,
                sources: vec![summary],
            });
            self.root = 0;
            return;
        }
        // Walk down towards the leaf whose pivot is closest.
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                GlobalNode::Leaf { .. } => break,
                GlobalNode::Internal { left, right, .. } => {
                    let dl = self.nodes[*left]
                        .geometry()
                        .pivot
                        .distance(&summary.geometry.pivot);
                    let dr = self.nodes[*right]
                        .geometry()
                        .pivot
                        .distance(&summary.geometry.pivot);
                    idx = if dl <= dr { *left } else { *right };
                }
            }
        }
        if let GlobalNode::Leaf { geometry, sources } = &mut self.nodes[idx] {
            sources.push(summary);
            *geometry = geometry_of(sources);
        }
        self.churn += 1;
        self.refresh_geometry(self.root);
    }

    /// Replaces the summary of an already-registered source in place and
    /// refreshes the tree's geometry (Appendix IX-C applied at the global
    /// level).  The summary stays in the leaf it was first routed to even if
    /// its region moved — accumulated drift is what [`Self::needs_rebuild`]
    /// watches for.
    ///
    /// Returns `false` (and leaves the index untouched) when the source is
    /// not registered.
    pub fn refresh_source(&mut self, summary: SourceSummary) -> bool {
        let Some((leaf, pos)) = self.find_source(summary.source) else {
            return false;
        };
        if let GlobalNode::Leaf { geometry, sources } = &mut self.nodes[leaf] {
            sources[pos] = summary;
            *geometry = geometry_of(sources);
        }
        self.churn += 1;
        self.refresh_geometry(self.root);
        true
    }

    /// Unregisters a source, removing its summary from the tree.  The leaf
    /// that held it may become empty; empty leaves stop contributing to
    /// ancestor geometry and are reclaimed by the next rebuild.
    ///
    /// Returns `false` when the source is not registered.
    pub fn remove_source(&mut self, source: SourceId) -> bool {
        let Some((leaf, pos)) = self.find_source(source) else {
            return false;
        };
        if let GlobalNode::Leaf { geometry, sources } = &mut self.nodes[leaf] {
            sources.remove(pos);
            *geometry = geometry_of(sources);
        }
        self.source_count -= 1;
        self.churn += 1;
        self.refresh_geometry(self.root);
        true
    }

    /// All registered summaries, sorted by source id (the deterministic
    /// input [`Self::rebuild`] reconstructs the tree from).
    pub fn summaries(&self) -> Vec<SourceSummary> {
        let mut out: Vec<SourceSummary> = Vec::with_capacity(self.source_count);
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                GlobalNode::Leaf { sources, .. } => out.extend(sources.iter().copied()),
                GlobalNode::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out.sort_by_key(|s| s.source);
        out
    }

    /// Rebuilds the tree from scratch over the current summaries, resetting
    /// the churn counter.  Restores balanced leaves after in-place
    /// maintenance has degraded the tree.
    pub fn rebuild(&mut self) {
        *self = Self::build(self.summaries(), self.leaf_capacity);
    }

    /// The occasional-rebuild heuristic: the tree is considered degraded
    /// once the in-place churn reaches the number of indexed sources (every
    /// source drifted once, on average) or removals have emptied most
    /// leaves.  In-place refreshes stay conservative-correct regardless —
    /// a rebuild only restores routing selectivity, never correctness.
    pub fn needs_rebuild(&self) -> bool {
        if self.churn >= self.source_count.max(8) {
            return true;
        }
        let (leaves, empty) = self.leaf_population();
        empty * 2 > leaves
    }

    /// Locates the leaf holding a source's summary, returning the leaf's
    /// arena index and the summary's position inside it.
    fn find_source(&self, source: SourceId) -> Option<(usize, usize)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                GlobalNode::Leaf { sources, .. } => {
                    if let Some(pos) = sources.iter().position(|s| s.source == source) {
                        return Some((idx, pos));
                    }
                }
                GlobalNode::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        None
    }

    /// Counts `(reachable leaves, empty leaves)`.
    fn leaf_population(&self) -> (usize, usize) {
        let mut leaves = 0;
        let mut empty = 0;
        let mut stack = vec![self.root];
        if self.nodes.is_empty() {
            return (0, 0);
        }
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                GlobalNode::Leaf { sources, .. } => {
                    leaves += 1;
                    if sources.is_empty() {
                        empty += 1;
                    }
                }
                GlobalNode::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        (leaves, empty)
    }

    /// Recomputes every node's geometry bottom-up.  Empty leaves (left
    /// behind by [`Self::remove_source`]) return `None` so their fabricated
    /// degenerate MBR never leaks into an ancestor's pruning bounds — the
    /// global-level counterpart of the local index's leaf-collapse rule.
    fn refresh_geometry(&mut self, idx: usize) -> Option<NodeGeometry> {
        match self.nodes[idx].clone() {
            GlobalNode::Leaf { sources, .. } => {
                let g = (!sources.is_empty()).then(|| geometry_of(&sources));
                if let GlobalNode::Leaf { geometry, .. } = &mut self.nodes[idx] {
                    *geometry = g.unwrap_or_else(empty_geometry);
                }
                g
            }
            GlobalNode::Internal { left, right, .. } => {
                let gl = self.refresh_geometry(left);
                let gr = self.refresh_geometry(right);
                let g = match (gl, gr) {
                    (Some(a), Some(b)) => Some(a.union(&b)),
                    (a, b) => a.or(b),
                };
                if let GlobalNode::Internal { geometry, .. } = &mut self.nodes[idx] {
                    *geometry = g.unwrap_or_else(empty_geometry);
                }
                g
            }
        }
    }

    /// Checks the structural invariants of the tree: the bookkeeping counts
    /// match the reachable summaries, source ids are unique, and every
    /// internal node's MBR contains all summaries below it (the property
    /// [`Self::candidate_sources`] pruning relies on).  Returns a
    /// description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let summaries = self.summaries();
        if summaries.len() != self.source_count {
            return Err(format!(
                "source_count {} does not match reachable summaries {}",
                self.source_count,
                summaries.len()
            ));
        }
        if summaries.windows(2).any(|w| w[0].source == w[1].source) {
            return Err("duplicate source ids in the tree".to_string());
        }
        // Iterative post-order walk — a decoded tree may be arbitrarily
        // deep, so recursion could overflow the stack on a crafted image.
        // Subtree emptiness is computed bottom-up, then every node's MBR is
        // checked against its non-empty children: empty subtrees carry only
        // a placeholder geometry and hold no summaries to mis-prune.
        let mut empty = vec![true; self.nodes.len()];
        let mut stack = vec![(self.root, false)];
        while let Some((idx, children_done)) = stack.pop() {
            match &self.nodes[idx] {
                GlobalNode::Leaf { geometry, sources } => {
                    empty[idx] = sources.is_empty();
                    for s in sources {
                        if !geometry.rect.contains(&s.geometry.rect) {
                            return Err(format!(
                                "leaf {idx} MBR does not contain source {}",
                                s.source
                            ));
                        }
                    }
                }
                GlobalNode::Internal {
                    geometry,
                    left,
                    right,
                } => {
                    if !children_done {
                        stack.push((idx, true));
                        stack.push((*left, false));
                        stack.push((*right, false));
                        continue;
                    }
                    empty[idx] = empty[*left] && empty[*right];
                    for child in [*left, *right] {
                        if !empty[child]
                            && !geometry.rect.contains(&self.nodes[child].geometry().rect)
                        {
                            return Err(format!(
                                "internal {idx} MBR does not contain child {child}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Finds the candidate data sources for a query with MBR `query_rect`
    /// (in longitude/latitude) under a connectivity slack of `delta_lonlat`
    /// degrees: sources whose region intersects the query MBR or whose
    /// distance lower bound to the query node is below the slack.
    ///
    /// With `delta_lonlat = 0` only MBR-intersecting sources are returned
    /// (the OJSP case); CJSP passes the δ threshold converted to degrees.
    pub fn candidate_sources(&self, query_rect: &Mbr, delta_lonlat: f64) -> Vec<SourceSummary> {
        let mut out = Vec::new();
        if self.nodes.is_empty() || self.source_count == 0 {
            return out;
        }
        let query_geometry = NodeGeometry::from_mbr(*query_rect);
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let g = node.geometry();
            let intersects = g.rect.intersects(query_rect);
            let within_delta =
                crate::bounds::node_distance_lower_bound(g, &query_geometry) <= delta_lonlat;
            if !intersects && !within_delta {
                continue;
            }
            match node {
                GlobalNode::Leaf { sources, .. } => {
                    for s in sources {
                        let s_intersects = s.geometry.rect.intersects(query_rect);
                        let s_within =
                            crate::bounds::node_distance_lower_bound(&s.geometry, &query_geometry)
                                <= delta_lonlat;
                        if s_intersects || s_within {
                            out.push(*s);
                        }
                    }
                }
                GlobalNode::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out.sort_by_key(|s| s.source);
        out
    }

    /// Estimated memory footprint of the global index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<GlobalNode>()
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    GlobalNode::Leaf { sources, .. } => {
                        sources.capacity() * std::mem::size_of::<SourceSummary>()
                    }
                    GlobalNode::Internal { .. } => 0,
                })
                .sum::<usize>()
    }
}

fn geometry_of(summaries: &[SourceSummary]) -> NodeGeometry {
    let mut rect: Option<Mbr> = None;
    for s in summaries {
        rect = Some(match rect {
            Some(r) => r.union(&s.geometry.rect),
            None => s.geometry.rect,
        });
    }
    rect.map(NodeGeometry::from_mbr)
        .unwrap_or_else(empty_geometry)
}

/// Placeholder geometry for a subtree that holds no summaries.
fn empty_geometry() -> NodeGeometry {
    NodeGeometry::from_mbr(Mbr::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0)))
}

fn coord(s: &SourceSummary, d: usize) -> f64 {
    match d {
        0 => s.geometry.pivot.x,
        _ => s.geometry.pivot.y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(source: SourceId, x0: f64, y0: f64, x1: f64, y1: f64) -> SourceSummary {
        SourceSummary {
            source,
            geometry: NodeGeometry::from_mbr(Mbr::new(Point::new(x0, y0), Point::new(x1, y1))),
            resolution: 12,
        }
    }

    #[test]
    fn routes_query_to_intersecting_sources_only() {
        let g = DitsGlobal::build(
            vec![
                summary(0, -77.5, 38.0, -76.5, 39.5), // Washington D.C. area
                summary(1, -77.2, 38.5, -75.0, 39.8), // Maryland
                summary(2, 115.0, 39.0, 117.5, 41.0), // Beijing
            ],
            2,
        );
        assert_eq!(g.source_count(), 3);
        let query = Mbr::new(Point::new(-77.1, 38.8), Point::new(-76.9, 39.0));
        let candidates = g.candidate_sources(&query, 0.0);
        let ids: Vec<SourceId> = candidates.iter().map(|s| s.source).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn delta_slack_reaches_nearby_sources() {
        let g = DitsGlobal::build(
            vec![
                summary(0, 0.0, 0.0, 1.0, 1.0),
                summary(1, 5.0, 0.0, 6.0, 1.0),
            ],
            2,
        );
        let query = Mbr::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8));
        assert_eq!(g.candidate_sources(&query, 0.0).len(), 1);
        // A slack of 5 degrees reaches the second source.
        assert_eq!(g.candidate_sources(&query, 5.0).len(), 2);
    }

    #[test]
    fn empty_global_index_returns_no_candidates() {
        let g = DitsGlobal::build(Vec::new(), 4);
        let query = Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(g.candidate_sources(&query, 10.0).is_empty());
        assert_eq!(g.source_count(), 0);
    }

    #[test]
    fn many_sources_split_into_tree() {
        let summaries: Vec<SourceSummary> = (0..20)
            .map(|i| {
                summary(
                    i as SourceId,
                    i as f64 * 10.0,
                    0.0,
                    i as f64 * 10.0 + 5.0,
                    5.0,
                )
            })
            .collect();
        let g = DitsGlobal::build(summaries, 3);
        assert_eq!(g.source_count(), 20);
        assert!(g.memory_bytes() > 0);
        // Query hits exactly source 4's region.
        let query = Mbr::new(Point::new(41.0, 1.0), Point::new(44.0, 2.0));
        let candidates = g.candidate_sources(&query, 0.0);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].source, 4);
    }

    #[test]
    fn insert_source_is_found_afterwards() {
        let mut g = DitsGlobal::build(
            (0..8)
                .map(|i| {
                    summary(
                        i as SourceId,
                        i as f64 * 10.0,
                        0.0,
                        i as f64 * 10.0 + 5.0,
                        5.0,
                    )
                })
                .collect(),
            2,
        );
        g.insert_source(summary(99, 200.0, 0.0, 205.0, 5.0));
        assert_eq!(g.source_count(), 9);
        let query = Mbr::new(Point::new(201.0, 1.0), Point::new(202.0, 2.0));
        let candidates = g.candidate_sources(&query, 0.0);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].source, 99);
    }

    #[test]
    fn insert_into_empty_index() {
        let mut g = DitsGlobal::build(Vec::new(), 2);
        g.insert_source(summary(1, 0.0, 0.0, 1.0, 1.0));
        let query = Mbr::new(Point::new(0.1, 0.1), Point::new(0.2, 0.2));
        assert_eq!(g.candidate_sources(&query, 0.0).len(), 1);
    }

    #[test]
    fn refresh_source_moves_the_routing_target() {
        let mut g = DitsGlobal::build(
            vec![
                summary(0, 0.0, 0.0, 5.0, 5.0),
                summary(1, 50.0, 0.0, 55.0, 5.0),
                summary(2, 100.0, 0.0, 105.0, 5.0),
            ],
            2,
        );
        // Source 1's region moves far away; a query at its old spot must no
        // longer see it, a query at the new spot must.
        assert!(g.refresh_source(summary(1, -60.0, 20.0, -55.0, 25.0)));
        assert!(g.check_invariants().is_ok());
        let old_spot = Mbr::new(Point::new(51.0, 1.0), Point::new(52.0, 2.0));
        assert!(g.candidate_sources(&old_spot, 0.0).is_empty());
        let new_spot = Mbr::new(Point::new(-59.0, 21.0), Point::new(-58.0, 22.0));
        let ids: Vec<SourceId> = g
            .candidate_sources(&new_spot, 0.0)
            .iter()
            .map(|s| s.source)
            .collect();
        assert_eq!(ids, vec![1]);
        // Refreshing an unknown source is rejected.
        assert!(!g.refresh_source(summary(77, 0.0, 0.0, 1.0, 1.0)));
        assert_eq!(g.source_count(), 3);
    }

    #[test]
    fn remove_source_prunes_it_from_candidates() {
        let mut g = DitsGlobal::build(
            (0..6)
                .map(|i| {
                    summary(
                        i as SourceId,
                        i as f64 * 10.0,
                        0.0,
                        i as f64 * 10.0 + 5.0,
                        5.0,
                    )
                })
                .collect(),
            2,
        );
        assert!(g.remove_source(3));
        assert!(!g.remove_source(3));
        assert_eq!(g.source_count(), 5);
        assert!(g.check_invariants().is_ok());
        let query = Mbr::new(Point::new(31.0, 1.0), Point::new(34.0, 2.0));
        assert!(g.candidate_sources(&query, 0.0).is_empty());
        // The remaining sources are all still reachable.
        let ids: Vec<SourceId> = g.summaries().iter().map(|s| s.source).collect();
        assert_eq!(ids, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn emptied_leaves_do_not_leak_degenerate_geometry() {
        // Two far-apart leaves; removing both sources of one leaf must not
        // drag the surviving ancestors' MBR toward the origin placeholder.
        let mut g = DitsGlobal::build(
            vec![
                summary(0, 100.0, 40.0, 105.0, 45.0),
                summary(1, 106.0, 40.0, 111.0, 45.0),
                summary(2, -100.0, -40.0, -95.0, -35.0),
                summary(3, -94.0, -40.0, -89.0, -35.0),
            ],
            2,
        );
        assert!(g.remove_source(2));
        assert!(g.remove_source(3));
        assert!(g.check_invariants().is_ok());
        // A probe with generous slack around the origin placeholder finds
        // nothing: the empty subtree contributes no geometry.
        let near_origin = Mbr::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        assert!(g.candidate_sources(&near_origin, 5.0).is_empty());
        let east = Mbr::new(Point::new(101.0, 41.0), Point::new(102.0, 42.0));
        assert_eq!(g.candidate_sources(&east, 0.0).len(), 1);
    }

    #[test]
    fn churn_heuristic_triggers_and_rebuild_resets() {
        let mut g = DitsGlobal::build(
            (0..12)
                .map(|i| {
                    summary(
                        i as SourceId,
                        i as f64 * 10.0,
                        0.0,
                        i as f64 * 10.0 + 5.0,
                        5.0,
                    )
                })
                .collect(),
            3,
        );
        assert!(!g.needs_rebuild());
        for round in 0..12u32 {
            let i = round as SourceId % 12;
            let base = f64::from(round) * 7.0 - 40.0;
            assert!(g.refresh_source(summary(i, base, 10.0, base + 5.0, 15.0)));
        }
        assert!(g.needs_rebuild(), "churn {} should degrade", g.churn());
        let before = g.summaries();
        g.rebuild();
        assert_eq!(g.churn(), 0);
        assert!(!g.needs_rebuild());
        assert!(g.check_invariants().is_ok());
        assert_eq!(g.summaries(), before, "rebuild preserves the summaries");
    }

    #[test]
    fn source_summary_converts_cell_space_to_lonlat() {
        let grid = Grid::global(10).unwrap();
        // A root covering cells (0,0)..(1023,1023) maps back to roughly the
        // whole globe.
        let root =
            NodeGeometry::from_mbr(Mbr::new(Point::new(0.0, 0.0), Point::new(1023.0, 1023.0)));
        let s = SourceSummary::from_local_root(3, &grid, root);
        assert_eq!(s.source, 3);
        assert_eq!(s.resolution, 10);
        assert!(s.geometry.rect.min.x < -179.0);
        assert!(s.geometry.rect.max.x > 179.0);
        assert!(s.geometry.rect.min.y < -89.0);
        assert!(s.geometry.rect.max.y > 89.0);
    }
}
