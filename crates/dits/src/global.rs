//! DITS-G: the global index maintained by the data center (Section V-B).
//!
//! After each data source builds its DITS-L, it uploads only its *root node*
//! — an MBR, pivot and radius, converted back into longitude/latitude so
//! sources indexed at different resolutions are comparable.  The data center
//! organises these root summaries in a small binary tree built with the same
//! top-down procedure as the local index (but leaves carry no inverted
//! index), and uses it to route a query to the *candidate sources*: those
//! whose region intersects the query MBR or lies within the connectivity
//! threshold of it.  Pruning a source at the global level removes one whole
//! round of communication (the paper's first query-distribution strategy).

use crate::node::NodeGeometry;
use serde::{Deserialize, Serialize};
use spatial::{Grid, Mbr, Point, SourceId};

/// What a data source uploads to the data center: its identifier and the
/// geometry of its local index root, expressed in longitude/latitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceSummary {
    /// The data source's identifier.
    pub source: SourceId,
    /// Root geometry in longitude/latitude space.
    pub geometry: NodeGeometry,
    /// Resolution θ the source used for its local grid (informational; the
    /// data center does not require sources to share a resolution).
    pub resolution: u32,
}

impl SourceSummary {
    /// Builds a summary from a local root geometry expressed in cell
    /// coordinates of `grid`, converting the MBR corners back to
    /// longitude/latitude.
    pub fn from_local_root(source: SourceId, grid: &Grid, root: NodeGeometry) -> Self {
        let min = cell_coord_to_lonlat(grid, root.rect.min);
        let max = cell_coord_to_lonlat(grid, root.rect.max);
        Self {
            source,
            geometry: NodeGeometry::from_mbr(Mbr::new(min, max)),
            resolution: grid.resolution(),
        }
    }
}

/// Converts a point in cell-coordinate space back to longitude/latitude by
/// taking the centre of the corresponding cell.
fn cell_coord_to_lonlat(grid: &Grid, p: Point) -> Point {
    let origin = grid.config().origin;
    Point::new(
        origin.x + (p.x + 0.5) * grid.cell_width(),
        origin.y + (p.y + 0.5) * grid.cell_height(),
    )
}

/// One node of the global index tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum GlobalNode {
    Internal {
        geometry: NodeGeometry,
        left: usize,
        right: usize,
    },
    Leaf {
        geometry: NodeGeometry,
        sources: Vec<SourceSummary>,
    },
}

impl GlobalNode {
    fn geometry(&self) -> &NodeGeometry {
        match self {
            GlobalNode::Internal { geometry, .. } => geometry,
            GlobalNode::Leaf { geometry, .. } => geometry,
        }
    }
}

/// The data center's global index over data-source summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DitsGlobal {
    nodes: Vec<GlobalNode>,
    root: usize,
    leaf_capacity: usize,
    source_count: usize,
}

impl DitsGlobal {
    /// Builds the global index from the uploaded source summaries.
    pub fn build(summaries: Vec<SourceSummary>, leaf_capacity: usize) -> Self {
        let leaf_capacity = leaf_capacity.max(1);
        let source_count = summaries.len();
        let mut index = Self {
            nodes: Vec::new(),
            root: 0,
            leaf_capacity,
            source_count,
        };
        index.root = index.build_subtree(summaries);
        index
    }

    fn build_subtree(&mut self, mut summaries: Vec<SourceSummary>) -> usize {
        let geometry = geometry_of(&summaries);
        if summaries.len() <= self.leaf_capacity {
            self.nodes.push(GlobalNode::Leaf {
                geometry,
                sources: summaries,
            });
            return self.nodes.len() - 1;
        }
        let dsplit = if geometry.rect.width() >= geometry.rect.height() {
            0
        } else {
            1
        };
        let mid = summaries.len() / 2;
        summaries.select_nth_unstable_by(mid, |a, b| {
            coord(a, dsplit)
                .partial_cmp(&coord(b, dsplit))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let right = summaries.split_off(mid);
        let left = summaries;
        let left_idx = self.build_subtree(left);
        let right_idx = self.build_subtree(right);
        self.nodes.push(GlobalNode::Internal {
            geometry,
            left: left_idx,
            right: right_idx,
        });
        self.nodes.len() - 1
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.source_count
    }

    /// Registers one more source without rebuilding the rest of the tree:
    /// the summary is added to the closest leaf (mirroring the local-index
    /// insertion strategy of Appendix IX-C).
    pub fn insert_source(&mut self, summary: SourceSummary) {
        self.source_count += 1;
        if self.nodes.is_empty() {
            self.nodes.push(GlobalNode::Leaf {
                geometry: summary.geometry,
                sources: vec![summary],
            });
            self.root = 0;
            return;
        }
        // Walk down towards the leaf whose pivot is closest.
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                GlobalNode::Leaf { .. } => break,
                GlobalNode::Internal { left, right, .. } => {
                    let dl = self.nodes[*left]
                        .geometry()
                        .pivot
                        .distance(&summary.geometry.pivot);
                    let dr = self.nodes[*right]
                        .geometry()
                        .pivot
                        .distance(&summary.geometry.pivot);
                    idx = if dl <= dr { *left } else { *right };
                }
            }
        }
        if let GlobalNode::Leaf { geometry, sources } = &mut self.nodes[idx] {
            sources.push(summary);
            *geometry = geometry_of(sources);
        }
        // Note: ancestors' geometry is refreshed lazily by candidate_sources
        // being conservative; a full rebuild can be triggered by the caller
        // when many sources churn.
        self.refresh_geometry(self.root);
    }

    fn refresh_geometry(&mut self, idx: usize) -> NodeGeometry {
        match self.nodes[idx].clone() {
            GlobalNode::Leaf { sources, .. } => {
                let g = geometry_of(&sources);
                if let GlobalNode::Leaf { geometry, .. } = &mut self.nodes[idx] {
                    *geometry = g;
                }
                g
            }
            GlobalNode::Internal { left, right, .. } => {
                let gl = self.refresh_geometry(left);
                let gr = self.refresh_geometry(right);
                let g = gl.union(&gr);
                if let GlobalNode::Internal { geometry, .. } = &mut self.nodes[idx] {
                    *geometry = g;
                }
                g
            }
        }
    }

    /// Finds the candidate data sources for a query with MBR `query_rect`
    /// (in longitude/latitude) under a connectivity slack of `delta_lonlat`
    /// degrees: sources whose region intersects the query MBR or whose
    /// distance lower bound to the query node is below the slack.
    ///
    /// With `delta_lonlat = 0` only MBR-intersecting sources are returned
    /// (the OJSP case); CJSP passes the δ threshold converted to degrees.
    pub fn candidate_sources(&self, query_rect: &Mbr, delta_lonlat: f64) -> Vec<SourceSummary> {
        let mut out = Vec::new();
        if self.nodes.is_empty() || self.source_count == 0 {
            return out;
        }
        let query_geometry = NodeGeometry::from_mbr(*query_rect);
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            let g = node.geometry();
            let intersects = g.rect.intersects(query_rect);
            let within_delta =
                crate::bounds::node_distance_lower_bound(g, &query_geometry) <= delta_lonlat;
            if !intersects && !within_delta {
                continue;
            }
            match node {
                GlobalNode::Leaf { sources, .. } => {
                    for s in sources {
                        let s_intersects = s.geometry.rect.intersects(query_rect);
                        let s_within =
                            crate::bounds::node_distance_lower_bound(&s.geometry, &query_geometry)
                                <= delta_lonlat;
                        if s_intersects || s_within {
                            out.push(*s);
                        }
                    }
                }
                GlobalNode::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        out.sort_by_key(|s| s.source);
        out
    }

    /// Estimated memory footprint of the global index in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<GlobalNode>()
            + self
                .nodes
                .iter()
                .map(|n| match n {
                    GlobalNode::Leaf { sources, .. } => {
                        sources.capacity() * std::mem::size_of::<SourceSummary>()
                    }
                    GlobalNode::Internal { .. } => 0,
                })
                .sum::<usize>()
    }
}

fn geometry_of(summaries: &[SourceSummary]) -> NodeGeometry {
    let mut rect: Option<Mbr> = None;
    for s in summaries {
        rect = Some(match rect {
            Some(r) => r.union(&s.geometry.rect),
            None => s.geometry.rect,
        });
    }
    NodeGeometry::from_mbr(
        rect.unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(0.0, 0.0))),
    )
}

fn coord(s: &SourceSummary, d: usize) -> f64 {
    match d {
        0 => s.geometry.pivot.x,
        _ => s.geometry.pivot.y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(source: SourceId, x0: f64, y0: f64, x1: f64, y1: f64) -> SourceSummary {
        SourceSummary {
            source,
            geometry: NodeGeometry::from_mbr(Mbr::new(Point::new(x0, y0), Point::new(x1, y1))),
            resolution: 12,
        }
    }

    #[test]
    fn routes_query_to_intersecting_sources_only() {
        let g = DitsGlobal::build(
            vec![
                summary(0, -77.5, 38.0, -76.5, 39.5), // Washington D.C. area
                summary(1, -77.2, 38.5, -75.0, 39.8), // Maryland
                summary(2, 115.0, 39.0, 117.5, 41.0), // Beijing
            ],
            2,
        );
        assert_eq!(g.source_count(), 3);
        let query = Mbr::new(Point::new(-77.1, 38.8), Point::new(-76.9, 39.0));
        let candidates = g.candidate_sources(&query, 0.0);
        let ids: Vec<SourceId> = candidates.iter().map(|s| s.source).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn delta_slack_reaches_nearby_sources() {
        let g = DitsGlobal::build(
            vec![
                summary(0, 0.0, 0.0, 1.0, 1.0),
                summary(1, 5.0, 0.0, 6.0, 1.0),
            ],
            2,
        );
        let query = Mbr::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8));
        assert_eq!(g.candidate_sources(&query, 0.0).len(), 1);
        // A slack of 5 degrees reaches the second source.
        assert_eq!(g.candidate_sources(&query, 5.0).len(), 2);
    }

    #[test]
    fn empty_global_index_returns_no_candidates() {
        let g = DitsGlobal::build(Vec::new(), 4);
        let query = Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert!(g.candidate_sources(&query, 10.0).is_empty());
        assert_eq!(g.source_count(), 0);
    }

    #[test]
    fn many_sources_split_into_tree() {
        let summaries: Vec<SourceSummary> = (0..20)
            .map(|i| {
                summary(
                    i as SourceId,
                    i as f64 * 10.0,
                    0.0,
                    i as f64 * 10.0 + 5.0,
                    5.0,
                )
            })
            .collect();
        let g = DitsGlobal::build(summaries, 3);
        assert_eq!(g.source_count(), 20);
        assert!(g.memory_bytes() > 0);
        // Query hits exactly source 4's region.
        let query = Mbr::new(Point::new(41.0, 1.0), Point::new(44.0, 2.0));
        let candidates = g.candidate_sources(&query, 0.0);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].source, 4);
    }

    #[test]
    fn insert_source_is_found_afterwards() {
        let mut g = DitsGlobal::build(
            (0..8)
                .map(|i| {
                    summary(
                        i as SourceId,
                        i as f64 * 10.0,
                        0.0,
                        i as f64 * 10.0 + 5.0,
                        5.0,
                    )
                })
                .collect(),
            2,
        );
        g.insert_source(summary(99, 200.0, 0.0, 205.0, 5.0));
        assert_eq!(g.source_count(), 9);
        let query = Mbr::new(Point::new(201.0, 1.0), Point::new(202.0, 2.0));
        let candidates = g.candidate_sources(&query, 0.0);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].source, 99);
    }

    #[test]
    fn insert_into_empty_index() {
        let mut g = DitsGlobal::build(Vec::new(), 2);
        g.insert_source(summary(1, 0.0, 0.0, 1.0, 1.0));
        let query = Mbr::new(Point::new(0.1, 0.1), Point::new(0.2, 0.2));
        assert_eq!(g.candidate_sources(&query, 0.0).len(), 1);
    }

    #[test]
    fn source_summary_converts_cell_space_to_lonlat() {
        let grid = Grid::global(10).unwrap();
        // A root covering cells (0,0)..(1023,1023) maps back to roughly the
        // whole globe.
        let root =
            NodeGeometry::from_mbr(Mbr::new(Point::new(0.0, 0.0), Point::new(1023.0, 1023.0)));
        let s = SourceSummary::from_local_root(3, &grid, root);
        assert_eq!(s.source, 3);
        assert_eq!(s.resolution, 10);
        assert!(s.geometry.rect.min.x < -179.0);
        assert!(s.geometry.rect.max.x > 179.0);
        assert!(s.geometry.rect.min.y < -89.0);
        assert!(s.geometry.rect.max.y > 89.0);
    }
}
