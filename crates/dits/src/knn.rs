//! Nearest-dataset and range queries over DITS-L.
//!
//! The paper's two search problems (OJSP / CJSP) are the headline API, but a
//! dataset-search service built on the same index naturally also answers
//! "which datasets are *closest* to my query region?" (k-nearest datasets by
//! the cell-based dataset distance of Definition 6) and "which datasets lie
//! within δ of it?" (the range query that `FindConnectSet` performs
//! internally).  Both reuse the Lemma 4 distance bounds for pruning:
//!
//! * [`nearest_datasets`] — best-first (branch-and-bound) k-NN over the tree,
//!   expanding nodes in order of their lower distance bound and stopping once
//!   the bound exceeds the current k-th best exact distance.
//! * [`range_datasets`] — all datasets within a distance threshold, i.e. the
//!   public form of the connectivity candidate search.

use crate::bounds::node_distance_bounds;
use crate::local::{DitsLocal, NodeIdx, NodeKind, TraversalLayout};
use crate::node::NodeGeometry;
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use spatial::distance::{
    dataset_distance, dataset_distance_bounded, dataset_distance_uncached, NeighborProbe,
};
use spatial::{CellSet, DatasetId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// One neighbour: a dataset and its exact cell-based distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The dataset's identifier.
    pub dataset: DatasetId,
    /// Exact dataset distance `dist(S_Q, S_D)` in cell units.
    pub distance: f64,
}

/// Heap entry for the best-first traversal, ordered by ascending lower bound.
struct Frontier {
    lower_bound: f64,
    node: NodeIdx,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.lower_bound == other.lower_bound
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest bound pops first.
        other.lower_bound.total_cmp(&self.lower_bound)
    }
}

/// Finds the `k` datasets with the smallest cell-based distance to the query,
/// sorted by ascending distance (ties broken by dataset id).
///
/// Datasets overlapping the query have distance 0 and therefore rank first —
/// k-NN is a strict generalisation of "is anything joinable nearby?".
///
/// Verification is *bounded*: each candidate's exact distance is computed
/// with the current k-th best distance as the sweep cutoff
/// ([`dataset_distance_bounded`]), so far candidates abandon after the
/// x-window check.  Answers and [`SearchStats`] are identical to the
/// unbounded computation — candidates whose bounded distance exceeds the
/// cutoff could never enter the result, and candidates at exactly the cutoff
/// are computed exactly, preserving tie-breaks (proptested against
/// [`nearest_datasets_unbounded`]).
pub fn nearest_datasets(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
) -> (Vec<Neighbor>, SearchStats) {
    nearest_datasets_impl(index, query, k, true)
}

/// The unbounded, fresh-state oracle: same traversal as
/// [`nearest_datasets`], but every candidate is verified with
/// [`dataset_distance_uncached`] (full decompose-and-sort per call, no
/// cutoff) — exactly the pre-optimisation behaviour.  Kept public as the
/// parity oracle for the bounded/cached proptests and as the baseline for
/// the `bench-runner` `knn/per-query` delta row.
pub fn nearest_datasets_unbounded(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
) -> (Vec<Neighbor>, SearchStats) {
    nearest_datasets_impl(index, query, k, false)
}

fn nearest_datasets_impl(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
    bounded: bool,
) -> (Vec<Neighbor>, SearchStats) {
    let mut stats = SearchStats::new();
    if k == 0 || query.is_empty() || index.dataset_count() == 0 {
        return (Vec::new(), stats);
    }
    let Some(rect) = query.mbr_cell_space() else {
        return (Vec::new(), stats);
    };
    let query_geometry = NodeGeometry::from_mbr(rect);

    // Best-first search interleaves the two phases, so the phase clock is
    // charged by difference: exact distance computations are timed directly
    // (verify), everything else — node expansion, bound evaluation, the
    // final sort — is traversal.
    let started = Instant::now();
    let mut verify_time = Duration::ZERO;

    // Results kept as a max-heap on distance so the worst of the current
    // top-k is peekable in O(1).  The descent runs over the cached
    // structure-of-arrays layout: child and entry bound checks stride over
    // contiguous geometry arrays, and a dataset's cells are only touched
    // when it survives its bound.
    let layout = index.traversal_layout();
    let mut results: BinaryHeap<ResultEntry> = BinaryHeap::new();
    let mut frontier: BinaryHeap<Frontier> = BinaryHeap::new();
    frontier.push(Frontier {
        lower_bound: 0.0,
        node: layout.root(),
    });

    while let Some(Frontier { lower_bound, node }) = frontier.pop() {
        // Everything still on the frontier is at least `lower_bound` away; if
        // the current k-th best is closer, the search is complete.
        if results.len() >= k {
            let worst = results.peek().map(|r| r.distance).unwrap_or(f64::INFINITY);
            if lower_bound > worst {
                stats.nodes_pruned += 1;
                break;
            }
        }
        stats.nodes_visited += 1;
        match layout.children(node) {
            Some((left, right)) => {
                for child in [left, right] {
                    let (lb, _) = node_distance_bounds(layout.geometry(child), &query_geometry);
                    frontier.push(Frontier {
                        lower_bound: lb,
                        node: child,
                    });
                }
            }
            None => {
                if let NodeKind::Leaf { entries, .. } = &index.node(layout.arena_index(node)).kind {
                    let base = layout.entry_range(node).start;
                    for (offset, entry) in entries.iter().enumerate() {
                        let (lb, _) = node_distance_bounds(
                            layout.entry_geometry(base + offset),
                            &query_geometry,
                        );
                        // The k-th best doubles as the per-entry prune
                        // threshold and as the sweep cutoff of the bounded
                        // verification.
                        let worst = if results.len() >= k {
                            results.peek().map(|r| r.distance).unwrap_or(f64::INFINITY)
                        } else {
                            f64::INFINITY
                        };
                        if lb > worst {
                            continue;
                        }
                        stats.exact_computations += 1;
                        let verify_started = Instant::now();
                        let distance = if bounded {
                            dataset_distance_bounded(query, &entry.cells, worst)
                        } else {
                            dataset_distance_uncached(query, &entry.cells)
                        };
                        verify_time += verify_started.elapsed();
                        let entry = ResultEntry {
                            distance,
                            dataset: entry.id,
                        };
                        if results.len() < k {
                            results.push(entry);
                        } else if let Some(worst) = results.peek() {
                            if entry.distance < worst.distance
                                || (entry.distance == worst.distance
                                    && entry.dataset < worst.dataset)
                            {
                                results.pop();
                                results.push(entry);
                            }
                        }
                    }
                }
            }
        }
    }

    let mut out: Vec<Neighbor> = results
        .into_iter()
        .map(|r| Neighbor {
            dataset: r.dataset,
            distance: r.distance,
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.dataset.cmp(&b.dataset))
    });
    crate::phase::add_verify(verify_time);
    crate::phase::add_traversal(started.elapsed().saturating_sub(verify_time));
    (out, stats)
}

/// Max-heap entry for the running top-k (largest distance on top).
struct ResultEntry {
    distance: f64,
    dataset: DatasetId,
}

impl PartialEq for ResultEntry {
    fn eq(&self, other: &Self) -> bool {
        self.distance == other.distance && self.dataset == other.dataset
    }
}
impl Eq for ResultEntry {}
impl PartialOrd for ResultEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ResultEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.dataset.cmp(&other.dataset))
    }
}

/// Returns every dataset within `delta` (cell units) of the query, sorted by
/// ascending exact distance.
///
/// This is the public form of the connectivity candidate search used by
/// CoverageSearch; the same Lemma 4 pruning applies.
pub fn range_datasets(
    index: &DitsLocal,
    query: &CellSet,
    delta: f64,
) -> (Vec<Neighbor>, SearchStats) {
    let mut stats = SearchStats::new();
    if query.is_empty() || index.dataset_count() == 0 || delta < 0.0 {
        return (Vec::new(), stats);
    }
    let Some(rect) = query.mbr_cell_space() else {
        return (Vec::new(), stats);
    };
    let query_geometry = NodeGeometry::from_mbr(rect);
    let probe = NeighborProbe::new(query);
    let mut out = Vec::new();
    let started = Instant::now();
    let mut verify_time = Duration::ZERO;
    let layout = index.traversal_layout();
    range_recurse(
        index,
        layout,
        layout.root(),
        query,
        &query_geometry,
        &probe,
        delta,
        &mut out,
        &mut stats,
        &mut verify_time,
    );
    out.sort_unstable_by(|a: &Neighbor, b: &Neighbor| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.dataset.cmp(&b.dataset))
    });
    crate::phase::add_verify(verify_time);
    crate::phase::add_traversal(started.elapsed().saturating_sub(verify_time));
    (out, stats)
}

#[allow(clippy::too_many_arguments)]
fn range_recurse(
    index: &DitsLocal,
    layout: &TraversalLayout,
    node_idx: NodeIdx,
    query: &CellSet,
    query_geometry: &NodeGeometry,
    probe: &NeighborProbe,
    delta: f64,
    out: &mut Vec<Neighbor>,
    stats: &mut SearchStats,
    verify_time: &mut Duration,
) {
    stats.nodes_visited += 1;
    let (lb, _) = node_distance_bounds(layout.geometry(node_idx), query_geometry);
    if lb > delta {
        stats.nodes_pruned += 1;
        return;
    }
    match layout.children(node_idx) {
        None => {
            if let NodeKind::Leaf { entries, .. } = &index.node(layout.arena_index(node_idx)).kind {
                let base = layout.entry_range(node_idx).start;
                for (offset, entry) in entries.iter().enumerate() {
                    let (elb, _) =
                        node_distance_bounds(layout.entry_geometry(base + offset), query_geometry);
                    if elb > delta {
                        continue;
                    }
                    stats.exact_computations += 1;
                    let verify_started = Instant::now();
                    if probe.within(&entry.cells, delta) {
                        let distance = dataset_distance(query, &entry.cells);
                        out.push(Neighbor {
                            dataset: entry.id,
                            distance,
                        });
                        stats.candidates += 1;
                    }
                    *verify_time += verify_started.elapsed();
                }
            }
        }
        Some((left, right)) => {
            range_recurse(
                index,
                layout,
                left,
                query,
                query_geometry,
                probe,
                delta,
                out,
                stats,
                verify_time,
            );
            range_recurse(
                index,
                layout,
                right,
                query,
                query_geometry,
                probe,
                delta,
                out,
                stats,
                verify_time,
            );
        }
    }
}

/// Brute-force k-NN over dataset nodes: the correctness oracle for tests.
pub fn nearest_datasets_bruteforce(
    datasets: &[crate::node::DatasetNode],
    query: &CellSet,
    k: usize,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = datasets
        .iter()
        .map(|d| Neighbor {
            dataset: d.id,
            distance: dataset_distance(query, &d.cells),
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.dataset.cmp(&b.dataset))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::DitsLocalConfig;
    use crate::node::DatasetNode;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn nearest_finds_the_closest_datasets_in_order() {
        let nodes = vec![
            node(0, &[(1, 0)]),   // distance 1 from (0,0)
            node(1, &[(3, 0)]),   // distance 3
            node(2, &[(0, 0)]),   // distance 0 (overlaps)
            node(3, &[(10, 10)]), // far
        ];
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 2 });
        let query = cs(&[(0, 0)]);
        let (neighbors, stats) = nearest_datasets(&idx, &query, 3);
        assert_eq!(neighbors.len(), 3);
        assert_eq!(neighbors[0].dataset, 2);
        assert_eq!(neighbors[0].distance, 0.0);
        assert_eq!(neighbors[1].dataset, 0);
        assert_eq!(neighbors[1].distance, 1.0);
        assert_eq!(neighbors[2].dataset, 1);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn nearest_handles_degenerate_inputs() {
        let idx = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        assert!(nearest_datasets(&idx, &cs(&[(0, 0)]), 3).0.is_empty());
        let idx = DitsLocal::build(vec![node(0, &[(0, 0)])], DitsLocalConfig::default());
        assert!(nearest_datasets(&idx, &CellSet::new(), 3).0.is_empty());
        assert!(nearest_datasets(&idx, &cs(&[(0, 0)]), 0).0.is_empty());
    }

    #[test]
    fn range_returns_exactly_the_datasets_within_delta() {
        let nodes = vec![node(0, &[(1, 0)]), node(1, &[(3, 0)]), node(2, &[(6, 0)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(0, 0)]);
        let (within, _) = range_datasets(&idx, &query, 3.0);
        let ids: Vec<DatasetId> = within.iter().map(|n| n.dataset).collect();
        assert_eq!(ids, vec![0, 1]);
        assert!(within[0].distance <= within[1].distance);
        let (all, _) = range_datasets(&idx, &query, 10.0);
        assert_eq!(all.len(), 3);
        let (none, _) = range_datasets(&idx, &query, 0.5);
        assert!(none.is_empty());
        let (negative, _) = range_datasets(&idx, &query, -1.0);
        assert!(negative.is_empty());
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let nodes: Vec<DatasetNode> = (0..5).map(|i| node(i, &[(i * 2, 0)])).collect();
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let (neighbors, _) = nearest_datasets(&idx, &cs(&[(0, 0)]), 50);
        assert_eq!(neighbors.len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_knn_matches_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..8), 1..40),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..8),
            k in 1usize..8,
            capacity in 1usize..6,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: capacity });
            let q = cs(&query);
            let (fast, _) = nearest_datasets(&idx, &q, k);
            let brute = nearest_datasets_bruteforce(&nodes, &q, k);
            // Distances must match position by position (ids may differ on
            // exact ties at the cut-off).
            let fast_d: Vec<f64> = fast.iter().map(|n| n.distance).collect();
            let brute_d: Vec<f64> = brute.iter().map(|n| n.distance).collect();
            prop_assert_eq!(fast_d.len(), brute_d.len());
            for (f, b) in fast_d.iter().zip(brute_d.iter()) {
                prop_assert!((f - b).abs() < 1e-9, "fast {f} != brute {b}");
            }
        }

        #[test]
        fn prop_bounded_knn_is_byte_identical_to_unbounded_oracle(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..8), 1..40),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..8),
            k in 1usize..8,
            capacity in 1usize..6,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: capacity });
            let q = cs(&query);
            let (fast, fast_stats) = nearest_datasets(&idx, &q, k);
            let (oracle, oracle_stats) = nearest_datasets_unbounded(&idx, &q, k);
            prop_assert_eq!(fast, oracle);
            prop_assert_eq!(fast_stats, oracle_stats);
        }

        #[test]
        fn prop_bounded_knn_preserves_ties(
            picks in proptest::collection::vec(0usize..6, 1..40),
            query in proptest::collection::vec((0u32..24, 0u32..24), 1..6),
            k in 1usize..12,
            capacity in 1usize..6,
        ) {
            // Datasets drawn from a pool of six shapes, so exact distance
            // ties (including ties at the k-th position) are the norm rather
            // than the exception; the cutoff must not lose the id tie-break.
            let pool: [&[(u32, u32)]; 6] = [
                &[(0, 0), (1, 1)],
                &[(0, 0), (1, 1)],
                &[(10, 10)],
                &[(10, 10)],
                &[(5, 0), (5, 1)],
                &[(20, 20), (21, 21)],
            ];
            let nodes: Vec<DatasetNode> = picks
                .iter()
                .enumerate()
                .map(|(i, &p)| node(i as DatasetId, pool[p]))
                .collect();
            let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: capacity });
            let q = cs(&query);
            let (fast, fast_stats) = nearest_datasets(&idx, &q, k);
            let (oracle, oracle_stats) = nearest_datasets_unbounded(&idx, &q, k);
            prop_assert_eq!(fast, oracle);
            prop_assert_eq!(fast_stats, oracle_stats);
        }

        #[test]
        fn prop_range_matches_filtered_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..32, 0u32..32), 1..6), 1..30),
            query in proptest::collection::vec((0u32..32, 0u32..32), 1..6),
            delta in 0.0f64..15.0,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 4 });
            let q = cs(&query);
            let (within, _) = range_datasets(&idx, &q, delta);
            let mut expected: Vec<DatasetId> = nodes
                .iter()
                .filter(|n| dataset_distance(&q, &n.cells) <= delta)
                .map(|n| n.id)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<DatasetId> = within.iter().map(|n| n.dataset).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
            // Every reported distance respects the threshold.
            for n in &within {
                prop_assert!(n.distance <= delta + 1e-9);
            }
        }
    }
}
