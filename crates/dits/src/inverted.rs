//! Per-leaf inverted index (Definition 14).
//!
//! Every leaf of DITS-L stores a mapping from cell ID to the list of dataset
//! IDs (within that leaf) containing the cell.  The inverted index serves two
//! purposes:
//!
//! 1. the overlap bounds of Lemmas 2–3 are computed from its key set and
//!    posting-list sizes, and
//! 2. the exact verification step of OverlapSearch scans the posting lists of
//!    a candidate leaf once to obtain exact intersection counts for *all*
//!    datasets in the leaf simultaneously.

use serde::{Deserialize, Serialize};
use spatial::{CellId, CellSet, DatasetId};
use std::collections::HashMap;

/// An inverted index from cell ID to the dataset IDs containing the cell.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: HashMap<CellId, Vec<DatasetId>>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index of a collection of `(dataset id, cell set)` pairs.
    pub fn build<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (DatasetId, &'a CellSet)>,
    {
        let mut idx = Self::new();
        for (id, cells) in entries {
            idx.add_dataset(id, cells);
        }
        idx
    }

    /// Adds one dataset's cells to the index.
    pub fn add_dataset(&mut self, id: DatasetId, cells: &CellSet) {
        for cell in cells.iter() {
            let list = self.postings.entry(cell).or_default();
            if !list.contains(&id) {
                list.push(id);
            }
        }
    }

    /// Removes one dataset's cells from the index.
    pub fn remove_dataset(&mut self, id: DatasetId, cells: &CellSet) {
        for cell in cells.iter() {
            if let Some(list) = self.postings.get_mut(&cell) {
                list.retain(|d| *d != id);
                if list.is_empty() {
                    self.postings.remove(&cell);
                }
            }
        }
    }

    /// Number of distinct cells indexed.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Returns `true` when no cell is indexed.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The posting list of a cell, if the cell is indexed.
    pub fn posting_list(&self, cell: CellId) -> Option<&[DatasetId]> {
        self.postings.get(&cell).map(|v| v.as_slice())
    }

    /// Returns `true` when the cell appears in at least one indexed dataset.
    pub fn contains_cell(&self, cell: CellId) -> bool {
        self.postings.contains_key(&cell)
    }

    /// Exact intersection counts between a query cell set and every dataset
    /// indexed here: one pass over the query, summing posting lists.
    ///
    /// Returns `(dataset id, |S_Q ∩ S_D|)` pairs for datasets with a
    /// non-zero intersection.
    pub fn intersection_counts(&self, query: &CellSet) -> Vec<(DatasetId, usize)> {
        let mut counts: HashMap<DatasetId, usize> = HashMap::new();
        for cell in query.iter() {
            if let Some(list) = self.postings.get(&cell) {
                for &id in list {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut counts: Vec<(DatasetId, usize)> = counts.into_iter().collect();
        counts.sort_unstable_by_key(|(id, _)| *id);
        counts
    }

    /// Estimated heap memory of the index in bytes (Fig. 8 right).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for (_, list) in self.postings.iter() {
            bytes += std::mem::size_of::<CellId>()
                + std::mem::size_of::<Vec<DatasetId>>()
                + list.capacity() * std::mem::size_of::<DatasetId>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[u64]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn build_and_query_postings() {
        let d9 = cs(&[22, 23]);
        let d10 = cs(&[20, 22]);
        let idx = InvertedIndex::build([(9u32, &d9), (10u32, &d10)]);
        // Fig. 4(c): posting lists 20 -> {D10}, 22 -> {D9, D10}, 23 -> {D9}.
        assert_eq!(idx.posting_list(20), Some(&[10u32][..]));
        assert_eq!(idx.posting_list(22), Some(&[9u32, 10][..]));
        assert_eq!(idx.posting_list(23), Some(&[9u32][..]));
        assert_eq!(idx.posting_list(99), None);
        assert_eq!(idx.key_count(), 3);
        assert!(idx.contains_cell(22));
        assert!(!idx.contains_cell(21));
    }

    #[test]
    fn intersection_counts_are_exact() {
        let a = cs(&[1, 2, 3]);
        let b = cs(&[3, 4]);
        let c = cs(&[10, 11]);
        let idx = InvertedIndex::build([(1u32, &a), (2u32, &b), (3u32, &c)]);
        let query = cs(&[2, 3, 4, 5]);
        let counts = idx.intersection_counts(&query);
        assert_eq!(counts, vec![(1, 2), (2, 2)]);
        // Cross-check against CellSet's own intersection.
        assert_eq!(a.intersection_size(&query), 2);
        assert_eq!(b.intersection_size(&query), 2);
        assert_eq!(c.intersection_size(&query), 0);
    }

    #[test]
    fn add_is_idempotent_per_cell() {
        let a = cs(&[5]);
        let mut idx = InvertedIndex::new();
        idx.add_dataset(1, &a);
        idx.add_dataset(1, &a);
        assert_eq!(idx.posting_list(5), Some(&[1u32][..]));
    }

    #[test]
    fn remove_dataset_cleans_postings() {
        let a = cs(&[1, 2]);
        let b = cs(&[2, 3]);
        let mut idx = InvertedIndex::build([(1u32, &a), (2u32, &b)]);
        idx.remove_dataset(1, &a);
        assert_eq!(idx.posting_list(1), None);
        assert_eq!(idx.posting_list(2), Some(&[2u32][..]));
        assert_eq!(idx.key_count(), 2);
        idx.remove_dataset(2, &b);
        assert!(idx.is_empty());
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn memory_estimate_grows_with_content() {
        let a = cs(&(0..50u64).collect::<Vec<_>>());
        let idx = InvertedIndex::build([(1u32, &a)]);
        assert!(idx.memory_bytes() >= 50 * std::mem::size_of::<CellId>());
    }
}
