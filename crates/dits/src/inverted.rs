//! Per-leaf inverted index (Definition 14).
//!
//! Every leaf of DITS-L stores a mapping from cell ID to the list of dataset
//! IDs (within that leaf) containing the cell.  The inverted index serves two
//! purposes:
//!
//! 1. the overlap bounds of Lemmas 2–3 are computed from its key set and
//!    posting-list sizes, and
//! 2. the exact verification step of OverlapSearch scans the posting lists of
//!    a candidate leaf once to obtain exact intersection counts for *all*
//!    datasets in the leaf simultaneously.

use serde::{Deserialize, Serialize};
use spatial::{CellId, CellSet, DatasetId};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Lazily-built packed summary of the index for the Lemma 2/3 bounds: the
/// set of all indexed cells (whose intersection with a query is the Lemma 2
/// upper bound) and the set of cells contained in *every* indexed dataset
/// (whose intersection is the Lemma 3 lower bound).  Both are [`CellSet`]s,
/// so the bounds are computed by the word-parallel AND+popcount kernel over
/// their packed block forms instead of per-cell posting-list walks.
#[derive(Debug, Clone)]
struct OverlapSummary {
    /// Number of distinct datasets indexed when the summary was built.
    datasets: usize,
    /// Every indexed cell.
    all: CellSet,
    /// Cells whose posting list covers every indexed dataset.
    full: CellSet,
}

impl OverlapSummary {
    fn memory_bytes(&self) -> usize {
        self.all.memory_bytes() + self.full.memory_bytes()
    }
}

/// An inverted index from cell ID to the dataset IDs containing the cell.
///
/// Alongside the posting lists the index lazily caches an [`OverlapSummary`]
/// (same `OnceLock` pattern as the packed cells of `CellSet`), invalidated by
/// [`add_dataset`](Self::add_dataset) / [`remove_dataset`](Self::remove_dataset);
/// equality and the serialized shape are defined by the postings alone.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: HashMap<CellId, Vec<DatasetId>>,
    summary: OnceLock<OverlapSummary>,
}

impl PartialEq for InvertedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.postings == other.postings
    }
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index of a collection of `(dataset id, cell set)` pairs.
    pub fn build<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (DatasetId, &'a CellSet)>,
    {
        let mut idx = Self::new();
        for (id, cells) in entries {
            idx.add_dataset(id, cells);
        }
        idx
    }

    /// Adds one dataset's cells to the index.
    pub fn add_dataset(&mut self, id: DatasetId, cells: &CellSet) {
        self.summary.take(); // maintenance invalidates the packed summary
        for cell in cells.iter() {
            let list = self.postings.entry(cell).or_default();
            if !list.contains(&id) {
                list.push(id);
            }
        }
    }

    /// Removes one dataset's cells from the index.
    pub fn remove_dataset(&mut self, id: DatasetId, cells: &CellSet) {
        self.summary.take();
        for cell in cells.iter() {
            if let Some(list) = self.postings.get_mut(&cell) {
                list.retain(|d| *d != id);
                if list.is_empty() {
                    self.postings.remove(&cell);
                }
            }
        }
    }

    /// Number of distinct cells indexed.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Returns `true` when no cell is indexed.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The posting list of a cell, if the cell is indexed.
    pub fn posting_list(&self, cell: CellId) -> Option<&[DatasetId]> {
        self.postings.get(&cell).map(|v| v.as_slice())
    }

    /// Returns `true` when the cell appears in at least one indexed dataset.
    pub fn contains_cell(&self, cell: CellId) -> bool {
        self.postings.contains_key(&cell)
    }

    /// Exact intersection counts between a query cell set and every dataset
    /// indexed here: one pass over the query, summing posting lists.
    ///
    /// Returns `(dataset id, |S_Q ∩ S_D|)` pairs for datasets with a
    /// non-zero intersection.
    pub fn intersection_counts(&self, query: &CellSet) -> Vec<(DatasetId, usize)> {
        let mut counts: HashMap<DatasetId, usize> = HashMap::new();
        for cell in query.iter() {
            if let Some(list) = self.postings.get(&cell) {
                for &id in list {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut counts: Vec<(DatasetId, usize)> = counts.into_iter().collect();
        counts.sort_unstable_by_key(|(id, _)| *id);
        counts
    }

    /// The packed Lemma 2/3 bound sets `(all cells, fully-shared cells)`,
    /// building and caching them on first use.
    ///
    /// `leaf_size` is the caller's view of how many datasets the leaf holds;
    /// when it disagrees with the summary's own distinct-dataset count (it
    /// cannot, under the tree invariants, but the scalar fallback keeps the
    /// bounds correct regardless) `None` is returned.
    pub fn overlap_bound_sets(&self, leaf_size: usize) -> Option<(&CellSet, &CellSet)> {
        let summary = self.summary.get_or_init(|| {
            let mut ids: HashSet<DatasetId> = HashSet::new();
            for list in self.postings.values() {
                ids.extend(list.iter().copied());
            }
            let datasets = ids.len();
            let all = CellSet::from_cells(self.postings.keys().copied());
            let full = CellSet::from_cells(
                self.postings
                    .iter()
                    .filter(|(_, list)| datasets > 0 && list.len() == datasets)
                    .map(|(&cell, _)| cell),
            );
            OverlapSummary {
                datasets,
                all,
                full,
            }
        });
        (summary.datasets == leaf_size).then_some((&summary.all, &summary.full))
    }

    /// Estimated heap memory of the index in bytes (Fig. 8 right), including
    /// the packed bound-set summary when it has been built.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for (_, list) in self.postings.iter() {
            bytes += std::mem::size_of::<CellId>()
                + std::mem::size_of::<Vec<DatasetId>>()
                + list.capacity() * std::mem::size_of::<DatasetId>();
        }
        bytes + self.summary.get().map_or(0, OverlapSummary::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(ids: &[u64]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn build_and_query_postings() {
        let d9 = cs(&[22, 23]);
        let d10 = cs(&[20, 22]);
        let idx = InvertedIndex::build([(9u32, &d9), (10u32, &d10)]);
        // Fig. 4(c): posting lists 20 -> {D10}, 22 -> {D9, D10}, 23 -> {D9}.
        assert_eq!(idx.posting_list(20), Some(&[10u32][..]));
        assert_eq!(idx.posting_list(22), Some(&[9u32, 10][..]));
        assert_eq!(idx.posting_list(23), Some(&[9u32][..]));
        assert_eq!(idx.posting_list(99), None);
        assert_eq!(idx.key_count(), 3);
        assert!(idx.contains_cell(22));
        assert!(!idx.contains_cell(21));
    }

    #[test]
    fn intersection_counts_are_exact() {
        let a = cs(&[1, 2, 3]);
        let b = cs(&[3, 4]);
        let c = cs(&[10, 11]);
        let idx = InvertedIndex::build([(1u32, &a), (2u32, &b), (3u32, &c)]);
        let query = cs(&[2, 3, 4, 5]);
        let counts = idx.intersection_counts(&query);
        assert_eq!(counts, vec![(1, 2), (2, 2)]);
        // Cross-check against CellSet's own intersection.
        assert_eq!(a.intersection_size(&query), 2);
        assert_eq!(b.intersection_size(&query), 2);
        assert_eq!(c.intersection_size(&query), 0);
    }

    #[test]
    fn add_is_idempotent_per_cell() {
        let a = cs(&[5]);
        let mut idx = InvertedIndex::new();
        idx.add_dataset(1, &a);
        idx.add_dataset(1, &a);
        assert_eq!(idx.posting_list(5), Some(&[1u32][..]));
    }

    #[test]
    fn remove_dataset_cleans_postings() {
        let a = cs(&[1, 2]);
        let b = cs(&[2, 3]);
        let mut idx = InvertedIndex::build([(1u32, &a), (2u32, &b)]);
        idx.remove_dataset(1, &a);
        assert_eq!(idx.posting_list(1), None);
        assert_eq!(idx.posting_list(2), Some(&[2u32][..]));
        assert_eq!(idx.key_count(), 2);
        idx.remove_dataset(2, &b);
        assert!(idx.is_empty());
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn memory_estimate_grows_with_content() {
        let a = cs(&(0..50u64).collect::<Vec<_>>());
        let idx = InvertedIndex::build([(1u32, &a)]);
        assert!(idx.memory_bytes() >= 50 * std::mem::size_of::<CellId>());
    }
}
