//! Index maintenance for DITS-L (Appendix IX-C): dataset inserts, updates
//! and deletes without rebuilding the whole index.
//!
//! * **Insert**: walk down from the root, at every internal node following
//!   the child whose pivot is closest to the new dataset node's pivot; add
//!   the dataset to the reached leaf (splitting it with Algorithm 1 when the
//!   capacity `f` is exceeded) and refresh the geometry of every ancestor.
//! * **Update**: locate the dataset by id.  When the new pivot still falls
//!   inside the leaf's MBR the dataset is replaced in place (refreshing the
//!   leaf's inverted index and the ancestors' geometry); when it escapes the
//!   leaf, the entry is deleted and re-inserted along the normal descent so
//!   pivot-guided lookups and pruning bounds stay tight.
//! * **Delete**: remove the dataset from its leaf and refresh upwards.  A
//!   leaf emptied by the removal is *collapsed into its sibling* (leaf
//!   underflow): keeping it around would leave a fabricated degenerate MBR
//!   that every ancestor unions into its own geometry, silently corrupting
//!   kNN and coverage pruning bounds.  [`DitsLocal::check_invariants`]
//!   rejects such leaves, so a regression fails loudly.
//!
//! Every mutation has a `_with_stats` variant that records what structural
//! work was done into a [`MaintenanceStats`] block; the multi-source
//! maintenance pipeline (`MultiSourceFramework::apply_updates` in the
//! `multisource` crate) aggregates those blocks per wire batch and folds
//! the resulting root summary into DITS-G, so global routing never goes
//! stale.  The collapse machinery leaves the orphaned arena slots in place
//! (the arena never shrinks, like the split path never reuses slots):
//! orphans are unreachable from the root, cost two empty slots per
//! collapse, and survive persistence round-trips — the codec serialises
//! the whole arena so node indices stay stable — until the next full
//! rebuild reclaims them.

use crate::inverted::InvertedIndex;
use crate::local::{geometry_of, DitsLocal, NodeIdx, NodeKind};
use crate::node::DatasetNode;
use crate::stats::MaintenanceStats;
use spatial::DatasetId;

impl DitsLocal {
    /// Inserts a new dataset node into the index.
    ///
    /// Returns `false` (and leaves the index untouched) when a dataset with
    /// the same id is already present.
    pub fn insert(&mut self, dataset: DatasetNode) -> bool {
        self.insert_with_stats(dataset, &mut MaintenanceStats::new())
    }

    /// [`insert`](Self::insert), recording structural work into `stats`.
    pub fn insert_with_stats(
        &mut self,
        dataset: DatasetNode,
        stats: &mut MaintenanceStats,
    ) -> bool {
        if self.find_dataset(dataset.id).is_some() {
            return false;
        }
        self.insert_unchecked(dataset, stats);
        stats.inserts += 1;
        true
    }

    /// Inserts a dataset known to be absent: descend, append, split on
    /// overflow, refresh ancestors.
    fn insert_unchecked(&mut self, dataset: DatasetNode, stats: &mut MaintenanceStats) {
        let leaf = self.descend_to_closest_leaf(dataset.pivot());
        let capacity = self.config().leaf_capacity;
        let needs_split;
        {
            let node = self.node_mut(leaf);
            if let NodeKind::Leaf { entries, inverted } = &mut node.kind {
                inverted.add_dataset(dataset.id, &dataset.cells);
                entries.push(dataset);
                node.geometry = geometry_of(entries);
                needs_split = entries.len() > capacity;
            } else {
                unreachable!("descend_to_closest_leaf returned a non-leaf");
            }
        }
        if needs_split {
            self.split_leaf(leaf);
            stats.leaf_splits += 1;
        }
        self.refresh_ancestors(leaf);
        self.set_dataset_count(self.dataset_count() + 1);
    }

    /// Replaces the dataset with id `dataset.id` by the new content.
    ///
    /// When the new pivot stays inside the holding leaf's MBR the entry is
    /// replaced in place; otherwise the stale placement would loosen every
    /// descend-based lookup, so the entry is deleted and re-inserted along
    /// the normal closest-pivot descent.
    ///
    /// Returns `false` when no dataset with that id exists.
    pub fn update(&mut self, dataset: DatasetNode) -> bool {
        self.update_with_stats(dataset, &mut MaintenanceStats::new())
    }

    /// [`update`](Self::update), recording structural work into `stats`.
    pub fn update_with_stats(
        &mut self,
        dataset: DatasetNode,
        stats: &mut MaintenanceStats,
    ) -> bool {
        let Some((leaf, _)) = self.find_dataset(dataset.id) else {
            return false;
        };
        let pivot = dataset.pivot();
        if self.node(leaf).geometry.rect.contains_point(&pivot) {
            // In-place replacement: the relocated dataset still belongs to
            // this leaf's region.
            {
                let node = self.node_mut(leaf);
                if let NodeKind::Leaf { entries, inverted } = &mut node.kind {
                    if let Some(pos) = entries.iter().position(|e| e.id == dataset.id) {
                        let old = &entries[pos];
                        inverted.remove_dataset(old.id, &old.cells);
                        inverted.add_dataset(dataset.id, &dataset.cells);
                        entries[pos] = dataset;
                        node.geometry = geometry_of(entries);
                    }
                }
            }
            self.refresh_ancestors(leaf);
        } else {
            // The dataset moved out of the leaf's region: delete + reinsert
            // so the tree's geometry stays tight around actual placements.
            let removed = self.remove_entry(dataset.id, stats);
            debug_assert!(removed, "find_dataset found the id an instant ago");
            self.insert_unchecked(dataset, stats);
            stats.reinserts += 1;
        }
        stats.updates += 1;
        true
    }

    /// Removes the dataset with the given id.
    ///
    /// Returns `false` when no dataset with that id exists.
    pub fn delete(&mut self, id: DatasetId) -> bool {
        self.delete_with_stats(id, &mut MaintenanceStats::new())
    }

    /// [`delete`](Self::delete), recording structural work into `stats`.
    pub fn delete_with_stats(&mut self, id: DatasetId, stats: &mut MaintenanceStats) -> bool {
        if self.remove_entry(id, stats) {
            stats.deletes += 1;
            true
        } else {
            false
        }
    }

    /// Removes one dataset from its leaf, collapsing the leaf into its
    /// sibling when the removal empties it, and refreshes ancestor geometry.
    /// Decrements the dataset count.  Returns `false` when the id is absent.
    fn remove_entry(&mut self, id: DatasetId, stats: &mut MaintenanceStats) -> bool {
        let Some((leaf, _)) = self.find_dataset(id) else {
            return false;
        };
        let now_empty;
        {
            let node = self.node_mut(leaf);
            if let NodeKind::Leaf { entries, inverted } = &mut node.kind {
                let pos = entries
                    .iter()
                    .position(|e| e.id == id)
                    .expect("find_dataset located this leaf");
                let old = entries.remove(pos);
                inverted.remove_dataset(old.id, &old.cells);
                node.geometry = geometry_of(entries);
                now_empty = entries.is_empty();
            } else {
                unreachable!("find_dataset returned a non-leaf");
            }
        }
        let refresh_from = if now_empty && self.node(leaf).parent.is_some() {
            let parent = self.collapse_empty_leaf(leaf);
            stats.leaf_collapses += 1;
            parent
        } else {
            // Either the leaf still holds entries, or it is the root: an
            // empty root leaf is the canonical empty index.
            leaf
        };
        self.refresh_ancestors(refresh_from);
        self.set_dataset_count(self.dataset_count() - 1);
        true
    }

    /// Collapses an emptied leaf by replacing its parent with the sibling
    /// subtree (the parent's arena slot is reused so grandparent child
    /// pointers stay valid; the two vacated slots become unreachable
    /// orphans).  Returns the parent's arena index, where the sibling's
    /// content now lives.
    fn collapse_empty_leaf(&mut self, leaf: NodeIdx) -> NodeIdx {
        let parent = self.node(leaf).parent.expect("collapse needs a parent");
        let sibling = match self.node(parent).kind {
            NodeKind::Internal { left, right } => {
                if left == leaf {
                    right
                } else {
                    left
                }
            }
            NodeKind::Leaf { .. } => unreachable!("a leaf's parent is internal"),
        };
        // Hoist the sibling's content into the parent slot, leaving an empty
        // orphan leaf behind in the sibling slot.
        let sibling_geometry = self.node(sibling).geometry;
        let sibling_kind = std::mem::replace(
            &mut self.node_mut(sibling).kind,
            NodeKind::Leaf {
                entries: Vec::new(),
                inverted: InvertedIndex::new(),
            },
        );
        if let NodeKind::Internal { left, right } = sibling_kind {
            self.node_mut(left).parent = Some(parent);
            self.node_mut(right).parent = Some(parent);
        }
        let node = self.node_mut(parent);
        node.geometry = sibling_geometry;
        node.kind = sibling_kind;
        parent
    }

    /// Walks from the root to the leaf whose pivot is closest to `pivot`
    /// (the insertion strategy of Appendix IX-C).
    fn descend_to_closest_leaf(&self, pivot: spatial::Point) -> NodeIdx {
        let mut idx = self.root();
        loop {
            match &self.node(idx).kind {
                NodeKind::Leaf { .. } => return idx,
                NodeKind::Internal { left, right } => {
                    let dl = self.node(*left).geometry.pivot.distance(&pivot);
                    let dr = self.node(*right).geometry.pivot.distance(&pivot);
                    idx = if dl <= dr { *left } else { *right };
                }
            }
        }
    }

    /// Splits an over-full leaf into a small subtree built with Algorithm 1,
    /// replacing the leaf in place so the parent pointers stay valid.
    fn split_leaf(&mut self, leaf: NodeIdx) {
        let entries = {
            let node = self.node_mut(leaf);
            match &mut node.kind {
                NodeKind::Leaf { entries, inverted } => {
                    *inverted = InvertedIndex::new();
                    std::mem::take(entries)
                }
                NodeKind::Internal { .. } => return,
            }
        };
        // Rebuild the subtree for these entries; its root replaces the leaf.
        let geometry = geometry_of(&entries);
        let dsplit = if geometry.rect.width() >= geometry.rect.height() {
            0
        } else {
            1
        };
        let mut entries = entries;
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| {
            let ca = if dsplit == 0 {
                a.pivot().x
            } else {
                a.pivot().y
            };
            let cb = if dsplit == 0 {
                b.pivot().x
            } else {
                b.pivot().y
            };
            ca.total_cmp(&cb)
        });
        let right_entries = entries.split_off(mid);
        let left_entries = entries;
        let left = self.build_subtree(left_entries, Some(leaf));
        let right = self.build_subtree(right_entries, Some(leaf));
        let node = self.node_mut(leaf);
        node.geometry = geometry;
        node.kind = NodeKind::Internal { left, right };
    }

    /// Recomputes the geometry of every ancestor of `idx` from its children,
    /// walking the parent pointers upwards.
    fn refresh_ancestors(&mut self, idx: NodeIdx) {
        let mut current = self.node(idx).parent;
        while let Some(parent) = current {
            let geometry = match &self.node(parent).kind {
                NodeKind::Internal { left, right } => {
                    self.node(*left).geometry.union(&self.node(*right).geometry)
                }
                NodeKind::Leaf { .. } => self.node(parent).geometry,
            };
            self.node_mut(parent).geometry = geometry;
            current = self.node(parent).parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::DitsLocalConfig;
    use crate::overlap::{overlap_search, overlap_search_bruteforce};
    use proptest::prelude::*;
    use spatial::zorder::cell_id;
    use spatial::CellSet;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn block(id: u32) -> DatasetNode {
        let x = (id * 3) % 90;
        let y = (id * 7) % 90;
        node(id, &[(x, y), (x + 1, y), (x, y + 1)])
    }

    #[test]
    fn insert_into_empty_index() {
        let mut idx = DitsLocal::build(Vec::new(), DitsLocalConfig { leaf_capacity: 2 });
        assert!(idx.insert(block(0)));
        assert!(idx.insert(block(1)));
        assert!(idx.insert(block(2))); // forces a split
        assert_eq!(idx.dataset_count(), 3);
        assert!(idx.check_invariants().is_ok());
        assert!(idx.find_dataset(2).is_some());
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut idx = DitsLocal::build(vec![block(5)], DitsLocalConfig::default());
        assert!(!idx.insert(block(5)));
        assert_eq!(idx.dataset_count(), 1);
    }

    #[test]
    fn inserted_datasets_are_searchable() {
        let mut idx = DitsLocal::build(
            (0..20).map(block).collect(),
            DitsLocalConfig { leaf_capacity: 4 },
        );
        let new = node(100, &[(40, 40), (41, 40), (42, 40)]);
        assert!(idx.insert(new.clone()));
        let query = CellSet::from_cells([cell_id(40, 40), cell_id(41, 40), cell_id(42, 40)]);
        let (results, _) = overlap_search(&idx, &query, 1);
        assert_eq!(results[0].dataset, 100);
        assert_eq!(results[0].overlap, 3);
        assert!(idx.check_invariants().is_ok());
    }

    #[test]
    fn update_changes_search_results() {
        let mut idx = DitsLocal::build(
            (0..10).map(block).collect(),
            DitsLocalConfig { leaf_capacity: 3 },
        );
        // Move dataset 4 to a far-away location.
        let moved = node(4, &[(200, 200), (201, 200)]);
        assert!(idx.update(moved));
        assert!(idx.check_invariants().is_ok());
        let query = CellSet::from_cells([cell_id(200, 200)]);
        let (results, _) = overlap_search(&idx, &query, 1);
        assert_eq!(results[0].dataset, 4);
        // Updating an unknown id fails.
        assert!(!idx.update(node(999, &[(1, 1)])));
    }

    #[test]
    fn delete_removes_from_results() {
        let mut idx = DitsLocal::build(
            (0..10).map(block).collect(),
            DitsLocalConfig { leaf_capacity: 3 },
        );
        assert!(idx.delete(3));
        assert!(!idx.delete(3));
        assert_eq!(idx.dataset_count(), 9);
        assert!(idx.check_invariants().is_ok());
        assert!(idx.find_dataset(3).is_none());
        let d3 = block(3);
        let (results, _) = overlap_search(&idx, &d3.cells, 10);
        assert!(results.iter().all(|r| r.dataset != 3));
    }

    #[test]
    fn batch_inserts_keep_search_exact() {
        let mut idx = DitsLocal::build(
            (0..30).map(block).collect(),
            DitsLocalConfig { leaf_capacity: 5 },
        );
        for i in 30..130u32 {
            assert!(idx.insert(block(i)));
        }
        assert_eq!(idx.dataset_count(), 130);
        assert!(idx.check_invariants().is_ok());
        let all: Vec<DatasetNode> = (0..130).map(block).collect();
        let query = CellSet::from_cells([cell_id(30, 70), cell_id(31, 70), cell_id(30, 71)]);
        let (fast, _) = overlap_search(&idx, &query, 10);
        let brute = overlap_search_bruteforce(&all, &query, 10);
        assert_eq!(
            fast.iter().map(|r| r.overlap).collect::<Vec<_>>(),
            brute.iter().map(|r| r.overlap).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_mixed_updates_preserve_invariants(
            initial in 0usize..30,
            ops in proptest::collection::vec((0u8..3, 0u32..60), 1..60),
            capacity in 1usize..6,
        ) {
            let mut idx = DitsLocal::build(
                (0..initial as u32).map(block).collect(),
                DitsLocalConfig { leaf_capacity: capacity },
            );
            let mut live: std::collections::HashSet<u32> =
                (0..initial as u32).collect();
            for (op, id) in ops {
                match op {
                    0 => {
                        let inserted = idx.insert(block(id));
                        prop_assert_eq!(inserted, !live.contains(&id));
                        live.insert(id);
                    }
                    1 => {
                        let updated = idx.update(block(id));
                        prop_assert_eq!(updated, live.contains(&id));
                    }
                    _ => {
                        let deleted = idx.delete(id);
                        prop_assert_eq!(deleted, live.contains(&id));
                        live.remove(&id);
                    }
                }
            }
            prop_assert_eq!(idx.dataset_count(), live.len());
            prop_assert!(idx.check_invariants().is_ok(), "{:?}", idx.check_invariants());
        }
    }
}
