//! Pruning bounds used by the two search algorithms.
//!
//! * Lemmas 2–3: per-leaf **overlap** upper and lower bounds computed from
//!   the leaf's inverted index, allowing OverlapSearch to prune (or keep) an
//!   entire leaf without touching its individual datasets.
//! * Lemma 4: **distance** lower and upper bounds between two nodes derived
//!   from the triangle inequality over their pivots and radii, allowing
//!   CoverageSearch to accept or reject whole subtrees when checking the
//!   connectivity constraint.

use crate::inverted::InvertedIndex;
use crate::node::NodeGeometry;
use spatial::CellSet;

/// Upper bound of Lemma 2: the number of query cells that appear in the
/// leaf's inverted index.  No dataset stored in the leaf can intersect the
/// query in more cells than this.
pub fn leaf_overlap_upper_bound(inverted: &InvertedIndex, query: &CellSet) -> usize {
    query.iter().filter(|&c| inverted.contains_cell(c)).count()
}

/// Lower bound of Lemma 3: the number of query cells whose posting list
/// contains *every* dataset of the leaf (`|c.pl| = |N_leaf.ch|`).  Every
/// dataset stored in the leaf intersects the query in at least this many
/// cells.
pub fn leaf_overlap_lower_bound(
    inverted: &InvertedIndex,
    query: &CellSet,
    leaf_size: usize,
) -> usize {
    if leaf_size == 0 {
        return 0;
    }
    query
        .iter()
        .filter(|&c| {
            inverted
                .posting_list(c)
                .map(|pl| pl.len() == leaf_size)
                .unwrap_or(false)
        })
        .count()
}

/// Both bounds of Lemmas 2–3.
///
/// Fast path: the inverted index caches its cell universe and its
/// fully-shared cells as [`CellSet`]s, so both bounds reduce to set
/// intersections evaluated by the word-parallel AND+popcount kernel over the
/// packed block forms — no per-cell posting-list walks.  When the cached
/// summary does not match the caller's `leaf_size`, the original scalar walk
/// is used; the standalone [`leaf_overlap_upper_bound`] /
/// [`leaf_overlap_lower_bound`] functions keep the scalar definition as a
/// parity cross-check.
pub fn leaf_overlap_bounds(
    inverted: &InvertedIndex,
    query: &CellSet,
    leaf_size: usize,
) -> (usize, usize) {
    if let Some((all, full)) = inverted.overlap_bound_sets(leaf_size) {
        let ub = query.intersection_size_packed(all);
        let lb = if leaf_size == 0 {
            0
        } else {
            query.intersection_size_packed(full)
        };
        return (lb, ub);
    }
    let mut ub = 0usize;
    let mut lb = 0usize;
    for c in query.iter() {
        if let Some(pl) = inverted.posting_list(c) {
            ub += 1;
            if leaf_size > 0 && pl.len() == leaf_size {
                lb += 1;
            }
        }
    }
    (lb, ub)
}

/// Distance bounds of Lemma 4: the cell-based dataset distance between the
/// contents of two nodes is contained in
/// `[max(||o₁,o₂|| − r₁ − r₂, 0), ||o₁,o₂|| + r₁ + r₂]`.
pub fn node_distance_bounds(a: &NodeGeometry, b: &NodeGeometry) -> (f64, f64) {
    let center_dist = a.pivot.distance(&b.pivot);
    let lb = (center_dist - a.radius - b.radius).max(0.0);
    let ub = center_dist + a.radius + b.radius;
    (lb, ub)
}

/// Lower bound only (cheaper when the caller short-circuits on it).
pub fn node_distance_lower_bound(a: &NodeGeometry, b: &NodeGeometry) -> f64 {
    (a.pivot.distance(&b.pivot) - a.radius - b.radius).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DatasetNode;
    use proptest::prelude::*;
    use spatial::distance::dataset_distance;
    use spatial::zorder::cell_id;
    use spatial::Mbr;
    use spatial::Point;

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    #[test]
    fn paper_fig5_bounds() {
        // Fig. 5: leaf stores datasets covering cells {7, 9, 11, 12, 13};
        // query cells {3, 9}; both datasets in the leaf contain cell 9, so
        // UB = 1 and LB = 1.
        let d1 = CellSet::from_cells([7u64, 9, 11]);
        let d2 = CellSet::from_cells([9u64, 12, 13]);
        let inv = InvertedIndex::build([(1u32, &d1), (2u32, &d2)]);
        let query = CellSet::from_cells([3u64, 9]);
        let (lb, ub) = leaf_overlap_bounds(&inv, &query, 2);
        assert_eq!(ub, 1);
        assert_eq!(lb, 1);
    }

    #[test]
    fn bounds_sandwich_exact_intersections() {
        let d1 = cs(&[(0, 0), (1, 0), (2, 0)]);
        let d2 = cs(&[(1, 0), (5, 5)]);
        let d3 = cs(&[(1, 0), (2, 0), (9, 9)]);
        let inv = InvertedIndex::build([(1u32, &d1), (2u32, &d2), (3u32, &d3)]);
        let query = cs(&[(0, 0), (1, 0), (2, 0), (7, 7)]);
        let (lb, ub) = leaf_overlap_bounds(&inv, &query, 3);
        for d in [&d1, &d2, &d3] {
            let exact = d.intersection_size(&query);
            assert!(lb <= exact, "lb {lb} > exact {exact}");
            assert!(exact <= ub, "exact {exact} > ub {ub}");
        }
        // Only cell (1,0) is shared by all three datasets.
        assert_eq!(lb, 1);
        assert_eq!(ub, 3);
    }

    #[test]
    fn empty_leaf_has_zero_bounds() {
        let inv = InvertedIndex::new();
        let query = cs(&[(0, 0)]);
        assert_eq!(leaf_overlap_bounds(&inv, &query, 0), (0, 0));
        assert_eq!(leaf_overlap_upper_bound(&inv, &query), 0);
        assert_eq!(leaf_overlap_lower_bound(&inv, &query, 0), 0);
    }

    #[test]
    fn packed_bounds_match_scalar_after_mutation() {
        let d1 = cs(&[(0, 0), (1, 0), (2, 0)]);
        let d2 = cs(&[(1, 0), (5, 5)]);
        let mut inv = InvertedIndex::build([(1u32, &d1), (2u32, &d2)]);
        let query = cs(&[(0, 0), (1, 0), (5, 5)]);
        assert_eq!(leaf_overlap_bounds(&inv, &query, 2), (1, 3));
        // Maintenance invalidates the packed summary; the recomputed bounds
        // must track the new postings exactly.
        inv.remove_dataset(2, &d2);
        let (lb, ub) = leaf_overlap_bounds(&inv, &query, 1);
        assert_eq!(ub, leaf_overlap_upper_bound(&inv, &query));
        assert_eq!(lb, leaf_overlap_lower_bound(&inv, &query, 1));
        assert_eq!((lb, ub), (2, 2));
    }

    #[test]
    fn mismatched_leaf_size_falls_back_to_scalar() {
        let d1 = cs(&[(0, 0), (1, 0)]);
        let inv = InvertedIndex::build([(1u32, &d1)]);
        // A leaf_size that disagrees with the indexed dataset count cannot use
        // the packed summary; the scalar walk still yields sound bounds.
        assert!(inv.overlap_bound_sets(3).is_none());
        let query = cs(&[(0, 0), (1, 0)]);
        assert_eq!(leaf_overlap_bounds(&inv, &query, 3), (0, 2));
    }

    #[test]
    fn paper_example6_distance_bounds() {
        // Example 6: two nodes with pivots 5 apart and radii sqrt(2) each;
        // exact distance sqrt(5) ≈ 2.236, lower bound 5 − 2√2 ≈ 2.172,
        // upper bound 5 + 2√2 ≈ 7.828.
        let a = NodeGeometry {
            rect: Mbr::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)),
            pivot: Point::new(1.0, 1.0),
            radius: 2f64.sqrt(),
        };
        let b = NodeGeometry {
            rect: Mbr::new(Point::new(5.0, 0.0), Point::new(7.0, 2.0)),
            pivot: Point::new(6.0, 1.0),
            radius: 2f64.sqrt(),
        };
        let (lb, ub) = node_distance_bounds(&a, &b);
        assert!((lb - (a.pivot.distance(&b.pivot) - 2.0 * 2f64.sqrt())).abs() < 1e-12);
        assert!((ub - (a.pivot.distance(&b.pivot) + 2.0 * 2f64.sqrt())).abs() < 1e-12);
        assert!(lb <= 2.236 && 2.236 <= ub);
    }

    #[test]
    fn distance_lower_bound_clamped_at_zero() {
        let a = NodeGeometry::from_mbr(Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        let b = NodeGeometry::from_mbr(Mbr::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        let (lb, ub) = node_distance_bounds(&a, &b);
        assert_eq!(lb, 0.0);
        assert!(ub > 0.0);
        assert_eq!(node_distance_lower_bound(&a, &b), 0.0);
    }

    proptest! {
        #[test]
        fn prop_overlap_bounds_sandwich(
            sets in proptest::collection::vec(
                proptest::collection::vec((0u32..48, 0u32..48), 1..15), 1..8),
            query in proptest::collection::vec((0u32..48, 0u32..48), 1..25),
        ) {
            let cell_sets: Vec<CellSet> = sets.iter().map(|s| cs(s)).collect();
            let inv = InvertedIndex::build(
                cell_sets.iter().enumerate().map(|(i, s)| (i as u32, s)));
            let q = cs(&query);
            let (lb, ub) = leaf_overlap_bounds(&inv, &q, cell_sets.len());
            prop_assert_eq!(ub, leaf_overlap_upper_bound(&inv, &q));
            prop_assert_eq!(lb, leaf_overlap_lower_bound(&inv, &q, cell_sets.len()));
            for s in &cell_sets {
                let exact = s.intersection_size(&q);
                prop_assert!(lb <= exact && exact <= ub);
            }
        }

        #[test]
        fn prop_distance_bounds_sandwich(
            a in proptest::collection::vec((0u32..64, 0u32..64), 1..15),
            b in proptest::collection::vec((0u32..64, 0u32..64), 1..15),
        ) {
            let na = DatasetNode::from_cell_set(0, cs(&a)).unwrap();
            let nb = DatasetNode::from_cell_set(1, cs(&b)).unwrap();
            let exact = dataset_distance(&na.cells, &nb.cells);
            let (lb, ub) = node_distance_bounds(&na.geometry, &nb.geometry);
            prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
            prop_assert!(exact <= ub + 1e-9, "exact {exact} > ub {ub}");
        }
    }
}
