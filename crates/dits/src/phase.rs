//! A thread-local traversal-vs-verification phase clock for the search
//! algorithms.
//!
//! ROADMAP item 3's claim that "candidate verification dominates traversal"
//! was inferred from batch deltas; this module measures it directly. The
//! overlap/coverage search paths (including the shared-frontier batch
//! variants) charge wall-clock time to one of two phases:
//!
//! * **traversal** — walking the DITS-L tree and computing the Lemma 2–4
//!   bounds that prune it (candidate collection, connect-set discovery);
//! * **verify** — exact computations over the surviving candidates
//!   (posting-list overlap scoring, greedy coverage picks).
//!
//! The clock is *thread-local* on purpose: every request is served on a
//! single thread (an engine worker for in-process transports, a connection
//! thread for TCP), so accumulation needs no synchronisation, and — the
//! load-bearing property — `SearchStats` stays untouched, preserving every
//! exact-equality parity test between batch and per-query execution.
//!
//! Serving code drains the clock with [`take_phase_timings`] after each
//! request (and resets it before dispatch), then ships the split on the
//! transport frame next to the stats, never inside the message, so
//! `CommStats` byte accounting stays transport-invariant.

use std::cell::Cell;
use std::time::Duration;

/// Accumulated per-phase wall-clock time for one served request.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time spent walking the index and evaluating pruning bounds.
    pub traversal: Duration,
    /// Time spent on exact verification of surviving candidates.
    pub verify: Duration,
}

impl PhaseTimings {
    /// Folds another measurement into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.traversal += other.traversal;
        self.verify += other.verify;
    }

    /// `verify / (traversal + verify)`, or `None` when nothing was timed.
    pub fn verify_share(&self) -> Option<f64> {
        let total = self.traversal + self.verify;
        if total.is_zero() {
            return None;
        }
        Some(self.verify.as_secs_f64() / total.as_secs_f64())
    }
}

thread_local! {
    static TRAVERSAL: Cell<Duration> = const { Cell::new(Duration::ZERO) };
    static VERIFY: Cell<Duration> = const { Cell::new(Duration::ZERO) };
}

pub(crate) fn add_traversal(elapsed: Duration) {
    TRAVERSAL.with(|c| c.set(c.get() + elapsed));
}

pub(crate) fn add_verify(elapsed: Duration) {
    VERIFY.with(|c| c.set(c.get() + elapsed));
}

/// Drains this thread's accumulated phase timings, resetting the clock.
///
/// Serving code calls this once per request *after* running the search (and
/// once before, discarding the result, to shed any residue another caller
/// on this thread may have left behind).
pub fn take_phase_timings() -> PhaseTimings {
    PhaseTimings {
        traversal: TRAVERSAL.with(|c| c.replace(Duration::ZERO)),
        verify: VERIFY.with(|c| c.replace(Duration::ZERO)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_clock_accumulates_and_drains_per_thread() {
        let _ = take_phase_timings();
        add_traversal(Duration::from_nanos(10));
        add_traversal(Duration::from_nanos(5));
        add_verify(Duration::from_nanos(7));
        let timings = take_phase_timings();
        assert_eq!(timings.traversal, Duration::from_nanos(15));
        assert_eq!(timings.verify, Duration::from_nanos(7));
        // Drained: a second take sees zero.
        assert_eq!(take_phase_timings(), PhaseTimings::default());
        // Another thread's clock is independent.
        std::thread::spawn(|| {
            assert_eq!(take_phase_timings(), PhaseTimings::default());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn merge_and_verify_share() {
        let mut a = PhaseTimings {
            traversal: Duration::from_nanos(30),
            verify: Duration::from_nanos(10),
        };
        let b = PhaseTimings {
            traversal: Duration::from_nanos(10),
            verify: Duration::from_nanos(110),
        };
        a.merge(&b);
        assert_eq!(a.traversal, Duration::from_nanos(40));
        assert_eq!(a.verify, Duration::from_nanos(120));
        let share = a.verify_share().unwrap();
        assert!((share - 0.75).abs() < 1e-9);
        assert_eq!(PhaseTimings::default().verify_share(), None);
    }
}
