//! OverlapSearch: the exact branch-and-bound algorithm for OJSP
//! (Section VI-B, Algorithm 2).
//!
//! Given a query cell set, the algorithm descends DITS-L pruning every
//! subtree whose MBR does not intersect the query MBR.  Each surviving leaf
//! gets an upper and a lower bound on the intersection between the query and
//! *any* dataset it stores (Lemmas 2–3).  Leaves are then verified in
//! descending upper-bound order; once `k` results are known and the next
//! leaf's upper bound cannot beat the current `k`-th best intersection, the
//! remaining leaves are pruned in batch.  Verification of a leaf scans its
//! inverted index once, producing exact intersection counts for every
//! dataset in the leaf simultaneously.

use crate::bounds::leaf_overlap_bounds;
use crate::local::{DitsLocal, NodeIdx, NodeKind, TraversalLayout};
use crate::node::DatasetNode;
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use spatial::{CellSet, DatasetId, Mbr};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One OJSP result: a dataset and its exact overlap with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapResult {
    /// The dataset's identifier.
    pub dataset: DatasetId,
    /// `|S_Q ∩ S_D|`: the number of shared cells.
    pub overlap: usize,
}

/// Runs OverlapSearch over a local index.
///
/// Returns up to `k` datasets with the largest positive overlap with
/// `query`, sorted by decreasing overlap (ties broken by dataset id for
/// determinism), together with the search statistics.
pub fn overlap_search(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
) -> (Vec<OverlapResult>, SearchStats) {
    overlap_search_with_options(index, query, k, true)
}

/// OverlapSearch with the leaf-bound pruning optionally disabled; the
/// ablation benchmark uses `use_bounds = false` to quantify the benefit of
/// Lemmas 2–3.
pub fn overlap_search_with_options(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
    use_bounds: bool,
) -> (Vec<OverlapResult>, SearchStats) {
    let mut stats = SearchStats::new();
    if k == 0 || query.is_empty() {
        return (Vec::new(), stats);
    }
    let query_rect = match query.mbr_cell_space() {
        Some(m) => m,
        None => return (Vec::new(), stats),
    };

    // Phase 1 (BranchAndBound): collect candidate leaves with their bounds.
    // The descent runs over the cached structure-of-arrays layout; only
    // surviving leaves touch their arena payloads.
    let mut candidates: Vec<LeafCandidate> = Vec::new();
    let started = std::time::Instant::now();
    let layout = index.traversal_layout();
    collect_candidate_leaves(
        index,
        layout,
        layout.root(),
        &query_rect,
        query,
        use_bounds,
        &mut candidates,
        &mut stats,
    );
    crate::phase::add_traversal(started.elapsed());

    let started = std::time::Instant::now();
    let results = verify_candidates(index, query, k, use_bounds, candidates, &mut stats);
    crate::phase::add_verify(started.elapsed());
    (results, stats)
}

/// A candidate leaf awaiting verification: `(upper bound, lower bound, leaf)`
/// as produced by phase 1 in recursion order.
pub(crate) type LeafCandidate = (usize, usize, NodeIdx);

/// Phase 2 of Algorithm 2, shared between the per-query search and the batch
/// frontier traversal so both produce identical results and statistics:
/// sorts the candidate leaves by decreasing upper bound, then verifies them
/// exactly with a min-heap of the current top-k, pruning once the next upper
/// bound cannot beat the `k`-th best intersection.
pub(crate) fn verify_candidates(
    index: &DitsLocal,
    query: &CellSet,
    k: usize,
    use_bounds: bool,
    mut candidates: Vec<LeafCandidate>,
    stats: &mut SearchStats,
) -> Vec<OverlapResult> {
    // Order leaves by decreasing upper bound so verification can stop early.
    candidates.sort_unstable_by_key(|&(ub, _, _)| Reverse(ub));

    let mut heap: BinaryHeap<Reverse<(usize, Reverse<DatasetId>)>> = BinaryHeap::new();
    for (ub, _lb, leaf) in candidates {
        let kth_best = if heap.len() >= k {
            heap.peek().map(|Reverse((o, _))| *o).unwrap_or(0)
        } else {
            0
        };
        if use_bounds && heap.len() >= k && ub <= kth_best {
            // No dataset in this or any later leaf can improve the result.
            stats.leaves_pruned_by_bounds += 1;
            continue;
        }
        stats.leaves_verified += 1;
        if let NodeKind::Leaf { inverted, entries } = &index.node(leaf).kind {
            // Exact verification: one pass over the query against the leaf's
            // posting lists yields the intersection count of every dataset in
            // the leaf.  The per-leaf accumulator is a small vector (at most
            // `f` entries), which avoids a hash map allocation per leaf.
            let mut counts: Vec<(DatasetId, usize)> =
                entries.iter().map(|e| (e.id, 0usize)).collect();
            for cell in query.iter() {
                if let Some(list) = inverted.posting_list(cell) {
                    for id in list {
                        if let Some(slot) = counts.iter_mut().find(|(d, _)| d == id) {
                            slot.1 += 1;
                        }
                    }
                }
            }
            stats.exact_computations += entries.len();
            for (dataset, overlap) in counts {
                if overlap == 0 {
                    continue;
                }
                stats.candidates += 1;
                let entry = Reverse((overlap, Reverse(dataset)));
                if heap.len() < k {
                    heap.push(entry);
                } else if let Some(&Reverse((worst, Reverse(worst_id)))) = heap.peek() {
                    if overlap > worst || (overlap == worst && dataset < worst_id) {
                        heap.pop();
                        heap.push(entry);
                    }
                }
            }
        }
    }

    let mut results: Vec<OverlapResult> = heap
        .into_iter()
        .map(|Reverse((overlap, Reverse(dataset)))| OverlapResult { dataset, overlap })
        .collect();
    results.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
    results
}

/// Recursive descent of Algorithm 2's `BranchAndBound` over the layout
/// (`node_idx` is a layout index): prunes subtrees not intersecting the
/// query MBR and computes leaf bounds.  Candidates carry *arena* indices so
/// verification can reach the leaf payloads.
#[allow(clippy::too_many_arguments)]
fn collect_candidate_leaves(
    index: &DitsLocal,
    layout: &TraversalLayout,
    node_idx: NodeIdx,
    query_rect: &Mbr,
    query: &CellSet,
    use_bounds: bool,
    out: &mut Vec<(usize, usize, NodeIdx)>,
    stats: &mut SearchStats,
) {
    stats.nodes_visited += 1;
    if !layout.rect(node_idx).intersects(query_rect) {
        stats.nodes_pruned += 1;
        return;
    }
    match layout.children(node_idx) {
        None => {
            let arena_idx = layout.arena_index(node_idx);
            if let NodeKind::Leaf { entries, inverted } = &index.node(arena_idx).kind {
                if entries.is_empty() {
                    return;
                }
                let (lb, ub) = if use_bounds {
                    leaf_overlap_bounds(inverted, query, entries.len())
                } else {
                    (0, usize::MAX)
                };
                if use_bounds && ub == 0 {
                    // The leaf shares no cell with the query at all.
                    stats.leaves_pruned_by_bounds += 1;
                    return;
                }
                out.push((ub, lb, arena_idx));
            }
        }
        Some((left, right)) => {
            collect_candidate_leaves(
                index, layout, left, query_rect, query, use_bounds, out, stats,
            );
            collect_candidate_leaves(
                index, layout, right, query_rect, query, use_bounds, out, stats,
            );
        }
    }
}

/// Brute-force OJSP over a list of dataset nodes: exact top-k by scanning
/// every dataset.  Used as the correctness oracle in tests and as the
/// no-index baseline in benchmarks.
pub fn overlap_search_bruteforce(
    datasets: &[DatasetNode],
    query: &CellSet,
    k: usize,
) -> Vec<OverlapResult> {
    let mut all: Vec<OverlapResult> = datasets
        .iter()
        .map(|d| OverlapResult {
            dataset: d.id,
            overlap: d.cells.intersection_size(query),
        })
        .filter(|r| r.overlap > 0)
        .collect();
    all.sort_unstable_by(|a, b| b.overlap.cmp(&a.overlap).then(a.dataset.cmp(&b.dataset)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::DitsLocalConfig;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use spatial::zorder::cell_id;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn cs(coords: &[(u32, u32)]) -> CellSet {
        CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y)))
    }

    fn random_nodes(n: usize, seed: u64) -> Vec<DatasetNode> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx = rng.random_range(0..200u32);
                let cy = rng.random_range(0..200u32);
                let len = rng.random_range(1..20usize);
                let coords: Vec<(u32, u32)> = (0..len)
                    .map(|_| {
                        (
                            (cx + rng.random_range(0..8)).min(255),
                            (cy + rng.random_range(0..8)).min(255),
                        )
                    })
                    .collect();
                node(i as DatasetId, &coords)
            })
            .collect()
    }

    #[test]
    fn finds_the_obvious_best_match() {
        let nodes = vec![
            node(0, &[(0, 0), (1, 0), (2, 0)]),
            node(1, &[(0, 0), (1, 0)]),
            node(2, &[(50, 50)]),
        ];
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 2 });
        let query = cs(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let (results, stats) = overlap_search(&idx, &query, 2);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0],
            OverlapResult {
                dataset: 0,
                overlap: 3
            }
        );
        assert_eq!(
            results[1],
            OverlapResult {
                dataset: 1,
                overlap: 2
            }
        );
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn zero_overlap_datasets_are_not_returned() {
        let nodes = vec![node(0, &[(0, 0)]), node(1, &[(10, 10)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(5, 5)]);
        let (results, _) = overlap_search(&idx, &query, 5);
        assert!(results.is_empty());
    }

    #[test]
    fn k_zero_or_empty_query_returns_nothing() {
        let nodes = vec![node(0, &[(0, 0)])];
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        assert!(overlap_search(&idx, &cs(&[(0, 0)]), 0).0.is_empty());
        assert!(overlap_search(&idx, &CellSet::new(), 3).0.is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let (results, _) = overlap_search(&idx, &cs(&[(0, 0)]), 3);
        assert!(results.is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_data() {
        let nodes = random_nodes(300, 42);
        let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 10 });
        let query = cs(&[(100, 100), (101, 100), (102, 101), (103, 103), (104, 104)]);
        for k in [1usize, 5, 20, 100] {
            let (fast, _) = overlap_search(&idx, &query, k);
            let brute = overlap_search_bruteforce(&nodes, &query, k);
            assert_eq!(fast, brute, "mismatch at k={k}");
        }
    }

    #[test]
    fn bounds_off_gives_same_results_with_more_work() {
        let nodes = random_nodes(200, 7);
        let idx = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 5 });
        let query = cs(&[(50, 50), (51, 51), (52, 52), (60, 60)]);
        let (with_bounds, stats_with) = overlap_search_with_options(&idx, &query, 10, true);
        let (without_bounds, stats_without) = overlap_search_with_options(&idx, &query, 10, false);
        assert_eq!(with_bounds, without_bounds);
        assert!(stats_with.leaves_verified <= stats_without.leaves_verified);
    }

    #[test]
    fn results_are_sorted_and_bounded_by_k() {
        let nodes = random_nodes(150, 3);
        let idx = DitsLocal::build(nodes, DitsLocalConfig::default());
        let query = cs(&[(10, 10), (20, 20), (30, 30), (40, 40), (50, 50), (60, 60)]);
        let (results, _) = overlap_search(&idx, &query, 7);
        assert!(results.len() <= 7);
        for w in results.windows(2) {
            assert!(w[0].overlap >= w[1].overlap);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_bruteforce(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..64, 0u32..64), 1..10), 1..60),
            query in proptest::collection::vec((0u32..64, 0u32..64), 1..15),
            k in 1usize..12,
            capacity in 1usize..8,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let idx = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: capacity });
            let q = cs(&query);
            let (fast, _) = overlap_search(&idx, &q, k);
            let brute = overlap_search_bruteforce(&nodes, &q, k);
            // Overlap values must match exactly; ids may differ only on ties.
            prop_assert_eq!(
                fast.iter().map(|r| r.overlap).collect::<Vec<_>>(),
                brute.iter().map(|r| r.overlap).collect::<Vec<_>>()
            );
        }
    }
}
