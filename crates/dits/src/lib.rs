//! **DITS** — the DIstributed Tree-based Spatial index structure and the two
//! joinable-search algorithms built on it.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`DatasetNode`] (Definition 12): a dataset wrapped with its MBR, pivot,
//!   radius and cell-based representation.
//! * [`DitsLocal`] (Section V-A, Algorithm 1): the per-data-source local
//!   index — a ball-tree-like binary tree over dataset nodes, built top-down
//!   by splitting on the widest dimension, whose leaves carry an inverted
//!   index from cell ID to the dataset nodes containing that cell.
//! * [`DitsGlobal`] (Section V-B): the data-center index over the root nodes
//!   of all local indexes, used to route queries to candidate sources.
//! * [`OverlapSearch`](overlap::overlap_search) (Section VI-B, Algorithm 2):
//!   an exact branch-and-bound algorithm for the Overlap Joinable Search
//!   Problem, driven by the per-leaf upper/lower bounds of Lemmas 2–3.
//! * [`CoverageSearch`](coverage::coverage_search) (Section VI-C,
//!   Algorithm 3): a greedy `(1−1/e)`-style approximation for the NP-hard
//!   Coverage Joinable Search Problem, driven by the node-distance bounds of
//!   Lemma 4 and a spatial-merge strategy.
//! * [Index maintenance](update) (Appendix IX-C): insert / update / delete
//!   without rebuilding.

#![warn(missing_docs)]

pub mod bounds;
pub mod bulkload;
pub mod coverage;
pub mod frontier;
pub mod global;
pub mod inverted;
pub mod knn;
pub mod local;
pub mod node;
pub mod overlap;
pub mod persist;
pub mod phase;
pub mod stats;
pub mod update;

pub use bulkload::build_bottom_up;
pub use coverage::{coverage_search, CoverageConfig, CoverageResult};
pub use frontier::{
    coverage_search_batch, overlap_search_batch, overlap_search_batch_with_options,
};
pub use global::{DitsGlobal, SourceSummary};
pub use inverted::InvertedIndex;
pub use knn::{nearest_datasets, nearest_datasets_unbounded, range_datasets, Neighbor};
pub use local::{DitsLocal, DitsLocalConfig, TraversalLayout};
pub use node::{DatasetNode, NodeGeometry};
pub use overlap::{overlap_search, overlap_search_with_options, OverlapResult};
pub use persist::{
    decode_global, decode_local, encode_global, encode_local, load_global, load_local, save_global,
    save_local, PersistError,
};
pub use phase::{take_phase_timings, PhaseTimings};
pub use stats::{MaintenanceStats, SearchStats};

#[cfg(test)]
mod thread_safety_tests {
    use super::*;
    use spatial::zorder::cell_id;
    use spatial::CellSet;

    /// The multi-source query engine shares indexes across worker threads;
    /// these assertions make that contract explicit at compile time.
    #[test]
    fn indexes_and_stats_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DitsLocal>();
        assert_send_sync::<DitsGlobal>();
        assert_send_sync::<DatasetNode>();
        assert_send_sync::<SearchStats>();
    }

    #[test]
    fn concurrent_searches_over_a_shared_index_agree() {
        let nodes: Vec<DatasetNode> = (0..60u32)
            .map(|i| {
                let base = (i % 10, i / 10);
                DatasetNode::from_cell_set(
                    i,
                    CellSet::from_cells([
                        cell_id(base.0 * 3, base.1 * 3),
                        cell_id(base.0 * 3 + 1, base.1 * 3),
                    ]),
                )
                .unwrap()
            })
            .collect();
        let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 4 });
        let query = CellSet::from_cells([cell_id(0, 0), cell_id(3, 0), cell_id(6, 3)]);
        let (expected, _) = overlap_search(&index, &query, 8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let (results, stats) = overlap_search(&index, &query, 8);
                        (results, stats)
                    })
                })
                .collect();
            for handle in handles {
                let (results, stats) = handle.join().unwrap();
                assert_eq!(results, expected);
                assert!(stats.nodes_visited > 0);
            }
        });
    }
}
