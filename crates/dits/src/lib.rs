//! **DITS** — the DIstributed Tree-based Spatial index structure and the two
//! joinable-search algorithms built on it.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`DatasetNode`] (Definition 12): a dataset wrapped with its MBR, pivot,
//!   radius and cell-based representation.
//! * [`DitsLocal`] (Section V-A, Algorithm 1): the per-data-source local
//!   index — a ball-tree-like binary tree over dataset nodes, built top-down
//!   by splitting on the widest dimension, whose leaves carry an inverted
//!   index from cell ID to the dataset nodes containing that cell.
//! * [`DitsGlobal`] (Section V-B): the data-center index over the root nodes
//!   of all local indexes, used to route queries to candidate sources.
//! * [`OverlapSearch`](overlap::overlap_search) (Section VI-B, Algorithm 2):
//!   an exact branch-and-bound algorithm for the Overlap Joinable Search
//!   Problem, driven by the per-leaf upper/lower bounds of Lemmas 2–3.
//! * [`CoverageSearch`](coverage::coverage_search) (Section VI-C,
//!   Algorithm 3): a greedy `(1−1/e)`-style approximation for the NP-hard
//!   Coverage Joinable Search Problem, driven by the node-distance bounds of
//!   Lemma 4 and a spatial-merge strategy.
//! * [Index maintenance](update) (Appendix IX-C): insert / update / delete
//!   without rebuilding.

#![warn(missing_docs)]

pub mod bounds;
pub mod bulkload;
pub mod coverage;
pub mod global;
pub mod inverted;
pub mod knn;
pub mod local;
pub mod node;
pub mod overlap;
pub mod persist;
pub mod stats;
pub mod update;

pub use bulkload::build_bottom_up;
pub use coverage::{coverage_search, CoverageConfig, CoverageResult};
pub use global::{DitsGlobal, SourceSummary};
pub use inverted::InvertedIndex;
pub use knn::{nearest_datasets, range_datasets, Neighbor};
pub use local::{DitsLocal, DitsLocalConfig};
pub use node::{DatasetNode, NodeGeometry};
pub use overlap::{overlap_search, overlap_search_with_options, OverlapResult};
pub use persist::{decode_local, encode_local, load_local, save_local, PersistError};
pub use stats::SearchStats;
