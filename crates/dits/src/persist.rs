//! Index persistence: compact, versioned binary images of DITS-L and DITS-G.
//!
//! Real deployments of the multi-source framework restart data sources
//! without wanting to re-grid and re-index terabytes of portal data, so the
//! local index needs a durable on-disk form — and the data center needs one
//! for its global index, so a restarted center recovers every source's
//! summary without re-polling the whole fleet.  The workspace deliberately
//! depends on no serialisation *format* crate, so this module implements a
//! small explicit codec on top of [`bytes`]:
//!
//! * fixed little-endian scalars (`u8`/`u32`/`u64`/`f64`),
//! * length-prefixed sequences,
//! * delta-encoded, varint-compressed cell IDs (cell sets are sorted, so the
//!   gaps are small and the image ends up far smaller than 8 bytes/cell),
//! * a magic number plus a format version so stale images fail loudly
//!   instead of decoding garbage.
//!
//! Leaf inverted indexes are *not* stored: they are fully determined by the
//! leaf's dataset nodes and are rebuilt during decoding, which keeps the
//! image smaller and removes a whole class of corruption (a posting list
//! disagreeing with its entries).

use crate::global::{DitsGlobal, GlobalNode};
use crate::inverted::InvertedIndex;
use crate::local::{DitsLocal, DitsLocalConfig, NodeIdx, NodeKind, TreeNode};
use crate::node::{DatasetNode, NodeGeometry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spatial::{CellSet, Mbr, Point, SourceId};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Magic number at the start of every local index image (`"DITS"` in ASCII).
const MAGIC: u32 = 0x4449_5453;
/// Magic number at the start of every global index image (`"DITG"`).
const GLOBAL_MAGIC: u32 = 0x4449_5447;
/// Current format version; bump when the encoding changes incompatibly.
const VERSION: u16 = 1;

/// Errors produced while decoding or reading an index image.
#[derive(Debug)]
pub enum PersistError {
    /// The image does not start with the DITS magic number.
    BadMagic(u32),
    /// The image was written by an unsupported format version.
    UnsupportedVersion(u16),
    /// The image ended before the declared content was read.
    UnexpectedEof {
        /// What the decoder was trying to read.
        context: &'static str,
    },
    /// The image decoded into a structurally inconsistent tree.
    Corrupt(String),
    /// Underlying file I/O error.
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic(m) => write!(f, "not a DITS index image (magic {m:#010x})"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported DITS image version {v} (supported: {VERSION})"
                )
            }
            PersistError::UnexpectedEof { context } => {
                write!(f, "index image truncated while reading {context}")
            }
            PersistError::Corrupt(msg) => write!(f, "index image is corrupt: {msg}"),
            PersistError::Io(e) => write!(f, "index image I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a local index into its binary image.
pub fn encode_local(index: &DitsLocal) -> Bytes {
    let (nodes, root, config, dataset_count) = index.parts();
    let mut buf = BytesMut::with_capacity(64 + index.memory_bytes() / 2);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(config.leaf_capacity as u64);
    buf.put_u64_le(dataset_count as u64);
    buf.put_u64_le(root as u64);
    buf.put_u64_le(nodes.len() as u64);
    for node in nodes {
        encode_tree_node(&mut buf, node);
    }
    buf.freeze()
}

/// Writes the binary image of a local index to a file (atomically via a
/// temporary sibling file).
pub fn save_local(index: &DitsLocal, path: &Path) -> Result<(), PersistError> {
    let image = encode_local(index);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &image)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

fn encode_tree_node(buf: &mut BytesMut, node: &TreeNode) {
    encode_geometry(buf, &node.geometry);
    match node.parent {
        Some(p) => {
            buf.put_u8(1);
            buf.put_u64_le(p as u64);
        }
        None => buf.put_u8(0),
    }
    match &node.kind {
        NodeKind::Internal { left, right } => {
            buf.put_u8(0);
            buf.put_u64_le(*left as u64);
            buf.put_u64_le(*right as u64);
        }
        NodeKind::Leaf { entries, .. } => {
            buf.put_u8(1);
            buf.put_u64_le(entries.len() as u64);
            for entry in entries {
                encode_dataset_node(buf, entry);
            }
        }
    }
}

/// Encodes a global index into its binary image.
///
/// The image carries the full arena (tree shape, geometry and every source
/// summary) plus the maintenance churn counter, so a restarted data center
/// resumes exactly where it stopped — including how close the tree was to
/// its next heuristic rebuild.
pub fn encode_global(index: &DitsGlobal) -> Bytes {
    let (nodes, root, leaf_capacity, source_count, churn) = index.parts();
    let mut buf = BytesMut::with_capacity(64 + nodes.len() * 64);
    buf.put_u32_le(GLOBAL_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(leaf_capacity as u64);
    buf.put_u64_le(source_count as u64);
    buf.put_u64_le(churn as u64);
    buf.put_u64_le(root as u64);
    buf.put_u64_le(nodes.len() as u64);
    for node in nodes {
        match node {
            GlobalNode::Internal {
                geometry,
                left,
                right,
            } => {
                buf.put_u8(0);
                encode_geometry(&mut buf, geometry);
                buf.put_u64_le(*left as u64);
                buf.put_u64_le(*right as u64);
            }
            GlobalNode::Leaf { geometry, sources } => {
                buf.put_u8(1);
                encode_geometry(&mut buf, geometry);
                buf.put_u64_le(sources.len() as u64);
                for s in sources {
                    buf.put_u16_le(s.source);
                    buf.put_u32_le(s.resolution);
                    buf.put_f64_le(s.geometry.rect.min.x);
                    buf.put_f64_le(s.geometry.rect.min.y);
                    buf.put_f64_le(s.geometry.rect.max.x);
                    buf.put_f64_le(s.geometry.rect.max.y);
                }
            }
        }
    }
    buf.freeze()
}

/// Writes the binary image of a global index to a file (atomically via a
/// temporary sibling file).
pub fn save_global(index: &DitsGlobal, path: &Path) -> Result<(), PersistError> {
    let image = encode_global(index);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &image)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Decodes a global index from its binary image, verifying structural
/// invariants.
pub fn decode_global(image: &[u8]) -> Result<DitsGlobal, PersistError> {
    let mut buf = image;
    let magic = read_u32(&mut buf, "magic")?;
    if magic != GLOBAL_MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = read_u16(&mut buf, "version")?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let leaf_capacity = read_u64(&mut buf, "leaf capacity")? as usize;
    let source_count = read_u64(&mut buf, "source count")? as usize;
    let churn = read_u64(&mut buf, "churn")? as usize;
    let root = read_u64(&mut buf, "root index")? as usize;
    let node_count = read_u64(&mut buf, "node count")? as usize;
    if node_count > image.len() {
        return Err(PersistError::Corrupt(format!(
            "node count {node_count} larger than the image itself"
        )));
    }
    // The arena is never empty: even an index with no sources has its root
    // leaf node, and every reachability walk starts by indexing the root.
    if node_count == 0 {
        return Err(PersistError::Corrupt("empty node arena".to_string()));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let tag = read_u8(&mut buf, "global node kind")?;
        let node = match tag {
            0 => {
                let geometry = decode_geometry(&mut buf)?;
                GlobalNode::Internal {
                    geometry,
                    left: read_u64(&mut buf, "left child")? as usize,
                    right: read_u64(&mut buf, "right child")? as usize,
                }
            }
            1 => {
                let geometry = decode_geometry(&mut buf)?;
                let n = read_u64(&mut buf, "leaf summary count")? as usize;
                let mut sources = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    sources.push(decode_summary(&mut buf)?);
                }
                GlobalNode::Leaf { geometry, sources }
            }
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown global node kind tag {other}"
                )));
            }
        };
        nodes.push(node);
    }
    if root >= nodes.len() {
        return Err(PersistError::Corrupt(format!(
            "root index {root} out of bounds ({} nodes)",
            nodes.len()
        )));
    }
    // Child pointers must form a proper tree: in bounds and no node adopted
    // twice.  This rules out cycles and shared subtrees before any
    // reachability walk runs over the arena.
    let mut referenced = vec![false; nodes.len()];
    for (idx, node) in nodes.iter().enumerate() {
        if let GlobalNode::Internal { left, right, .. } = node {
            for child in [*left, *right] {
                if child >= nodes.len() || child == idx {
                    return Err(PersistError::Corrupt(format!(
                        "internal {idx} references an invalid child {child}"
                    )));
                }
                match referenced.get_mut(child) {
                    Some(seen) if *seen => {
                        return Err(PersistError::Corrupt(format!(
                            "node {child} has more than one parent"
                        )));
                    }
                    Some(seen) => *seen = true,
                    None => {
                        return Err(PersistError::Corrupt(format!(
                            "internal {idx} references an invalid child {child}"
                        )));
                    }
                }
            }
        }
    }
    if referenced.get(root).copied().unwrap_or(false) {
        return Err(PersistError::Corrupt(
            "root is referenced as a child".to_string(),
        ));
    }
    let index = DitsGlobal::from_parts(nodes, root, leaf_capacity.max(1), source_count, churn);
    index.check_invariants().map_err(PersistError::Corrupt)?;
    Ok(index)
}

/// Reads the binary image of a global index from a file.
pub fn load_global(path: &Path) -> Result<DitsGlobal, PersistError> {
    let image = fs::read(path)?;
    decode_global(&image)
}

fn decode_summary(buf: &mut &[u8]) -> Result<crate::global::SourceSummary, PersistError> {
    let source = read_u16(buf, "summary source id")? as SourceId;
    let resolution = read_u32(buf, "summary resolution")?;
    let min = Point::new(
        read_f64(buf, "summary min x")?,
        read_f64(buf, "summary min y")?,
    );
    let max = Point::new(
        read_f64(buf, "summary max x")?,
        read_f64(buf, "summary max y")?,
    );
    Ok(crate::global::SourceSummary {
        source,
        geometry: NodeGeometry::from_mbr(Mbr::new(min, max)),
        resolution,
    })
}

fn encode_dataset_node(buf: &mut BytesMut, node: &DatasetNode) {
    // The dataset geometry (MBR / pivot / radius) is fully determined by the
    // cell set, so only the id and the cells are stored; the geometry is
    // recomputed during decoding.  This keeps the image roughly 60 bytes
    // smaller per dataset.
    buf.put_u32_le(node.id);
    encode_cell_set(buf, &node.cells);
}

fn encode_geometry(buf: &mut BytesMut, g: &NodeGeometry) {
    buf.put_f64_le(g.rect.min.x);
    buf.put_f64_le(g.rect.min.y);
    buf.put_f64_le(g.rect.max.x);
    buf.put_f64_le(g.rect.max.y);
    buf.put_f64_le(g.pivot.x);
    buf.put_f64_le(g.pivot.y);
    buf.put_f64_le(g.radius);
}

/// Cell sets are sorted, so they are stored as varint-encoded gaps.
fn encode_cell_set(buf: &mut BytesMut, cells: &CellSet) {
    put_varint(buf, cells.len() as u64);
    let mut previous = 0u64;
    for cell in cells.iter() {
        put_varint(buf, cell - previous);
        previous = cell;
    }
}

/// LEB128-style unsigned varint.
fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes a local index from its binary image, rebuilding leaf inverted
/// indexes and verifying structural invariants.
pub fn decode_local(image: &[u8]) -> Result<DitsLocal, PersistError> {
    let mut buf = image;
    let magic = read_u32(&mut buf, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = read_u16(&mut buf, "version")?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let leaf_capacity = read_u64(&mut buf, "leaf capacity")? as usize;
    let dataset_count = read_u64(&mut buf, "dataset count")? as usize;
    let root = read_u64(&mut buf, "root index")? as usize;
    let node_count = read_u64(&mut buf, "node count")? as usize;
    // A valid arena never has more nodes than bytes in the image — reject
    // absurd counts before allocating.  And it is never empty: even an
    // index with no datasets has its root leaf node.
    if node_count > image.len() {
        return Err(PersistError::Corrupt(format!(
            "node count {node_count} larger than the image itself"
        )));
    }
    if node_count == 0 {
        return Err(PersistError::Corrupt("empty node arena".to_string()));
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        nodes.push(decode_tree_node(&mut buf)?);
    }
    if root >= nodes.len() {
        return Err(PersistError::Corrupt(format!(
            "root index {root} out of bounds ({} nodes)",
            nodes.len()
        )));
    }
    let index = DitsLocal::from_parts(
        nodes,
        root,
        DitsLocalConfig {
            leaf_capacity: leaf_capacity.max(1),
        },
        dataset_count,
    );
    index.check_invariants().map_err(PersistError::Corrupt)?;
    Ok(index)
}

/// Reads the binary image of a local index from a file.
pub fn load_local(path: &Path) -> Result<DitsLocal, PersistError> {
    let image = fs::read(path)?;
    decode_local(&image)
}

fn decode_tree_node(buf: &mut &[u8]) -> Result<TreeNode, PersistError> {
    let geometry = decode_geometry(buf)?;
    let has_parent = read_u8(buf, "parent flag")?;
    let parent = if has_parent == 1 {
        Some(read_u64(buf, "parent index")? as NodeIdx)
    } else {
        None
    };
    let kind_tag = read_u8(buf, "node kind")?;
    let kind = match kind_tag {
        0 => NodeKind::Internal {
            left: read_u64(buf, "left child")? as NodeIdx,
            right: read_u64(buf, "right child")? as NodeIdx,
        },
        1 => {
            let entry_count = read_u64(buf, "leaf entry count")? as usize;
            let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
            for _ in 0..entry_count {
                entries.push(decode_dataset_node(buf)?);
            }
            let inverted = InvertedIndex::build(entries.iter().map(|e| (e.id, &e.cells)));
            NodeKind::Leaf { entries, inverted }
        }
        other => {
            return Err(PersistError::Corrupt(format!(
                "unknown node kind tag {other}"
            )));
        }
    };
    Ok(TreeNode {
        geometry,
        parent,
        kind,
    })
}

fn decode_dataset_node(buf: &mut &[u8]) -> Result<DatasetNode, PersistError> {
    let id = read_u32(buf, "dataset id")?;
    let cells = decode_cell_set(buf)?;
    DatasetNode::from_cell_set(id, cells)
        .ok_or_else(|| PersistError::Corrupt(format!("dataset {id} has an empty cell set")))
}

fn decode_geometry(buf: &mut &[u8]) -> Result<NodeGeometry, PersistError> {
    let min = Point::new(read_f64(buf, "mbr min x")?, read_f64(buf, "mbr min y")?);
    let max = Point::new(read_f64(buf, "mbr max x")?, read_f64(buf, "mbr max y")?);
    let pivot = Point::new(read_f64(buf, "pivot x")?, read_f64(buf, "pivot y")?);
    let radius = read_f64(buf, "radius")?;
    Ok(NodeGeometry {
        rect: Mbr::new(min, max),
        pivot,
        radius,
    })
}

fn decode_cell_set(buf: &mut &[u8]) -> Result<CellSet, PersistError> {
    let len = read_varint(buf)? as usize;
    let mut cells = Vec::with_capacity(len.min(1 << 24));
    let mut previous = 0u64;
    for _ in 0..len {
        let gap = read_varint(buf)?;
        previous = previous
            .checked_add(gap)
            .ok_or_else(|| PersistError::Corrupt("cell id overflow".to_string()))?;
        cells.push(previous);
    }
    Ok(CellSet::from_cells(cells))
}

fn read_varint(buf: &mut &[u8]) -> Result<u64, PersistError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_u8(buf, "varint")?;
        if shift >= 64 {
            return Err(PersistError::Corrupt(
                "varint longer than 64 bits".to_string(),
            ));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

macro_rules! reader {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        fn $name(buf: &mut &[u8], context: &'static str) -> Result<$ty, PersistError> {
            if buf.remaining() < $size {
                return Err(PersistError::UnexpectedEof { context });
            }
            Ok(buf.$get())
        }
    };
}

reader!(read_u8, u8, get_u8, 1);
reader!(read_u16, u16, get_u16_le, 2);
reader!(read_u32, u32, get_u32_le, 4);
reader!(read_u64, u64, get_u64_le, 8);
reader!(read_f64, f64, get_f64_le, 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::DitsLocalConfig;
    use crate::overlap::overlap_search;
    use proptest::prelude::*;
    use spatial::zorder::cell_id;
    use spatial::DatasetId;

    fn node(id: DatasetId, coords: &[(u32, u32)]) -> DatasetNode {
        DatasetNode::from_cell_set(
            id,
            CellSet::from_cells(coords.iter().map(|&(x, y)| cell_id(x, y))),
        )
        .unwrap()
    }

    fn sample_index(n: u32, capacity: usize) -> DitsLocal {
        let nodes: Vec<DatasetNode> = (0..n)
            .map(|i| {
                let bx = (i * 3) % 96;
                let by = ((i * 3) / 96) * 3;
                node(i, &[(bx, by), (bx + 1, by), (bx, by + 1)])
            })
            .collect();
        DitsLocal::build(
            nodes,
            DitsLocalConfig {
                leaf_capacity: capacity,
            },
        )
    }

    #[test]
    fn roundtrip_preserves_structure_and_answers() {
        let index = sample_index(120, 7);
        let image = encode_local(&index);
        let decoded = decode_local(&image).unwrap();
        assert_eq!(decoded.dataset_count(), index.dataset_count());
        assert_eq!(decoded.node_count(), index.node_count());
        assert_eq!(decoded.config().leaf_capacity, 7);
        assert!(decoded.check_invariants().is_ok());
        // The decoded index must answer searches identically.
        let query = CellSet::from_cells([cell_id(3, 0), cell_id(4, 0), cell_id(6, 3)]);
        let (before, _) = overlap_search(&index, &query, 5);
        let (after, _) = overlap_search(&decoded, &query, 5);
        assert_eq!(before, after);
    }

    #[test]
    fn roundtrip_of_empty_index() {
        let index = DitsLocal::build(Vec::new(), DitsLocalConfig::default());
        let decoded = decode_local(&encode_local(&index)).unwrap();
        assert_eq!(decoded.dataset_count(), 0);
        assert!(decoded.check_invariants().is_ok());
    }

    #[test]
    fn image_is_compact() {
        let index = sample_index(200, 10);
        let image = encode_local(&index);
        // The varint gap encoding must beat a naive 8-bytes-per-cell estimate.
        let naive: usize = index
            .dataset_nodes()
            .iter()
            .map(|n| n.cells.len() * 8 + 64)
            .sum();
        assert!(
            image.len() < naive,
            "image of {} bytes not smaller than naive {}",
            image.len(),
            naive
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let index = sample_index(10, 4);
        let image = encode_local(&index).to_vec();
        let mut wrong_magic = image.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            decode_local(&wrong_magic),
            Err(PersistError::BadMagic(_))
        ));
        let mut wrong_version = image.clone();
        wrong_version[4] = 0xff;
        assert!(matches!(
            decode_local(&wrong_version),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncated_images_fail_loudly() {
        let index = sample_index(30, 4);
        let image = encode_local(&index).to_vec();
        for cut in [3usize, 7, 20, image.len() / 2, image.len() - 1] {
            let truncated = &image[..cut];
            let err = decode_local(truncated).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::UnexpectedEof { .. } | PersistError::Corrupt(_)
                ),
                "cut at {cut} produced unexpected error {err}"
            );
        }
    }

    #[test]
    fn corrupted_dataset_count_is_detected() {
        let index = sample_index(20, 4);
        let mut image = encode_local(&index).to_vec();
        // The dataset count lives at offset 4+2+8 = 14; flip it.
        image[14] = image[14].wrapping_add(1);
        assert!(matches!(
            decode_local(&image),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join(format!("dits-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("local.dits");
        let index = sample_index(50, 6);
        save_local(&index, &path).unwrap();
        let loaded = load_local(&path).unwrap();
        assert_eq!(loaded.dataset_count(), 50);
        assert!(loaded.check_invariants().is_ok());
        // Missing files surface as I/O errors.
        assert!(matches!(
            load_local(&dir.join("does-not-exist.dits")),
            Err(PersistError::Io(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_messages_are_descriptive() {
        let not_an_image = [0u8; 2];
        let err = decode_local(&not_an_image).unwrap_err();
        assert!(err.to_string().contains("truncated"));
        let err = PersistError::BadMagic(0xdead_beef);
        assert!(err.to_string().contains("magic"));
        let err = PersistError::UnsupportedVersion(9);
        assert!(err.to_string().contains("version"));
    }

    fn sample_global(n: u16, capacity: usize) -> DitsGlobal {
        use crate::global::SourceSummary;
        let summaries: Vec<SourceSummary> = (0..n)
            .map(|i| SourceSummary {
                source: i,
                geometry: NodeGeometry::from_mbr(Mbr::new(
                    Point::new(f64::from(i) * 7.0 - 100.0, f64::from(i % 5) * 9.0 - 20.0),
                    Point::new(f64::from(i) * 7.0 - 95.0, f64::from(i % 5) * 9.0 - 15.0),
                )),
                resolution: 10 + u32::from(i % 3),
            })
            .collect();
        DitsGlobal::build(summaries, capacity)
    }

    #[test]
    fn global_roundtrip_preserves_summaries_and_routing() {
        let mut index = sample_global(17, 3);
        // Exercise the maintenance paths so churn and empty leaves survive
        // the round-trip too.
        assert!(index.remove_source(4));
        let moved = crate::global::SourceSummary {
            source: 9,
            geometry: NodeGeometry::from_mbr(Mbr::new(
                Point::new(150.0, 60.0),
                Point::new(155.0, 65.0),
            )),
            resolution: 11,
        };
        assert!(index.refresh_source(moved));
        let image = encode_global(&index);
        let decoded = decode_global(&image).unwrap();
        assert_eq!(decoded.source_count(), index.source_count());
        assert_eq!(decoded.leaf_capacity(), index.leaf_capacity());
        assert_eq!(decoded.churn(), index.churn());
        assert_eq!(decoded.summaries(), index.summaries());
        assert!(decoded.check_invariants().is_ok());
        // Candidate routing is identical after the round-trip.
        for query in [
            Mbr::new(Point::new(-80.0, -10.0), Point::new(-60.0, 10.0)),
            Mbr::new(Point::new(151.0, 61.0), Point::new(152.0, 62.0)),
            Mbr::new(Point::new(-30.0, -30.0), Point::new(30.0, 30.0)),
        ] {
            assert_eq!(
                decoded.candidate_sources(&query, 2.0),
                index.candidate_sources(&query, 2.0)
            );
        }
    }

    #[test]
    fn global_roundtrip_of_empty_index() {
        let decoded = decode_global(&encode_global(&sample_global(0, 4))).unwrap();
        assert_eq!(decoded.source_count(), 0);
        assert!(decoded.check_invariants().is_ok());
    }

    #[test]
    fn global_and_local_images_are_not_interchangeable() {
        let local = sample_index(10, 4);
        assert!(matches!(
            decode_global(&encode_local(&local)),
            Err(PersistError::BadMagic(_))
        ));
        let global = sample_global(10, 4);
        assert!(matches!(
            decode_local(&encode_global(&global)),
            Err(PersistError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_global_images_fail_loudly() {
        let image = encode_global(&sample_global(12, 3)).to_vec();
        for cut in [3usize, 9, 30, image.len() / 2, image.len() - 1] {
            let err = decode_global(&image[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::UnexpectedEof { .. } | PersistError::Corrupt(_)
                ),
                "cut at {cut} produced unexpected error {err}"
            );
        }
    }

    #[test]
    fn zero_node_images_are_rejected_not_panicking() {
        // A crafted header declaring an empty arena with root = 0 used to
        // slip past the bounds check and panic inside the invariant walk.
        for magic in [MAGIC, GLOBAL_MAGIC] {
            let mut image = Vec::new();
            image.put_u32_le(magic);
            image.put_u16_le(VERSION);
            // leaf capacity + (dataset|source) count [+ churn] + root +
            // node_count, all zero: more header words than either format
            // reads, so both decoders see node_count = 0.
            for _ in 0..6 {
                image.put_u64_le(0);
            }
            let err = if magic == MAGIC {
                decode_local(&image).unwrap_err()
            } else {
                decode_global(&image).unwrap_err()
            };
            assert!(matches!(err, PersistError::Corrupt(_)), "got {err}");
        }
    }

    #[test]
    fn save_and_load_global_via_files() {
        let dir = std::env::temp_dir().join(format!("dits-persist-global-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("global.ditg");
        let index = sample_global(9, 2);
        save_global(&index, &path).unwrap();
        let loaded = load_global(&path).unwrap();
        assert_eq!(loaded.summaries(), index.summaries());
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_random_bytes_never_panic_global(
            bytes in proptest::collection::vec(any::<u8>(), 0..400),
        ) {
            if let Ok(index) = decode_global(&bytes) {
                prop_assert!(index.check_invariants().is_ok());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip_is_lossless(
            datasets in proptest::collection::vec(
                proptest::collection::vec((0u32..128, 0u32..128), 1..12), 1..50),
            capacity in 1usize..10,
        ) {
            let nodes: Vec<DatasetNode> = datasets
                .iter()
                .enumerate()
                .map(|(i, c)| node(i as DatasetId, c))
                .collect();
            let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: capacity });
            let decoded = decode_local(&encode_local(&index)).unwrap();
            prop_assert_eq!(decoded.dataset_count(), index.dataset_count());
            prop_assert!(decoded.check_invariants().is_ok());
            // Every dataset's cells survive the roundtrip bit for bit.
            let mut before: Vec<(DatasetId, Vec<u64>)> = index
                .dataset_nodes()
                .iter()
                .map(|n| (n.id, n.cells.cells().to_vec()))
                .collect();
            let mut after: Vec<(DatasetId, Vec<u64>)> = decoded
                .dataset_nodes()
                .iter()
                .map(|n| (n.id, n.cells.cells().to_vec()))
                .collect();
            before.sort();
            after.sort();
            prop_assert_eq!(before, after);
        }

        #[test]
        fn prop_random_bytes_never_panic(
            bytes in proptest::collection::vec(any::<u8>(), 0..400),
        ) {
            // Arbitrary garbage must produce an error, never a panic or an
            // index that fails its own invariants.
            if let Ok(index) = decode_local(&bytes) {
                prop_assert!(index.check_invariants().is_ok());
            }
        }
    }
}
