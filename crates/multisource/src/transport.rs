//! Pluggable delivery of [`Message`]s to data sources.
//!
//! The query engine, the data center and the maintenance pipeline never talk
//! to a [`DataSource`] directly — they hand a request to a
//! [`SourceTransport`] and get the reply back.  Everything above the
//! transport (routing, clipping, aggregation, byte accounting) is therefore
//! oblivious to *where* a source lives:
//!
//! * [`InProcessTransport`] — the sources live in this process; a call is a
//!   function call.  Lock-free (`&[DataSource]`), so the engine's worker
//!   threads fan out without synchronisation.  Serves queries and read-only
//!   summary polls; mutating maintenance needs [`ExclusiveTransport`].
//! * [`ExclusiveTransport`] — in-process with exclusive access
//!   (`&mut Vec<DataSource>` behind a mutex): the full protocol including
//!   mutating maintenance batches.
//! * [`TcpTransport`] — each source is a remote process reached over
//!   length-prefixed frames on `std::net::TcpStream`, speaking exactly the
//!   bytes [`Message::encode`] produces.  [`SourceServer`] (and the
//!   `source-server` binary) are the other end of that socket.
//!
//! Byte accounting ([`CommStats`](crate::CommStats)) counts
//! [`Message::wire_size`] in both directions regardless of transport — the
//! frame header is transport framing, like a TCP header, not protocol
//! payload — so the communication metrics of a run are identical whether the
//! sources are threads or processes.
//!
//! # Frame format
//!
//! ```text
//! [u32 BE body length][u8 flags][varint msg_len][message][stats varints]
//! ```
//!
//! `flags` bit 0 on a request asks the source to append its off-wire search
//! statistics to the reply; bits 1/2 on a reply say a
//! [`SearchStats`]/[`MaintenanceStats`] block follows the message; bit 3 on
//! a reply says the source's wall-clock service time (one varint of
//! nanoseconds) follows; bit 4 says a trace block (trace id plus the
//! traversal/verification phase split, three varints) follows — on a request
//! the block carries the center-assigned trace id with zeroed phases, on a
//! reply it echoes that id with the measured phases.  Bit 5 says a
//! correlation id (one varint) ends the frame: a pipelining transport tags
//! each request with one and matches replies by the echoed id, so multiple
//! frames can be in flight on one connection.  All of these are an
//! *instrumentation channel*: they ride in the frame, not in the message, so
//! opting in or out never changes the protocol bytes the paper's
//! communication figures count.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dits::{MaintenanceStats, PhaseTimings, SearchStats};
use spatial::SourceId;

use crate::error::{TransportError, WireError};
use crate::message::{get_varint, put_varint, Message};
use crate::source::DataSource;

/// Request flag: append search/maintenance statistics to the reply frame.
const FLAG_WANT_STATS: u8 = 0b0000_0001;
/// Reply flag: a [`SearchStats`] block follows the message.
const FLAG_HAS_SEARCH: u8 = 0b0000_0010;
/// Reply flag: a [`MaintenanceStats`] block follows the message.
const FLAG_HAS_MAINTENANCE: u8 = 0b0000_0100;
/// Reply flag: the source's service time (varint nanoseconds) follows the
/// statistics blocks.
const FLAG_HAS_SERVICE: u8 = 0b0000_1000;
/// Request/reply flag: a trace block (trace id, traversal nanoseconds,
/// verification nanoseconds — three varints) ends the frame.
const FLAG_HAS_TRACE: u8 = 0b0001_0000;
/// Request/reply flag: a pipelining correlation id (one varint) ends the
/// frame.  The server echoes it verbatim, so a client with several frames
/// in flight on one connection can match each reply to its request.
const FLAG_HAS_CORRELATION: u8 = 0b0010_0000;

/// Upper bound on one frame body; anything larger is a corrupt length
/// prefix, not a real request.  Public so out-of-crate transports apply the
/// same sanity bound before buffering a frame.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// What a transport call brings back: the reply message, the exact protocol
/// byte counts of the exchange (so callers never re-encode messages just to
/// account them — the TCP transport reads the sizes off the frames it
/// already moved), plus the off-wire statistics the source produced while
/// serving it (when requested and when the request kind has any).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportReply {
    /// The source's reply message.
    pub message: Message,
    /// Wire size of the request message, in bytes.
    pub request_bytes: usize,
    /// Wire size of the reply message, in bytes.
    pub reply_bytes: usize,
    /// Local-search statistics (query requests only).
    pub search: Option<SearchStats>,
    /// Index-maintenance statistics (maintenance requests only).
    pub maintenance: Option<MaintenanceStats>,
    /// Source-measured wall-clock service time of this request — the part of
    /// the call's latency that is *not* transport overhead.  `None` unless
    /// statistics were requested.
    pub service: Option<Duration>,
    /// The source-side trace echo.  `None` unless the call was traced
    /// ([`CallOptions::traced`]).
    pub trace: Option<SourceTrace>,
}

/// How a transport call should be instrumented: whether the source's
/// off-wire statistics (and service time) ride back with the reply, and
/// whether the call carries a center-assigned trace id for the source to
/// echo together with its traversal/verification phase split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallOptions {
    /// Ask the source to append its search/maintenance statistics and its
    /// service time to the reply.
    pub want_stats: bool,
    /// Center-assigned trace id to propagate on the request frame.
    pub trace: Option<u64>,
}

impl CallOptions {
    /// Options with only the statistics opt-in set.
    pub fn stats(want_stats: bool) -> Self {
        Self {
            want_stats,
            trace: None,
        }
    }

    /// Attaches a center-assigned trace id to the call.
    pub fn traced(mut self, trace_id: u64) -> Self {
        self.trace = Some(trace_id);
        self
    }
}

/// The source-side half of a distributed trace: the trace id the center
/// assigned (echoed by the source, proving correlation across the wire) and
/// the traversal/verification split the source measured while serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTrace {
    /// The center-assigned trace id this reply belongs to.
    pub trace_id: u64,
    /// Traversal vs. verification time observed while serving the request.
    pub phases: PhaseTimings,
}

/// What [`DataSource::serve`] produces: the reply plus whichever statistics
/// block the request kind has.  Shared by every server implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedReply {
    /// The reply message to put on the wire.
    pub message: Message,
    /// Search statistics, for query requests.
    pub search: Option<SearchStats>,
    /// Maintenance statistics, for applied maintenance batches.
    pub maintenance: Option<MaintenanceStats>,
    /// Source-measured service time of the request (set by
    /// [`DataSource::serve`]/[`DataSource::serve_readonly`]).
    pub service: Option<Duration>,
    /// Traversal vs. verification split observed while serving.
    pub phases: PhaseTimings,
    /// Trace id to echo on the reply frame.  The *serving transport* sets
    /// this from the request frame; the source itself never sees trace ids.
    pub trace_id: Option<u64>,
    /// Pipelining correlation id to echo on the reply frame — frame
    /// plumbing exactly like `trace_id`, set by the serving transport.
    pub correlation_id: Option<u64>,
}

impl ServedReply {
    /// A reply with no statistics (errors, summary polls).
    pub fn plain(message: Message) -> Self {
        Self {
            message,
            search: None,
            maintenance: None,
            service: None,
            phases: PhaseTimings::default(),
            trace_id: None,
            correlation_id: None,
        }
    }

    /// A query reply with its search statistics.
    pub fn search(message: Message, stats: SearchStats) -> Self {
        Self {
            search: Some(stats),
            ..Self::plain(message)
        }
    }

    /// A maintenance acknowledgement with its maintenance statistics.
    pub fn maintenance(message: Message, stats: MaintenanceStats) -> Self {
        Self {
            maintenance: Some(stats),
            ..Self::plain(message)
        }
    }

    /// Attaches the source-measured service time and phase split.
    pub fn with_timing(mut self, service: Duration, phases: PhaseTimings) -> Self {
        self.service = Some(service);
        self.phases = phases;
        self
    }

    /// Attaches a trace id to echo on the reply frame.
    pub fn traced(mut self, trace_id: Option<u64>) -> Self {
        self.trace_id = trace_id;
        self
    }

    /// Attaches a pipelining correlation id to echo on the reply frame.
    pub fn correlated(mut self, correlation_id: Option<u64>) -> Self {
        self.correlation_id = correlation_id;
        self
    }

    fn into_reply(self, opts: CallOptions, request_bytes: usize) -> TransportReply {
        let reply_bytes = self.message.wire_size();
        TransportReply {
            message: self.message,
            request_bytes,
            reply_bytes,
            search: self.search.filter(|_| opts.want_stats),
            maintenance: self.maintenance.filter(|_| opts.want_stats),
            service: self.service.filter(|_| opts.want_stats),
            trace: opts.trace.map(|trace_id| SourceTrace {
                trace_id,
                phases: self.phases,
            }),
        }
    }
}

/// Delivery of one request to one data source.
///
/// Implementations must be callable from many engine worker threads at once
/// (`Sync` is a supertrait); queries take `&self`.
pub trait SourceTransport: fmt::Debug + Sync {
    /// The sources reachable through this transport, ascending by id.
    fn source_ids(&self) -> Vec<SourceId>;

    /// Sends `request` to `source` and waits for the reply, instrumented as
    /// `opts` asks: statistics/service-time opt-in and an optional trace id
    /// for the source to echo.  None of it ever changes the counted protocol
    /// bytes.
    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError>;

    /// Sends `request` to `source` and waits for the reply.  With
    /// `want_stats`, the source's off-wire statistics ride back alongside
    /// the reply (never changing the counted protocol bytes).
    fn call(
        &self,
        source: SourceId,
        request: &Message,
        want_stats: bool,
    ) -> Result<TransportReply, TransportError> {
        self.call_with(source, request, CallOptions::stats(want_stats))
    }
}

/// The in-process transport: sources are a borrowed slice, a call is a
/// function call.  This is the deployment every benchmark and test uses by
/// default, and it is `Copy` — the engine carries it by value.
///
/// Mutating maintenance batches are refused with
/// [`TransportError::ExclusiveRequired`]; route them through
/// [`ExclusiveTransport`] (what
/// [`MultiSourceFramework::apply_updates`](crate::MultiSourceFramework::apply_updates)
/// does internally).
#[derive(Debug, Clone, Copy)]
pub struct InProcessTransport<'a> {
    sources: &'a [DataSource],
}

impl<'a> InProcessTransport<'a> {
    /// A transport over the given sources.
    pub fn new(sources: &'a [DataSource]) -> Self {
        Self { sources }
    }

    fn find(&self, source: SourceId) -> Result<&'a DataSource, TransportError> {
        self.sources
            .iter()
            .find(|s| s.id == source)
            .ok_or(TransportError::UnknownSource(source))
    }
}

impl SourceTransport for InProcessTransport<'_> {
    fn source_ids(&self) -> Vec<SourceId> {
        let mut ids: Vec<SourceId> = self.sources.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }

    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        let src = self.find(source)?;
        match request {
            // A mutating batch cannot be applied through a shared borrow;
            // fail loudly instead of answering with a protocol error, so
            // the caller reaches for `ExclusiveTransport`.
            Message::ApplyUpdates { ops } if !ops.is_empty() => {
                Err(TransportError::ExclusiveRequired)
            }
            other => Ok(src
                .serve_readonly(other)
                .into_reply(opts, request.wire_size())),
        }
    }
}

/// The exclusive in-process transport: full protocol including mutating
/// maintenance, over `&mut` sources behind a mutex (the [`SourceTransport`]
/// contract takes `&self`).  Built transiently by the framework's
/// maintenance path; the mutex is uncontended there.
pub struct ExclusiveTransport<'a> {
    sources: Mutex<&'a mut Vec<DataSource>>,
}

impl fmt::Debug for ExclusiveTransport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExclusiveTransport").finish_non_exhaustive()
    }
}

impl<'a> ExclusiveTransport<'a> {
    /// A transport with exclusive access to the sources.
    pub fn new(sources: &'a mut Vec<DataSource>) -> Self {
        Self {
            sources: Mutex::new(sources),
        }
    }
}

impl SourceTransport for ExclusiveTransport<'_> {
    fn source_ids(&self) -> Vec<SourceId> {
        let guard = match self.sources.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut ids: Vec<SourceId> = guard.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }

    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        let mut guard = match self.sources.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let src = guard
            .iter_mut()
            .find(|s| s.id == source)
            .ok_or(TransportError::UnknownSource(source))?;
        Ok(src.serve(request).into_reply(opts, request.wire_size()))
    }
}

/// The TCP federation transport: every source is an independent process (or
/// thread) listening on its own socket, and a call is one framed
/// request/reply exchange on a fresh connection.
///
/// Connections are per-call on purpose: the engine's worker threads each
/// open their own sockets, so no pooling, no locking, and a crashed source
/// affects exactly the calls addressed to it.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    endpoints: BTreeMap<SourceId, String>,
    timeout: Option<Duration>,
}

impl TcpTransport {
    /// A transport over `(source id, "host:port")` endpoints.
    pub fn new(endpoints: impl IntoIterator<Item = (SourceId, String)>) -> Self {
        Self {
            endpoints: endpoints.into_iter().collect(),
            timeout: Some(Duration::from_secs(30)),
        }
    }

    /// Overrides the per-call read/write timeout (`None` blocks forever).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// The registered endpoints.
    pub fn endpoints(&self) -> &BTreeMap<SourceId, String> {
        &self.endpoints
    }
}

impl SourceTransport for TcpTransport {
    fn source_ids(&self) -> Vec<SourceId> {
        self.endpoints.keys().copied().collect()
    }

    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        let addr = self
            .endpoints
            .get(&source)
            .ok_or(TransportError::UnknownSource(source))?;
        let io_err = |stage: &str, e: std::io::Error| {
            TransportError::Io(format!("{stage} {addr} (source {source}): {e}"))
        };
        let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_read_timeout(self.timeout)
            .and_then(|()| stream.set_write_timeout(self.timeout))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| io_err("configure", e))?;
        // The request frame carries the trace id (zeroed phases) so the
        // source's reply can echo it — the id rides the frame, not the
        // message, keeping the counted protocol bytes trace-invariant.
        let request_bytes = write_frame(
            &mut stream,
            &ServedReply::plain(request.clone()).traced(opts.trace),
            opts.want_stats,
        )
        .map_err(|e| io_err("send to", e))?;
        let frame = read_frame(&mut stream).map_err(|e| match e {
            FrameError::Io(e) => io_err("receive from", e),
            FrameError::Wire(w) => TransportError::Wire(w),
        })?;
        Ok(TransportReply {
            message: frame.message,
            request_bytes,
            reply_bytes: frame.message_bytes,
            search: frame.search,
            maintenance: frame.maintenance,
            service: frame.service,
            trace: frame.trace,
        })
    }
}

/// One decoded frame.  Public so out-of-crate transports (the pooled,
/// pipelined client in `crates/net`) can speak the exact same frames as
/// [`TcpTransport`] and [`serve_connection`].
#[derive(Debug)]
pub struct DecodedFrame {
    /// Request flag: the peer asked for statistics on the reply.
    pub want_stats: bool,
    /// The framed message.
    pub message: Message,
    /// Wire size of `message` (the frame's inner length prefix).
    pub message_bytes: usize,
    /// Search statistics block, when present.
    pub search: Option<SearchStats>,
    /// Maintenance statistics block, when present.
    pub maintenance: Option<MaintenanceStats>,
    /// Source-reported service time (reply frames only).
    pub service: Option<Duration>,
    /// Trace block: the trace id plus the phase split (zeroed on requests).
    pub trace: Option<SourceTrace>,
    /// Pipelining correlation id, echoed verbatim by the server.
    pub correlation_id: Option<u64>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed (or hit EOF mid-frame).
    Io(std::io::Error),
    /// The frame parsed but its contents did not.
    Wire(WireError),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Writes one frame: length prefix, flags, the message, then any statistics
/// blocks.  `want_stats` only makes sense on request frames; reply frames
/// derive their flags from which statistics are present.  Returns the wire
/// size of the message itself (the protocol bytes `CommStats` counts).
///
/// Public for out-of-crate transports; `w` can be a plain `Vec<u8>` when
/// the caller manages its own (e.g. nonblocking) socket writes.
pub fn write_frame(
    w: &mut impl Write,
    reply: &ServedReply,
    want_stats: bool,
) -> std::io::Result<usize> {
    let msg = reply.message.encode();
    let mut body = BytesMut::new();
    let mut flags = 0u8;
    if want_stats {
        flags |= FLAG_WANT_STATS;
    }
    if reply.search.is_some() {
        flags |= FLAG_HAS_SEARCH;
    }
    if reply.maintenance.is_some() {
        flags |= FLAG_HAS_MAINTENANCE;
    }
    if reply.service.is_some() {
        flags |= FLAG_HAS_SERVICE;
    }
    if reply.trace_id.is_some() {
        flags |= FLAG_HAS_TRACE;
    }
    if reply.correlation_id.is_some() {
        flags |= FLAG_HAS_CORRELATION;
    }
    body.put_u8(flags);
    put_varint(&mut body, msg.len() as u64);
    body.put_slice(&msg);
    if let Some(stats) = &reply.search {
        for v in stats.to_array() {
            put_varint(&mut body, v);
        }
    }
    if let Some(stats) = &reply.maintenance {
        for v in stats.to_array() {
            put_varint(&mut body, v);
        }
    }
    if let Some(service) = reply.service {
        put_varint(&mut body, service.as_nanos() as u64);
    }
    if let Some(trace_id) = reply.trace_id {
        put_varint(&mut body, trace_id);
        put_varint(&mut body, reply.phases.traversal.as_nanos() as u64);
        put_varint(&mut body, reply.phases.verify.as_nanos() as u64);
    }
    if let Some(correlation_id) = reply.correlation_id {
        put_varint(&mut body, correlation_id);
    }
    let body = body.freeze();
    if body.len() > MAX_FRAME_BYTES {
        // The read side rejects oversized frames; enforcing the same bound
        // here keeps the failure on the sender (and keeps the `u32` length
        // prefix from ever wrapping).
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame body of {} bytes exceeds the protocol limit",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(msg.len())
}

/// Reads one frame.  Public for out-of-crate transports; `r` can be a byte
/// slice when the caller accumulates nonblocking reads in its own buffer.
pub fn read_frame(r: &mut impl Read) -> Result<DecodedFrame, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(WireError::Truncated("frame flags").into());
    }
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized("frame body").into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut body = Bytes::from(body);
    let flags = body.get_u8();
    let msg_len = get_varint(&mut body, "frame message length")? as usize;
    if body.remaining() < msg_len {
        return Err(WireError::Truncated("frame message").into());
    }
    let message = Message::decode(body.split_to(msg_len))?;
    let message_bytes = msg_len;
    let search = if flags & FLAG_HAS_SEARCH != 0 {
        let mut a = [0u64; 6];
        for slot in &mut a {
            *slot = get_varint(&mut body, "search stats")?;
        }
        Some(SearchStats::from_array(a))
    } else {
        None
    };
    let maintenance = if flags & FLAG_HAS_MAINTENANCE != 0 {
        let mut a = [0u64; 9];
        for slot in &mut a {
            *slot = get_varint(&mut body, "maintenance stats")?;
        }
        Some(MaintenanceStats::from_array(a))
    } else {
        None
    };
    let service = if flags & FLAG_HAS_SERVICE != 0 {
        Some(Duration::from_nanos(get_varint(&mut body, "service time")?))
    } else {
        None
    };
    let trace = if flags & FLAG_HAS_TRACE != 0 {
        let trace_id = get_varint(&mut body, "trace id")?;
        let traversal = Duration::from_nanos(get_varint(&mut body, "trace traversal")?);
        let verify = Duration::from_nanos(get_varint(&mut body, "trace verify")?);
        Some(SourceTrace {
            trace_id,
            phases: PhaseTimings { traversal, verify },
        })
    } else {
        None
    };
    let correlation_id = if flags & FLAG_HAS_CORRELATION != 0 {
        Some(get_varint(&mut body, "correlation id")?)
    } else {
        None
    };
    Ok(DecodedFrame {
        want_stats: flags & FLAG_WANT_STATS != 0,
        message,
        message_bytes,
        search,
        maintenance,
        service,
        trace,
        correlation_id,
    })
}

/// Cooperative shutdown for [`serve_source_until`]: triggering the signal
/// stops the accept loop and *drains* the server — every connection finishes
/// the frame it is currently serving (request read, reply written) and then
/// closes between frames, instead of dying mid-frame.  Cloning shares the
/// flag, so one signal can fan out to the accept loop, its connection
/// handlers, and whatever (test, stdin watcher, signal handler) pulls the
/// trigger.
#[derive(Clone, Debug, Default)]
pub struct ShutdownSignal {
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown.  Idempotent; never blocks.
    pub fn trigger(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// How often a drained server polls for shutdown: the accept loop between
/// (non-blocking) accepts, and each idle connection between frames.
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);

/// Upper bound on the drain after shutdown is triggered: connections that
/// have not finished their in-flight frame by then are abandoned to their
/// detached threads.  Generous — a frame is one request/reply exchange, not
/// a session.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// A data source serving the framed TCP protocol from this process — the
/// in-thread twin of the `source-server` binary, used by benches, tests and
/// the federation example to stand up a real-socket federation without
/// spawning processes.
///
/// One thread per accepted connection; queries take a read lock, mutating
/// maintenance a write lock, mirroring the `&self`/`&mut self` split of
/// [`DataSource`].  Threads are detached; the server lives until the process
/// exits, the listener is dropped by the OS, or [`shutdown`](Self::shutdown)
/// drains it.
#[derive(Debug)]
pub struct SourceServer {
    id: SourceId,
    addr: std::net::SocketAddr,
    shutdown: ShutdownSignal,
    serve_thread: Option<std::thread::JoinHandle<()>>,
}

impl SourceServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `source` on a background thread.
    pub fn spawn(addr: &str, source: DataSource) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let id = source.id;
        let shutdown = ShutdownSignal::new();
        let signal = shutdown.clone();
        let serve_thread = std::thread::spawn(move || serve_source_until(listener, source, signal));
        Ok(Self {
            id,
            addr: local,
            shutdown,
            serve_thread: Some(serve_thread),
        })
    }

    /// The served source's id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The `(id, endpoint)` pair [`TcpTransport::new`] consumes.
    pub fn endpoint(&self) -> (SourceId, String) {
        (self.id, self.addr.to_string())
    }

    /// Gracefully shuts the server down: stops accepting, lets every
    /// connection finish its in-flight frame, and joins the serve thread.
    /// Returns once the server has drained (or the drain grace expired).
    pub fn shutdown(mut self) {
        self.shutdown.trigger();
        if let Some(handle) = self.serve_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Accept loop shared by [`SourceServer`] and the `source-server` binary:
/// serves framed requests against `source` until the listener fails.  Runs
/// forever — use [`serve_source_until`] for a drainable server.
///
/// Connections are handled on their own threads; the source sits behind a
/// read-write lock so concurrent queries proceed in parallel while a
/// maintenance batch gets exclusive access.
pub fn serve_source(listener: TcpListener, source: DataSource) {
    serve_source_until(listener, source, ShutdownSignal::new());
}

/// [`serve_source`] with graceful shutdown: when `shutdown` triggers, the
/// loop stops accepting, every open connection finishes the frame it is
/// serving and closes between frames, and the call returns once all
/// connections have drained (bounded by a grace period).
pub fn serve_source_until(listener: TcpListener, source: DataSource, shutdown: ShutdownSignal) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let source = std::sync::Arc::new(std::sync::RwLock::new(source));
    let open_connections = std::sync::Arc::new(AtomicUsize::new(0));
    // Non-blocking accepts so the loop observes the shutdown signal between
    // connections instead of parking in `accept` forever.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("source server: set_nonblocking failed: {e}");
        return;
    }
    // Transient accept failures (ECONNABORTED, fd exhaustion under load)
    // must not shut the source down; only a persistently failing listener
    // ends the loop.
    let mut consecutive_failures = 0u32;
    while !shutdown.is_triggered() {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(SHUTDOWN_POLL);
                continue;
            }
            Err(e) => {
                consecutive_failures += 1;
                eprintln!("source {}: accept failed: {e}", {
                    let guard = match source.read() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.id
                });
                if consecutive_failures >= 100 {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        consecutive_failures = 0;
        let source = std::sync::Arc::clone(&source);
        let signal = shutdown.clone();
        let open = std::sync::Arc::clone(&open_connections);
        open.fetch_add(1, Ordering::AcqRel);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &source, &signal);
            open.fetch_sub(1, Ordering::AcqRel);
        });
    }
    // Drain: connections notice the signal between frames (via their idle
    // poll) and close themselves; wait for them, but not forever.
    let drain_started = std::time::Instant::now();
    while open_connections.load(Ordering::Acquire) > 0 && drain_started.elapsed() < DRAIN_GRACE {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Serves framed request/reply exchanges on one connection until the peer
/// hangs up, sends garbage, or `shutdown` triggers between frames.
///
/// Shutdown never interrupts an exchange: the connection polls for the
/// signal only while *waiting* for the next frame (a short-timeout `peek`
/// that consumes nothing), and a frame whose first byte has arrived is
/// served and answered before the signal is honoured.
fn serve_connection(
    mut stream: TcpStream,
    source: &std::sync::RwLock<DataSource>,
    shutdown: &ShutdownSignal,
) -> Result<(), FrameError> {
    let _ = stream.set_nodelay(true);
    loop {
        // Idle wait: peek with a timeout so the shutdown signal is observed
        // between frames without ever consuming (and on timeout losing)
        // frame bytes.
        stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => return Ok(()), // clean disconnect between frames
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.is_triggered() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
        // A frame has started: read it to completion without a timeout (a
        // slow peer mid-frame is not an idle connection).
        stream.set_read_timeout(None)?;
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Clean disconnect between frames.
            Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(())
            }
            Err(other) => return Err(other),
        };
        let needs_exclusive =
            matches!(&frame.message, Message::ApplyUpdates { ops } if !ops.is_empty());
        let served = if needs_exclusive {
            match source.write() {
                Ok(mut guard) => guard.serve(&frame.message),
                Err(poisoned) => poisoned.into_inner().serve(&frame.message),
            }
        } else {
            // Read path: summary polls and queries never mutate, so they
            // share the read lock (and the exact dispatch the in-process
            // transport uses).
            let guard = match source.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.serve_readonly(&frame.message)
        };
        let mut served = if frame.want_stats {
            served
        } else {
            // Stats opt-out drops every statistics block — including the
            // service time, which rides "next to the stats".
            let phases = served.phases;
            ServedReply {
                phases,
                ..ServedReply::plain(served.message)
            }
        };
        // Echo the center-assigned trace id (if any) with the measured
        // phase split, and the pipelining correlation id verbatim; the
        // source itself never sees either.
        served.trace_id = frame.trace.map(|t| t.trace_id);
        served.correlation_id = frame.correlation_id;
        write_frame(&mut stream, &served, false)?;
    }
}

/// Scrapes a source's metrics registry over any transport: sends a
/// [`Message::MetricsQuery`] and unwraps the [`Message::MetricsSnapshot`]
/// reply.
pub fn scrape_metrics(
    transport: &dyn SourceTransport,
    source: SourceId,
) -> Result<obs::MetricsSnapshot, TransportError> {
    let reply = transport.call(source, &Message::MetricsQuery, false)?;
    match reply.message {
        Message::MetricsSnapshot { snapshot, .. } => Ok(snapshot),
        Message::Error { code, detail } => Err(TransportError::Remote { code, detail }),
        _ => Err(TransportError::UnexpectedReply("MetricsSnapshot")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use spatial::{Grid, Point, SpatialDataset};

    fn tiny_source(id: SourceId) -> DataSource {
        let grid = Grid::global(10).unwrap();
        let datasets: Vec<SpatialDataset> = (0..6)
            .map(|i| {
                SpatialDataset::new(
                    i,
                    (0..5)
                        .map(|j| Point::new(10.0 + i as f64 * 0.2 + j as f64 * 0.02, 50.0))
                        .collect(),
                )
            })
            .collect();
        DataSource::build(
            id,
            format!("s{id}"),
            grid,
            &datasets,
            DitsLocalConfig::default(),
        )
    }

    #[test]
    fn frame_roundtrip_with_and_without_stats() {
        let msg = Message::OverlapQuery {
            query: spatial::CellSet::from_cells([1u64, 2, 3]),
            k: 5,
        };
        for (search, maintenance) in [
            (None, None),
            (Some(SearchStats::from_array([1, 2, 3, 4, 5, 6])), None),
            (
                None,
                Some(MaintenanceStats::from_array([1, 2, 3, 4, 5, 6, 7, 8, 9])),
            ),
        ] {
            let served = ServedReply {
                search,
                maintenance,
                ..ServedReply::plain(msg.clone())
            };
            let mut buf = Vec::new();
            write_frame(&mut buf, &served, true).unwrap();
            let frame = match read_frame(&mut &buf[..]) {
                Ok(f) => f,
                Err(FrameError::Io(e)) => panic!("io: {e}"),
                Err(FrameError::Wire(e)) => panic!("wire: {e}"),
            };
            assert!(frame.want_stats);
            assert_eq!(frame.message, msg);
            assert_eq!(frame.search, served.search);
            assert_eq!(frame.maintenance, served.maintenance);
            assert_eq!(frame.service, None);
            assert_eq!(frame.trace, None);
            assert_eq!(frame.correlation_id, None);
        }
    }

    #[test]
    fn frame_roundtrip_with_correlation_id() {
        let msg = Message::OverlapQuery {
            query: spatial::CellSet::from_cells([4u64, 5]),
            k: 2,
        };
        // The correlation id composes with every other frame block and
        // never changes the counted message bytes.
        let plain = ServedReply::plain(msg.clone()).traced(Some(11));
        let correlated = plain.clone().correlated(Some(u64::MAX));
        let mut plain_buf = Vec::new();
        let plain_bytes = write_frame(&mut plain_buf, &plain, true).unwrap();
        let mut buf = Vec::new();
        let corr_bytes = write_frame(&mut buf, &correlated, true).unwrap();
        assert_eq!(plain_bytes, corr_bytes);
        let frame = match read_frame(&mut &buf[..]) {
            Ok(f) => f,
            Err(FrameError::Io(e)) => panic!("io: {e}"),
            Err(FrameError::Wire(e)) => panic!("wire: {e}"),
        };
        assert_eq!(frame.message, msg);
        assert_eq!(frame.correlation_id, Some(u64::MAX));
        assert_eq!(frame.trace.map(|t| t.trace_id), Some(11));
        // Every truncation of the correlated frame still fails closed.
        for cut in 0..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn frame_roundtrip_with_service_and_trace() {
        let msg = Message::OverlapReply {
            source: 2,
            results: vec![],
        };
        let phases = PhaseTimings {
            traversal: Duration::from_nanos(1_234),
            verify: Duration::from_nanos(987_654_321),
        };
        let served = ServedReply::search(msg.clone(), SearchStats::from_array([1, 2, 3, 4, 5, 6]))
            .with_timing(Duration::from_micros(42), phases)
            .traced(Some(7_000_000_123));
        let mut buf = Vec::new();
        write_frame(&mut buf, &served, false).unwrap();
        let frame = match read_frame(&mut &buf[..]) {
            Ok(f) => f,
            Err(FrameError::Io(e)) => panic!("io: {e}"),
            Err(FrameError::Wire(e)) => panic!("wire: {e}"),
        };
        assert_eq!(frame.message, msg);
        assert_eq!(frame.service, Some(Duration::from_micros(42)));
        assert_eq!(
            frame.trace,
            Some(SourceTrace {
                trace_id: 7_000_000_123,
                phases,
            })
        );
        // Every truncation of the extended frame still fails closed.
        for cut in 0..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn truncated_frames_are_io_or_wire_errors_never_panics() {
        let served = ServedReply::search(
            Message::OverlapReply {
                source: 1,
                results: vec![],
            },
            SearchStats::from_array([9, 8, 7, 6, 5, 4]),
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &served, false).unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn in_process_transport_serves_queries_and_polls() {
        let sources = vec![tiny_source(0), tiny_source(3)];
        let t = InProcessTransport::new(&sources);
        assert_eq!(t.source_ids(), vec![0, 3]);
        let query = Message::KnnQuery {
            query: sources[0].grid_query(&SpatialDataset::new(99, vec![Point::new(10.0, 50.0)])),
            k: 2,
        };
        let reply = t.call(3, &query, true).unwrap();
        assert!(matches!(reply.message, Message::KnnReply { source: 3, .. }));
        assert!(reply.search.is_some());
        // Stats opt-out leaves the message identical but drops the block.
        let no_stats = t.call(3, &query, false).unwrap();
        assert_eq!(no_stats.message, reply.message);
        assert!(no_stats.search.is_none());
        // Summary poll is read-only and allowed.
        let poll = t
            .call(0, &Message::ApplyUpdates { ops: vec![] }, false)
            .unwrap();
        assert!(matches!(
            poll.message,
            Message::SummaryRefresh {
                dataset_count: 6,
                ..
            }
        ));
        // Mutation needs the exclusive transport.
        let err = t
            .call(
                0,
                &Message::ApplyUpdates {
                    ops: vec![crate::message::UpdateOp::Delete(0)],
                },
                false,
            )
            .unwrap_err();
        assert_eq!(err, TransportError::ExclusiveRequired);
        assert_eq!(
            t.call(9, &query, false).unwrap_err(),
            TransportError::UnknownSource(9)
        );
    }

    #[test]
    fn exclusive_transport_applies_maintenance() {
        let mut sources = vec![tiny_source(0)];
        let t = ExclusiveTransport::new(&mut sources);
        let reply = t
            .call(
                0,
                &Message::ApplyUpdates {
                    ops: vec![crate::message::UpdateOp::Delete(2)],
                },
                true,
            )
            .unwrap();
        assert!(matches!(
            reply.message,
            Message::SummaryRefresh {
                dataset_count: 5,
                applied: 1,
                ..
            }
        ));
        assert_eq!(reply.maintenance.map(|m| m.deletes), Some(1));
        assert_eq!(sources[0].dataset_count(), 5);
    }

    #[test]
    fn tcp_roundtrip_matches_in_process() {
        let sources = vec![tiny_source(0)];
        let server = SourceServer::spawn("127.0.0.1:0", sources[0].clone()).unwrap();
        let tcp = TcpTransport::new([server.endpoint()]);
        let in_process = InProcessTransport::new(&sources);
        let query = Message::OverlapQuery {
            query: sources[0].grid_query(&SpatialDataset::new(99, vec![Point::new(10.2, 50.0)])),
            k: 3,
        };
        let a = tcp.call(0, &query, true).unwrap();
        let b = in_process.call(0, &query, true).unwrap();
        // Everything except the measured timings must be identical across
        // transports; the service time is wall-clock and cannot be equal.
        assert_eq!(a.message, b.message);
        assert_eq!(a.request_bytes, b.request_bytes);
        assert_eq!(a.reply_bytes, b.reply_bytes);
        assert_eq!(a.search, b.search);
        assert_eq!(a.maintenance, b.maintenance);
        assert!(a.service.is_some() && b.service.is_some());
        assert_eq!(a.trace, None);
        assert_eq!(b.trace, None);
        assert_eq!(
            tcp.call(7, &query, false).unwrap_err(),
            TransportError::UnknownSource(7)
        );
    }

    #[test]
    fn traced_tcp_call_echoes_the_trace_id() {
        let sources = [tiny_source(0)];
        let server = SourceServer::spawn("127.0.0.1:0", sources[0].clone()).unwrap();
        let tcp = TcpTransport::new([server.endpoint()]);
        let query = Message::OverlapQuery {
            query: sources[0].grid_query(&SpatialDataset::new(99, vec![Point::new(10.2, 50.0)])),
            k: 3,
        };
        let traced = tcp
            .call_with(0, &query, CallOptions::stats(true).traced(424_242))
            .unwrap();
        let trace = traced.trace.expect("traced call returns a trace echo");
        assert_eq!(trace.trace_id, 424_242);
        // The overlap query ran a real search, so the source observed a
        // nonzero traversal+verification split.
        assert!(trace.phases.traversal + trace.phases.verify > Duration::ZERO);
        // Tracing never changes the counted protocol bytes.
        let untraced = tcp.call(0, &query, true).unwrap();
        assert_eq!(traced.request_bytes, untraced.request_bytes);
        assert_eq!(traced.reply_bytes, untraced.reply_bytes);
        assert_eq!(untraced.trace, None);
    }

    #[test]
    fn metrics_scrape_over_both_transports() {
        let sources = vec![tiny_source(0)];
        // Serve a query first so the registry has something to report.
        let in_process = InProcessTransport::new(&sources);
        let query = Message::OverlapQuery {
            query: sources[0].grid_query(&SpatialDataset::new(99, vec![Point::new(10.2, 50.0)])),
            k: 3,
        };
        in_process.call(0, &query, true).unwrap();
        let local = scrape_metrics(&in_process, 0).unwrap();
        let requests = local
            .find("source_requests_total", &[("kind", "overlap")])
            .expect("overlap request counter registered");
        assert!(matches!(requests.value, obs::MetricValue::Counter(n) if n >= 1));

        // The TCP server clones the source, which shares the same registry,
        // so the scrape sees the query served above plus anything since.
        let server = SourceServer::spawn("127.0.0.1:0", sources[0].clone()).unwrap();
        let tcp = TcpTransport::new([server.endpoint()]);
        let remote = scrape_metrics(&tcp, 0).unwrap();
        assert!(remote
            .find("source_requests_total", &[("kind", "overlap")])
            .is_some());
        assert!(remote.find("source_service_nanos", &[]).is_some_and(
            |s| matches!(s.value, obs::MetricValue::Histogram { count, .. } if count >= 1)
        ));
    }
}
