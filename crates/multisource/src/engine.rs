//! The batched, parallel query engine — the single execution path for every
//! multi-source search in the repository.
//!
//! [`QueryEngine`] owns query execution end to end.  It accepts a
//! [`SearchRequest`] (or a typed batch through `run_ojsp` / `run_cjsp` /
//! `run_knn`) and fans it out as one task per `(query, candidate source)`
//! pair — one source is one shard, matching the deployment of the paper's
//! Fig. 3 where every data source runs its local search concurrently.
//! Tasks are executed by a fixed pool of scoped worker threads; each worker
//! keeps its *own* [`CommStats`] / [`SearchStats`] / per-source timing
//! accumulators (no shared counters, no locks on the hot path) and the
//! per-worker blocks are merged once at the end, so the reported totals are
//! identical to a sequential run of the same plan.
//!
//! The engine is **transport-agnostic**: it plans entirely from the
//! [`SourceSummary`]s in DITS-G and executes every shard through a
//! [`SourceTransport`] — in-process function calls and framed TCP exchanges
//! run the exact same plan and move the exact same protocol bytes.
//!
//! The engine split is:
//!
//! 1. **Plan** (sequential, cheap): route each query through DITS-G, clip it
//!    per candidate source, and materialise the request messages.
//! 2. **Execute** (parallel): serialise requests, deliver them through the
//!    transport, account bytes — the expensive part, embarrassingly
//!    parallel.
//! 3. **Aggregate**: merge per-source answers into the global top-`k`
//!    (OJSP, kNN) or run the cross-source greedy selection (CJSP, itself
//!    parallelised over the queries of the batch).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use dits::{Neighbor, SearchStats};
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId, SourceId, SpatialDataset};

use crate::api::{
    SearchKind, SearchRequest, SearchResponse, SearchResults, SourceFailure, SourceTiming,
};
use crate::center::{
    AggregatedCoverage, AggregatedKnn, AggregatedOverlap, DataCenter, DistributionStrategy,
    GridCache, QueryCellsCache,
};
use crate::comm::{CommConfig, CommStats};
use crate::error::{SearchError, TransportError};
use crate::message::{CoverageCandidate, Message};
use crate::source::DataSource;
use crate::transport::{CallOptions, InProcessTransport, SourceTransport};

/// How the engine shards a query batch across its sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// One shard task per `(query, source)` pair: every routed query becomes
    /// its own request message.  The historical mode, kept as the parity
    /// oracle the batched mode is tested against.
    #[default]
    PerQuery,
    /// One shard task per *source*, carrying every query of the batch routed
    /// to it.  The source answers the whole batch with a single shared
    /// frontier traversal of its index
    /// ([`overlap_search_batch`](dits::overlap_search_batch) /
    /// [`coverage_search_batch`](dits::coverage_search_batch)), touching each
    /// index node at most once per batch instead of once per query.
    ///
    /// Answers are identical to [`ShardMode::PerQuery`] and the accumulated
    /// [`SearchStats`] are the same per-query sums; only the protocol
    /// framing differs (fewer, larger messages).  kNN requests always run
    /// per query — distance ranking needs the unclipped query and gains
    /// nothing from frontier sharing.
    PerSourceBatch,
}

/// Configuration of the query engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Query-distribution strategy applied when planning.
    pub strategy: DistributionStrategy,
    /// Connectivity threshold δ in cell units (CJSP only).
    pub delta_cells: f64,
    /// Whether sources report their off-wire search statistics (never
    /// changes the counted protocol bytes).
    pub collect_stats: bool,
    /// How the batch is sharded across sources (OJSP/CJSP only).
    pub shard_mode: ShardMode,
    /// Degradation mode: with `true`, a shard whose source is slow or dead
    /// is skipped and reported per source instead of failing the whole
    /// batch — answers are aggregated from the sources that did reply and
    /// the batch never parks behind one bad source.  With `false` (the
    /// default) the first shard error aborts the batch, which is the right
    /// behaviour for parity testing and in-process deployments where a
    /// failure means a bug rather than a network condition.
    pub skip_failed_sources: bool,
    /// Whether runs assemble a structured [`obs::Trace`]: a center-assigned
    /// trace id propagated to every contacted source plus timed spans for
    /// planning, each transport call, the sources' traversal/verification
    /// split and aggregation.  Like the statistics channel, tracing never
    /// changes the counted protocol bytes.
    pub collect_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            strategy: DistributionStrategy::PrunedClipped,
            delta_cells: 10.0,
            collect_stats: true,
            shard_mode: ShardMode::PerQuery,
            skip_failed_sources: false,
            collect_trace: false,
        }
    }
}

/// Result of one batch run: per-query answers plus accumulated costs.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    /// One aggregated answer per query, in query order.
    pub answers: Vec<T>,
    /// Communication statistics accumulated over the whole batch.
    pub comm: CommStats,
    /// Local-search statistics accumulated over every contacted source.
    pub search: SearchStats,
    /// Per-source transport timing, ascending by source id.
    pub per_source: Vec<SourceTiming>,
    /// Sources a degraded run skipped ([`EngineConfig::skip_failed_sources`]),
    /// ascending by source id; always empty for fail-fast runs.
    pub failures: Vec<SourceFailure>,
    /// Wall-clock time spent planning, searching and aggregating.
    pub elapsed: Duration,
    /// The structured trace of the run (`None` unless
    /// [`EngineConfig::collect_trace`] is set).
    pub trace: Option<obs::Trace>,
}

impl<T> BatchOutcome<T> {
    /// Transmission time implied by the accumulated bytes, in milliseconds.
    pub fn transmission_time_ms(&self, config: &CommConfig) -> f64 {
        self.comm.transmission_time_ms(config)
    }
}

/// One planned shard task: a request bound for one source on behalf of one
/// query of the batch.
struct ShardTask {
    query_idx: usize,
    source: SourceId,
    request: Message,
}

/// How the engine reaches its sources: a borrowed transport object, or an
/// in-process transport it carries by value (so
/// [`MultiSourceFramework::engine`](crate::MultiSourceFramework::engine) can
/// hand out engines without a self-referential borrow).
#[derive(Debug, Clone, Copy)]
enum EngineTransport<'a> {
    InProcess(InProcessTransport<'a>),
    Borrowed(&'a dyn SourceTransport),
}

impl<'a> EngineTransport<'a> {
    fn get(&self) -> &dyn SourceTransport {
        match self {
            EngineTransport::InProcess(t) => t,
            EngineTransport::Borrowed(t) => *t,
        }
    }
}

/// The batched, parallel multi-source query engine.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    center: &'a DataCenter,
    transport: EngineTransport<'a>,
    config: EngineConfig,
    slow_log: Option<&'a obs::SlowQueryLog>,
}

impl<'a> QueryEngine<'a> {
    /// Builds an engine over a data center and any transport (TCP
    /// federation, custom transports, …).
    pub fn new(
        center: &'a DataCenter,
        transport: &'a dyn SourceTransport,
        config: EngineConfig,
    ) -> Self {
        Self {
            center,
            transport: EngineTransport::Borrowed(transport),
            config,
            slow_log: None,
        }
    }

    /// Builds an engine over in-process sources (the default deployment of
    /// every benchmark and test).
    pub fn in_process(
        center: &'a DataCenter,
        sources: &'a [DataSource],
        config: EngineConfig,
    ) -> Self {
        Self {
            center,
            transport: EngineTransport::InProcess(InProcessTransport::new(sources)),
            config,
            slow_log: None,
        }
    }

    /// Attaches a slow-query log: every [`Self::run`] whose wall-clock time
    /// reaches the log's threshold is recorded (with its trace id, when the
    /// request was traced).
    pub fn with_slow_log(mut self, log: &'a obs::SlowQueryLog) -> Self {
        self.slow_log = Some(log);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of worker threads a run will actually use.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.config.workers)
    }

    /// The sources this engine can actually deliver to.  Routing intersects
    /// DITS-G candidates with this set, so a stale summary (a source that
    /// left the fleet after the global image was persisted) is skipped
    /// instead of failing every batch with `UnknownSource`.
    fn reachable_sources(&self) -> std::collections::BTreeSet<SourceId> {
        self.transport.get().source_ids().into_iter().collect()
    }

    /// Executes a unified [`SearchRequest`]: applies its option overrides,
    /// dispatches on its [`SearchKind`] and packages the typed answers into
    /// a [`SearchResponse`].
    pub fn run(&self, request: &SearchRequest) -> Result<SearchResponse, SearchError> {
        let mut config = self.config;
        if let Some(workers) = request.requested_workers() {
            config.workers = workers;
        }
        if let Some(strategy) = request.requested_strategy() {
            config.strategy = strategy;
        }
        if let Some(delta) = request.requested_delta_cells() {
            config.delta_cells = delta;
        }
        if let Some(mode) = request.requested_shard_mode() {
            config.shard_mode = mode;
        }
        if let Some(skip) = request.requested_skip_failed_sources() {
            config.skip_failed_sources = skip;
        }
        config.collect_stats = request.wants_stats();
        config.collect_trace = request.wants_trace();
        let engine = Self {
            center: self.center,
            transport: self.transport,
            config,
            slow_log: self.slow_log,
        };
        let k = request.requested_k();
        let (results, kind_name, comm, search, per_source, failures, elapsed, trace) =
            match request.kind() {
                SearchKind::Ojsp => {
                    let out = engine.run_ojsp(request.queries(), k)?;
                    (
                        SearchResults::Overlap(out.answers),
                        "ojsp",
                        out.comm,
                        out.search,
                        out.per_source,
                        out.failures,
                        out.elapsed,
                        out.trace,
                    )
                }
                SearchKind::Cjsp => {
                    let out = engine.run_cjsp(request.queries(), k)?;
                    (
                        SearchResults::Coverage(out.answers),
                        "cjsp",
                        out.comm,
                        out.search,
                        out.per_source,
                        out.failures,
                        out.elapsed,
                        out.trace,
                    )
                }
                SearchKind::Knn => {
                    let out = engine.run_knn(request.queries(), k)?;
                    (
                        SearchResults::Knn(out.answers),
                        "knn",
                        out.comm,
                        out.search,
                        out.per_source,
                        out.failures,
                        out.elapsed,
                        out.trace,
                    )
                }
            };
        if let Some(log) = self.slow_log {
            log.record(kind_name, elapsed, trace.as_ref().map(|t| t.id));
        }
        Ok(SearchResponse {
            results,
            comm,
            search: request.wants_stats().then_some(search),
            per_source,
            failures,
            elapsed,
            trace,
        })
    }

    /// Delivers one request through the transport, accounting bytes, timing
    /// and statistics, and returns the reply message.
    fn exchange(
        &self,
        source: SourceId,
        request: &Message,
        ctx: &mut WorkerCtx,
    ) -> Result<Message, SearchError> {
        let started = Instant::now();
        let opts = CallOptions {
            want_stats: self.config.collect_stats,
            trace: ctx.trace,
        };
        let reply = self.transport.get().call_with(source, request, opts)?;
        let elapsed = started.elapsed();
        // Sizes come from the transport (the TCP path reads them off the
        // frames it already moved), so nothing is re-encoded for accounting.
        ctx.comm.record_request(reply.request_bytes);
        ctx.comm.record_reply(reply.reply_bytes);
        ctx.record_timing(
            source,
            reply.request_bytes + reply.reply_bytes,
            elapsed,
            reply.service.unwrap_or_default(),
        );
        if let Some(stats) = reply.search {
            ctx.search.merge(&stats);
        }
        if ctx.trace.is_some() {
            // Source-side spans carry the source id; the call span is the
            // transport wall-clock around the whole exchange.
            ctx.spans.push(obs::Span {
                name: "call".to_string(),
                source: Some(source),
                elapsed,
            });
            if let Some(service) = reply.service {
                ctx.spans.push(obs::Span {
                    name: "service".to_string(),
                    source: Some(source),
                    elapsed: service,
                });
            }
            // A source's phase spans only count if the reply echoes this
            // run's trace id — a mismatched echo would attribute another
            // request's phases to this trace.
            if let Some(trace) = reply.trace.filter(|t| Some(t.trace_id) == ctx.trace) {
                ctx.spans.push(obs::Span {
                    name: "traversal".to_string(),
                    source: Some(source),
                    elapsed: trace.phases.traversal,
                });
                ctx.spans.push(obs::Span {
                    name: "verify".to_string(),
                    source: Some(source),
                    elapsed: trace.phases.verify,
                });
            }
        }
        match reply.message {
            Message::Error { code, detail } => Err(TransportError::Remote { code, detail }.into()),
            message => Ok(message),
        }
    }

    /// Executes planned shard tasks, honouring the engine's degradation
    /// mode.  Fail-fast (the default) aborts the batch on the first shard
    /// error; skip-and-report ([`EngineConfig::skip_failed_sources`]) keeps
    /// going, drops the failed shards' contributions (`None` slots) and
    /// records one [`SourceFailure`] per failed source — the first error in
    /// task order, so the report is deterministic for a deterministic plan.
    ///
    /// A failed exchange accounts no [`CommStats`] bytes or requests (the
    /// transport surfaces the error before anything is recorded), so the
    /// merged counters describe exactly the completed shards.
    fn execute_shards<T, R, F>(
        &self,
        tasks: &[T],
        trace: Option<u64>,
        source_of: impl Fn(&T) -> SourceId,
        f: F,
    ) -> Result<ShardOutcome<R>, SearchError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut WorkerCtx) -> Result<R, SearchError> + Sync,
    {
        if !self.config.skip_failed_sources {
            let (results, ctx) = run_parallel(tasks, self.config.workers, trace, f)?;
            return Ok((results.into_iter().map(Some).collect(), ctx, Vec::new()));
        }
        let (per_task, ctx) = run_parallel_core(tasks, self.config.workers, trace, false, f)?;
        let mut failures: Vec<SourceFailure> = Vec::new();
        let results = tasks
            .iter()
            .zip(per_task)
            .map(|(task, result)| match result {
                Ok(r) => Some(r),
                Err(error) => {
                    let source = source_of(task);
                    if !failures.iter().any(|f| f.source == source) {
                        failures.push(SourceFailure { source, error });
                    }
                    None
                }
            })
            .collect();
        failures.sort_by_key(|f| f.source);
        Ok((results, ctx, failures))
    }

    /// Runs a batch of overlap joinable searches.
    pub fn run_ojsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> Result<BatchOutcome<AggregatedOverlap>, SearchError> {
        let start = Instant::now();
        let trace_id = self.config.collect_trace.then(obs::next_trace_id);

        // Plan: route and clip every query, materialise the wire requests.
        let mut comm = CommStats::new();
        let mut grids = GridCache::new();
        let reachable = self.reachable_sources();
        let mut tasks: Vec<ShardTask> = Vec::new();
        for (query_idx, query) in queries.iter().enumerate() {
            let targets = retain_reachable(
                self.center.route(query, 0.0, self.config.strategy),
                &reachable,
            );
            comm.sources_contacted += targets.len();
            let mut query_cells = QueryCellsCache::new();
            for summary in targets {
                let grid = grids.get(summary.resolution)?;
                let cells = query_cells.get(grid, &query.points);
                let cells =
                    DataCenter::clip_for_source(&summary, grid, cells, 0.0, self.config.strategy);
                if cells.is_empty() {
                    continue;
                }
                tasks.push(ShardTask {
                    query_idx,
                    source: summary.source,
                    request: Message::OverlapQuery { query: cells, k },
                });
            }
        }

        // Execute, bucketing replies per query.  The final per-query sort
        // uses a total order (overlap desc, then source, then dataset), so
        // the bucket fill order — task order per query vs. source order per
        // batch — cannot change the aggregated answers.
        let mut buckets: Vec<Vec<(SourceId, dits::OverlapResult)>> =
            (0..queries.len()).map(|_| Vec::new()).collect();
        let plan_elapsed = start.elapsed();
        let (mut ctx, failures) = match self.config.shard_mode {
            // One task per (query, source) shard, in parallel.
            ShardMode::PerQuery => {
                let (per_task, ctx, failures) = self.execute_shards(
                    &tasks,
                    trace_id,
                    |task| task.source,
                    |task, ctx| match self.exchange(task.source, &task.request, ctx)? {
                        Message::OverlapReply { source, results } => {
                            let pairs: Vec<(SourceId, dits::OverlapResult)> =
                                results.into_iter().map(|r| (source, r)).collect();
                            Ok(pairs)
                        }
                        _ => Err(TransportError::UnexpectedReply("OverlapReply").into()),
                    },
                )?;
                for (task, results) in tasks.iter().zip(per_task) {
                    let Some(results) = results else { continue };
                    if let Some(bucket) = buckets.get_mut(task.query_idx) {
                        bucket.extend(results);
                    }
                }
                (ctx, failures)
            }
            // One task per source carrying its whole routed sub-batch; the
            // source answers with a single shared frontier traversal.
            ShardMode::PerSourceBatch => {
                let batches = group_overlap_batches(tasks, k);
                let (per_batch, ctx, failures) = self.execute_shards(
                    &batches,
                    trace_id,
                    |batch| batch.source,
                    |batch, ctx| match self.exchange(batch.source, &batch.request, ctx)? {
                        Message::OverlapBatchReply { source, results }
                            if results.len() == batch.query_idxs.len() =>
                        {
                            let per_query: Vec<Vec<(SourceId, dits::OverlapResult)>> = results
                                .into_iter()
                                .map(|rs| rs.into_iter().map(|r| (source, r)).collect())
                                .collect();
                            Ok(per_query)
                        }
                        _ => Err(TransportError::UnexpectedReply(
                            "OverlapBatchReply of matching arity",
                        )
                        .into()),
                    },
                )?;
                for (batch, per_query) in batches.iter().zip(per_batch) {
                    let Some(per_query) = per_query else { continue };
                    for (&query_idx, results) in batch.query_idxs.iter().zip(per_query) {
                        if let Some(bucket) = buckets.get_mut(query_idx) {
                            bucket.extend(results);
                        }
                    }
                }
                (ctx, failures)
            }
        };
        comm.merge(&ctx.comm);

        // Aggregate: global top-k per query.
        let agg_started = Instant::now();
        let answers = buckets
            .into_iter()
            .map(|mut all| {
                all.sort_unstable_by(|a, b| {
                    b.1.overlap
                        .cmp(&a.1.overlap)
                        .then(a.0.cmp(&b.0))
                        .then(a.1.dataset.cmp(&b.1.dataset))
                });
                all.truncate(k);
                AggregatedOverlap { results: all }
            })
            .collect();

        let spans = std::mem::take(&mut ctx.spans);
        Ok(BatchOutcome {
            answers,
            comm,
            search: ctx.search,
            per_source: ctx.into_timings(),
            failures,
            elapsed: start.elapsed(),
            trace: assemble_trace(trace_id, plan_elapsed, spans, agg_started.elapsed()),
        })
    }

    /// Runs a batch of coverage joinable searches.
    pub fn run_cjsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> Result<BatchOutcome<AggregatedCoverage>, SearchError> {
        let start = Instant::now();
        let trace_id = self.config.collect_trace.then(obs::next_trace_id);
        let delta = self.config.delta_cells;

        // Plan: route with the connectivity slack, clip, materialise requests
        // and capture each query's un-clipped cell set in the shared grid
        // (used by the final aggregation at the center).
        let mut comm = CommStats::new();
        let mut grids = GridCache::new();
        let reachable = self.reachable_sources();
        let route_slack = self.center.route_slack_lonlat(delta, &mut grids)?;
        let mut tasks: Vec<ShardTask> = Vec::new();
        let mut query_cells: Vec<Option<CellSet>> = vec![None; queries.len()];
        for (query_idx, query) in queries.iter().enumerate() {
            let targets = retain_reachable(
                self.center.route(query, route_slack, self.config.strategy),
                &reachable,
            );
            comm.sources_contacted += targets.len();
            let mut cells_cache = QueryCellsCache::new();
            for summary in targets {
                let grid = grids.get(summary.resolution)?;
                let full = cells_cache.get(grid, &query.points);
                let cells =
                    DataCenter::clip_for_source(&summary, grid, full, delta, self.config.strategy);
                if cells.is_empty() {
                    continue;
                }
                if let Some(slot @ None) = query_cells.get_mut(query_idx) {
                    *slot = Some(full.clone());
                }
                tasks.push(ShardTask {
                    query_idx,
                    source: summary.source,
                    request: Message::CoverageQuery {
                        query: cells,
                        k,
                        delta,
                    },
                });
            }
        }

        // Execute local coverage searches, bucketing candidates per query.
        // The greedy aggregation below picks its winner through a total
        // order on (gain, source, dataset), so the bucket fill order cannot
        // change the selected sets.
        let mut buckets: Vec<Vec<CoverageCandidate>> =
            (0..queries.len()).map(|_| Vec::new()).collect();
        let plan_elapsed = start.elapsed();
        let (mut ctx, failures) = match self.config.shard_mode {
            ShardMode::PerQuery => {
                let (per_task, ctx, failures) = self.execute_shards(
                    &tasks,
                    trace_id,
                    |task| task.source,
                    |task, ctx| match self.exchange(task.source, &task.request, ctx)? {
                        Message::CoverageReply { candidates, .. } => Ok(candidates),
                        _ => Err(TransportError::UnexpectedReply("CoverageReply").into()),
                    },
                )?;
                for (task, candidates) in tasks.iter().zip(per_task) {
                    let Some(candidates) = candidates else {
                        continue;
                    };
                    if let Some(bucket) = buckets.get_mut(task.query_idx) {
                        bucket.extend(candidates);
                    }
                }
                (ctx, failures)
            }
            ShardMode::PerSourceBatch => {
                let batches = group_coverage_batches(tasks, k, delta);
                let (per_batch, ctx, failures) = self.execute_shards(
                    &batches,
                    trace_id,
                    |batch| batch.source,
                    |batch, ctx| match self.exchange(batch.source, &batch.request, ctx)? {
                        Message::CoverageBatchReply { candidates, .. }
                            if candidates.len() == batch.query_idxs.len() =>
                        {
                            Ok(candidates)
                        }
                        _ => Err(TransportError::UnexpectedReply(
                            "CoverageBatchReply of matching arity",
                        )
                        .into()),
                    },
                )?;
                for (batch, per_query) in batches.iter().zip(per_batch) {
                    let Some(per_query) = per_query else { continue };
                    for (&query_idx, candidates) in batch.query_idxs.iter().zip(per_query) {
                        if let Some(bucket) = buckets.get_mut(query_idx) {
                            bucket.extend(candidates);
                        }
                    }
                }
                (ctx, failures)
            }
        };
        comm.merge(&ctx.comm);

        // Aggregate: cross-source greedy selection, parallelised over the
        // queries of the batch (each query's greedy run is independent).
        let agg_started = Instant::now();
        let agg_inputs: Vec<(CellSet, Vec<CoverageCandidate>)> = query_cells
            .into_iter()
            .zip(buckets)
            .map(|(cells, candidates)| (cells.unwrap_or_default(), candidates))
            .collect();
        let (answers, _) = run_parallel(
            &agg_inputs,
            self.config.workers,
            None,
            |(cells, candidates), _| Ok(aggregate_coverage(cells, candidates, k, delta)),
        )?;

        let spans = std::mem::take(&mut ctx.spans);
        Ok(BatchOutcome {
            answers,
            comm,
            search: ctx.search,
            per_source: ctx.into_timings(),
            failures,
            elapsed: start.elapsed(),
            trace: assemble_trace(trace_id, plan_elapsed, spans, agg_started.elapsed()),
        })
    }

    /// Runs a batch of k-nearest-datasets searches across the federation —
    /// the first multi-source surface for the [`dits::knn`] machinery.
    ///
    /// Routing prunes whole sources through DITS-G distance bounds (see
    /// `DataCenter::knn_route`); each contacted source answers with its
    /// local top-k and the center merges to the global top-k.  The query
    /// travels unclipped: removing far query cells could only inflate the
    /// distance and corrupt the ranking.
    pub fn run_knn(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> Result<BatchOutcome<AggregatedKnn>, SearchError> {
        let start = Instant::now();
        let trace_id = self.config.collect_trace.then(obs::next_trace_id);

        // Plan: distance-bound routing, full (unclipped) query cells.
        let mut comm = CommStats::new();
        let mut grids = GridCache::new();
        let reachable = self.reachable_sources();
        let mut tasks: Vec<ShardTask> = Vec::new();
        for (query_idx, query) in queries.iter().enumerate() {
            let mut cells_cache = QueryCellsCache::new();
            let targets = retain_reachable(
                self.center.knn_route(
                    query,
                    k,
                    self.config.strategy,
                    &mut grids,
                    &mut cells_cache,
                )?,
                &reachable,
            );
            comm.sources_contacted += targets.len();
            for summary in targets {
                let grid = grids.get(summary.resolution)?;
                let cells = cells_cache.get(grid, &query.points).clone();
                if cells.is_empty() {
                    continue;
                }
                tasks.push(ShardTask {
                    query_idx,
                    source: summary.source,
                    request: Message::KnnQuery { query: cells, k },
                });
            }
        }

        // Execute.  kNN ignores the shard mode: distance ranking needs the
        // unclipped query at every source and gains nothing from frontier
        // sharing, so it always runs one task per (query, source).
        let plan_elapsed = start.elapsed();
        let (per_task, mut ctx, failures) = self.execute_shards(
            &tasks,
            trace_id,
            |task| task.source,
            |task, ctx| match self.exchange(task.source, &task.request, ctx)? {
                Message::KnnReply { source, neighbors } => {
                    let pairs: Vec<(SourceId, Neighbor)> =
                        neighbors.into_iter().map(|n| (source, n)).collect();
                    Ok(pairs)
                }
                _ => Err(TransportError::UnexpectedReply("KnnReply").into()),
            },
        )?;
        comm.merge(&ctx.comm);

        // Aggregate: global k nearest per query.
        let agg_started = Instant::now();
        let mut buckets: Vec<Vec<(SourceId, Neighbor)>> =
            (0..queries.len()).map(|_| Vec::new()).collect();
        for (task, neighbors) in tasks.iter().zip(per_task) {
            let Some(neighbors) = neighbors else { continue };
            if let Some(bucket) = buckets.get_mut(task.query_idx) {
                bucket.extend(neighbors);
            }
        }
        let answers = buckets
            .into_iter()
            .map(|mut all| {
                all.sort_unstable_by(|a, b| {
                    a.1.distance
                        .total_cmp(&b.1.distance)
                        .then(a.0.cmp(&b.0))
                        .then(a.1.dataset.cmp(&b.1.dataset))
                });
                all.truncate(k);
                AggregatedKnn { neighbors: all }
            })
            .collect();

        let spans = std::mem::take(&mut ctx.spans);
        Ok(BatchOutcome {
            answers,
            comm,
            search: ctx.search,
            per_source: ctx.into_timings(),
            failures,
            elapsed: start.elapsed(),
            trace: assemble_trace(trace_id, plan_elapsed, spans, agg_started.elapsed()),
        })
    }
}

/// One planned per-source batch task ([`ShardMode::PerSourceBatch`]): the
/// whole sub-batch of queries routed to one source, plus the positions of
/// those queries in the original batch so replies can be bucketed back.
struct BatchShard {
    source: SourceId,
    query_idxs: Vec<usize>,
    request: Message,
}

/// Groups planned per-(query, source) overlap tasks into one
/// [`Message::OverlapBatchQuery`] per source, preserving query order within
/// each source's sub-batch.
fn group_overlap_batches(tasks: Vec<ShardTask>, k: usize) -> Vec<BatchShard> {
    let mut grouped: BTreeMap<SourceId, (Vec<usize>, Vec<CellSet>)> = BTreeMap::new();
    for task in tasks {
        // Planning only ever materialises overlap requests here; stay total
        // rather than panicking on an impossible variant.
        let Message::OverlapQuery { query, .. } = task.request else {
            continue;
        };
        let entry = grouped.entry(task.source).or_default();
        entry.0.push(task.query_idx);
        entry.1.push(query);
    }
    grouped
        .into_iter()
        .map(|(source, (query_idxs, queries))| BatchShard {
            source,
            query_idxs,
            request: Message::OverlapBatchQuery { queries, k },
        })
        .collect()
}

/// Groups planned per-(query, source) coverage tasks into one
/// [`Message::CoverageBatchQuery`] per source, preserving query order within
/// each source's sub-batch.
fn group_coverage_batches(tasks: Vec<ShardTask>, k: usize, delta: f64) -> Vec<BatchShard> {
    let mut grouped: BTreeMap<SourceId, (Vec<usize>, Vec<CellSet>)> = BTreeMap::new();
    for task in tasks {
        let Message::CoverageQuery { query, .. } = task.request else {
            continue;
        };
        let entry = grouped.entry(task.source).or_default();
        entry.0.push(task.query_idx);
        entry.1.push(query);
    }
    grouped
        .into_iter()
        .map(|(source, (query_idxs, queries))| BatchShard {
            source,
            query_idxs,
            request: Message::CoverageBatchQuery { queries, k, delta },
        })
        .collect()
}

/// Keeps only the routed summaries the transport can deliver to.
fn retain_reachable(
    mut targets: Vec<dits::SourceSummary>,
    reachable: &std::collections::BTreeSet<SourceId>,
) -> Vec<dits::SourceSummary> {
    targets.retain(|s| reachable.contains(&s.source));
    targets
}

/// The cross-source greedy selection of CoverageSearch's aggregation phase
/// (Section VI-C applied at the data center): repeatedly picks the connected
/// candidate with the largest marginal gain until `k` datasets are selected
/// or no candidate adds coverage.
fn aggregate_coverage(
    query_cells: &CellSet,
    candidates: &[CoverageCandidate],
    k: usize,
    delta_cells: f64,
) -> AggregatedCoverage {
    let query_coverage = query_cells.len();
    let mut merged = query_cells.clone();
    let mut selected: Vec<(SourceId, DatasetId)> = Vec::new();
    let mut remaining: Vec<&CoverageCandidate> = candidates.iter().collect();
    while selected.len() < k && !remaining.is_empty() {
        let probe = NeighborProbe::new(&merged);
        // Connectivity first (cheap bound checks), then one batched exact
        // intersection pass over only the connected candidates.  Candidates
        // are carried by reference so the loop never indexes a slice.
        let connected: Vec<(usize, &CoverageCandidate)> = remaining
            .iter()
            .enumerate()
            .filter(|(_, cand)| probe.within(&cand.cells, delta_cells))
            .map(|(pos, &cand)| (pos, cand))
            .collect();
        let overlaps = merged.intersection_size_many(connected.iter().map(|(_, cand)| &cand.cells));
        // (position in remaining, candidate, gain)
        let mut best: Option<(usize, &CoverageCandidate, usize)> = None;
        for (&(pos, cand), overlap) in connected.iter().zip(&overlaps) {
            let gain = cand.cells.len() - overlap;
            let wins = match best {
                None => true,
                Some((_, best_cand, best_gain)) => {
                    gain > best_gain
                        || (gain == best_gain
                            && (cand.source, cand.dataset) < (best_cand.source, best_cand.dataset))
                }
            };
            if wins {
                best = Some((pos, cand, gain));
            }
        }
        let Some((pos, cand, gain)) = best else { break };
        if gain == 0 {
            break;
        }
        remaining.swap_remove(pos);
        merged.union_in_place(&cand.cells);
        selected.push((cand.source, cand.dataset));
    }

    AggregatedCoverage {
        selected,
        coverage: merged.len(),
        query_coverage,
    }
}

/// Assembles a run's [`obs::Trace`] from its phase timings and the spans the
/// workers collected: `plan` and `aggregate` spans bracket the per-call
/// `call` / `service` / `traversal` / `verify` spans, and the whole trace is
/// canonicalised so span order is deterministic across worker schedules.
fn assemble_trace(
    trace_id: Option<u64>,
    plan: Duration,
    spans: Vec<obs::Span>,
    aggregate: Duration,
) -> Option<obs::Trace> {
    trace_id.map(|id| {
        let mut trace = obs::Trace::new(id);
        trace.push("plan", None, plan);
        trace.spans.extend(spans);
        trace.push("aggregate", None, aggregate);
        trace.canonicalize();
        trace
    })
}

/// Resolves a worker-count setting: `0` means one worker per available CPU.
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Below this many tasks a run stays on the calling thread: spawning and
/// joining OS threads costs tens of microseconds, which swamps the work of a
/// handful of shard searches (e.g. one query routed to five sources via the
/// single-query convenience wrappers).
const MIN_PARALLEL_TASKS: usize = 8;

/// What a degradation-aware shard execution produces: one result slot per
/// task (`None` where the shard's source failed), the merged per-worker
/// accumulators, and one report per failed source.
type ShardOutcome<R> = (Vec<Option<R>>, WorkerCtx, Vec<SourceFailure>);

/// Per-worker private accumulators: communication bytes, search statistics
/// and per-source transport timing.  Workers never contend on shared
/// counters; blocks are merged losslessly after the join.
#[derive(Debug)]
struct WorkerCtx {
    comm: CommStats,
    search: SearchStats,
    timings: Vec<(SourceId, usize, Duration, Duration)>,
    /// The run's trace id, when tracing; workers pass it on every call and
    /// collect the per-call spans locally (merged after the join, like every
    /// other accumulator).
    trace: Option<u64>,
    spans: Vec<obs::Span>,
}

impl WorkerCtx {
    fn new(trace: Option<u64>) -> Self {
        Self {
            comm: CommStats::new(),
            search: SearchStats::new(),
            timings: Vec::new(),
            trace,
            spans: Vec::new(),
        }
    }

    fn record_timing(
        &mut self,
        source: SourceId,
        bytes: usize,
        elapsed: Duration,
        service: Duration,
    ) {
        self.timings.push((source, bytes, elapsed, service));
    }

    fn merge(&mut self, other: WorkerCtx) {
        self.comm.merge(&other.comm);
        self.search.merge(&other.search);
        self.timings.extend(other.timings);
        self.spans.extend(other.spans);
    }

    /// Collapses the raw per-call records into one [`SourceTiming`] per
    /// source, ascending by source id.
    fn into_timings(self) -> Vec<SourceTiming> {
        let mut by_source: BTreeMap<SourceId, SourceTiming> = BTreeMap::new();
        for (source, bytes, elapsed, service) in self.timings {
            let entry = by_source.entry(source).or_insert(SourceTiming {
                source,
                requests: 0,
                bytes: 0,
                elapsed: Duration::ZERO,
                service: Duration::ZERO,
            });
            entry.requests += 1;
            entry.bytes += bytes;
            entry.elapsed += elapsed;
            entry.service += service;
        }
        by_source.into_values().collect()
    }
}

/// Runs `f` over every task on a pool of scoped worker threads, returning
/// the per-task results **in task order** plus the merged per-worker
/// accumulators.  The first shard error aborts the batch (remaining workers
/// drain their current task and stop).
///
/// With one worker (or fewer than [`MIN_PARALLEL_TASKS`] tasks) the pool is
/// bypassed entirely, which doubles as the sequential reference path the
/// parity tests compare against.
fn run_parallel<T, R, F>(
    tasks: &[T],
    workers: usize,
    trace: Option<u64>,
    f: F,
) -> Result<(Vec<R>, WorkerCtx), SearchError>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut WorkerCtx) -> Result<R, SearchError> + Sync,
{
    let (per_task, ctx) = run_parallel_core(tasks, workers, trace, true, f)?;
    let mut results = Vec::with_capacity(per_task.len());
    for result in per_task {
        // Fail-fast mode surfaces the first shard error as the outer Err,
        // so every per-task slot is Ok here; stay total regardless.
        results.push(result?);
    }
    Ok((results, ctx))
}

/// The shared worker-pool core behind [`run_parallel`] (fail-fast) and the
/// engine's degraded skip-and-report mode.  Returns one `Result` per task,
/// **in task order**, plus the merged per-worker accumulators.
///
/// With `fail_fast` the first shard error parks the claim cursor (remaining
/// workers drain their current task and stop) and becomes the outer `Err`;
/// without it every task runs to completion and failed shards come back as
/// per-task `Err` values, so one dead source can never park the batch.
fn run_parallel_core<T, R, F>(
    tasks: &[T],
    workers: usize,
    trace: Option<u64>,
    fail_fast: bool,
    f: F,
) -> Result<(Vec<Result<R, SearchError>>, WorkerCtx), SearchError>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut WorkerCtx) -> Result<R, SearchError> + Sync,
{
    let worker_count = resolve_workers(workers).min(tasks.len());
    let mut ctx = WorkerCtx::new(trace);

    if worker_count <= 1 || tasks.len() < MIN_PARALLEL_TASKS {
        let mut results = Vec::with_capacity(tasks.len());
        for task in tasks {
            match f(task, &mut ctx) {
                Ok(r) => results.push(Ok(r)),
                Err(e) if fail_fast => return Err(e),
                Err(e) => results.push(Err(e)),
            }
        }
        return Ok((results, ctx));
    }

    /// What one worker brings home: its indexed per-task results, its
    /// private accumulators, and the aborting error it hit (if any).
    type WorkerBlock<R> = (
        Vec<(usize, Result<R, SearchError>)>,
        WorkerCtx,
        Option<SearchError>,
    );

    let cursor = AtomicUsize::new(0);
    let worker_blocks: Vec<Result<WorkerBlock<R>, SearchError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = WorkerCtx::new(trace);
                    let mut local_results: Vec<(usize, Result<R, SearchError>)> = Vec::new();
                    let mut error = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let Some(task) = tasks.get(i) else { break };
                        match f(task, &mut local) {
                            Ok(r) => local_results.push((i, Ok(r))),
                            Err(e) if fail_fast => {
                                // Park the cursor past the end so idle
                                // workers stop claiming shards: the batch is
                                // already doomed, there is no point paying
                                // for (possibly slow) remaining exchanges.
                                cursor.store(tasks.len(), Ordering::Relaxed);
                                error = Some(e);
                                break;
                            }
                            Err(e) => local_results.push((i, Err(e))),
                        }
                    }
                    (local_results, local, error)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| SearchError::Internal("engine worker panicked"))
            })
            .collect()
    });

    // Lossless merge of the per-worker accumulators; a join failure or (in
    // fail-fast mode) the first shard error aborts the batch.
    let mut slots: Vec<Option<Result<R, SearchError>>> = (0..tasks.len()).map(|_| None).collect();
    for block in worker_blocks {
        let (results, local, error) = block?;
        if let Some(e) = error {
            return Err(e);
        }
        ctx.merge(local);
        for (i, r) in results {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(r);
            }
        }
    }
    let mut results = Vec::with_capacity(tasks.len());
    for slot in slots {
        match slot {
            Some(r) => results.push(r),
            None => return Err(SearchError::Internal("a shard task produced no result")),
        }
    }
    Ok((results, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{FrameworkConfig, MultiSourceFramework};
    use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};

    fn five_source_framework() -> (MultiSourceFramework, Vec<SpatialDataset>) {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(400),
            seed: 77,
            max_points_per_dataset: Some(100),
        };
        let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        let queries: Vec<SpatialDataset> = source_data
            .iter()
            .flat_map(|(_, d)| d.iter().take(2).cloned())
            .collect();
        let fw = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                ..FrameworkConfig::default()
            },
        );
        (fw, queries)
    }

    #[test]
    fn worker_pool_preserves_task_order_and_merges_stats() {
        let tasks: Vec<usize> = (0..100).collect();
        let (results, ctx) = run_parallel(&tasks, 7, None, |&t, ctx| {
            ctx.comm.record_request(t);
            ctx.search.nodes_visited += 1;
            Ok(t * 2)
        })
        .unwrap();
        assert_eq!(results, (0..100).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(ctx.comm.bytes_to_sources, (0..100).sum::<usize>());
        assert_eq!(ctx.comm.requests, 100);
        assert_eq!(ctx.search.nodes_visited, 100);
    }

    #[test]
    fn worker_pool_sequential_path_matches_parallel() {
        let tasks: Vec<usize> = (0..37).collect();
        let (seq, seq_ctx) = run_parallel(&tasks, 1, None, |&t, ctx| {
            ctx.comm.record_reply(t + 1);
            Ok(t + 10)
        })
        .unwrap();
        let (par, par_ctx) = run_parallel(&tasks, 8, None, |&t, ctx| {
            ctx.comm.record_reply(t + 1);
            Ok(t + 10)
        })
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_ctx.comm, par_ctx.comm);
    }

    #[test]
    fn worker_pool_propagates_shard_errors() {
        let tasks: Vec<usize> = (0..50).collect();
        let err = run_parallel(&tasks, 4, None, |&t, _| {
            if t == 23 {
                Err(SearchError::Internal("boom"))
            } else {
                Ok(t)
            }
        })
        .unwrap_err();
        assert_eq!(err, SearchError::Internal("boom"));
        // Sequential path too.
        let err = run_parallel(&tasks[..4], 1, None, |&t, _| {
            if t == 2 {
                Err(SearchError::Internal("boom"))
            } else {
                Ok(t)
            }
        })
        .unwrap_err();
        assert_eq!(err, SearchError::Internal("boom"));
    }

    #[test]
    fn batch_ojsp_matches_per_query_runs() {
        let (fw, queries) = five_source_framework();
        let batch = fw.engine().run_ojsp(&queries, 5).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
        let mut merged = CommStats::new();
        for (query, batched) in queries.iter().zip(&batch.answers) {
            #[allow(deprecated)]
            let (single, comm) = fw.ojsp(query, 5).unwrap();
            assert_eq!(&single, batched);
            merged.merge(&comm);
        }
        assert_eq!(merged.total_bytes(), batch.comm.total_bytes());
        assert_eq!(merged.sources_contacted, batch.comm.sources_contacted);
    }

    #[test]
    fn batch_cjsp_matches_per_query_runs() {
        let (fw, queries) = five_source_framework();
        let batch = fw.engine().run_cjsp(&queries, 3).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
        let mut merged = CommStats::new();
        for (query, batched) in queries.iter().zip(&batch.answers) {
            #[allow(deprecated)]
            let (single, comm) = fw.cjsp(query, 3).unwrap();
            assert_eq!(&single, batched);
            merged.merge(&comm);
        }
        assert_eq!(merged.total_bytes(), batch.comm.total_bytes());
    }

    #[test]
    fn search_stats_are_threaded_through_the_engine() {
        let (fw, queries) = five_source_framework();
        let outcome = fw.engine().run_ojsp(&queries, 5).unwrap();
        assert!(
            outcome.search.nodes_visited > 0,
            "engine must surface search stats"
        );
        assert!(outcome.search.exact_computations > 0);
        // Per-source timing covers every contacted source.
        assert!(!outcome.per_source.is_empty());
        assert_eq!(
            outcome.per_source.iter().map(|t| t.requests).sum::<usize>(),
            outcome.comm.requests
        );
        assert_eq!(
            outcome.per_source.iter().map(|t| t.bytes).sum::<usize>(),
            outcome.comm.total_bytes()
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (fw, _) = five_source_framework();
        let outcome = fw.engine().run_ojsp(&[], 5).unwrap();
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.comm.total_bytes(), 0);
        let outcome = fw.engine().run_cjsp(&[], 5).unwrap();
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.comm, CommStats::new());
        let outcome = fw.engine().run_knn(&[], 5).unwrap();
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn multi_source_knn_matches_merged_local_searches() {
        let (fw, queries) = five_source_framework();
        let k = 6;
        let batch = fw.engine().run_knn(&queries, k).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
        for (query, answer) in queries.iter().zip(&batch.answers) {
            // Oracle: run the local kNN on every source and merge.
            let mut expected: Vec<(SourceId, Neighbor)> = Vec::new();
            for s in fw.sources() {
                let cells = s.grid_query(query);
                if cells.is_empty() {
                    continue;
                }
                let (local, _) = dits::nearest_datasets(s.index(), &cells, k);
                expected.extend(local.into_iter().map(|n| (s.id, n)));
            }
            expected.sort_unstable_by(|a, b| {
                a.1.distance
                    .total_cmp(&b.1.distance)
                    .then(a.0.cmp(&b.0))
                    .then(a.1.dataset.cmp(&b.1.dataset))
            });
            expected.truncate(k);
            assert_eq!(answer.neighbors, expected, "kNN routing lost a result");
            // A query drawn from the federation overlaps itself: distance 0.
            assert_eq!(answer.neighbors[0].1.distance, 0.0);
        }
        // Distance-bound routing pruned at least one (query, source) pair
        // on this clustered workload.
        let broadcast = fw
            .engine()
            .run(
                &crate::SearchRequest::knn_batch(queries.clone())
                    .k(k)
                    .strategy(DistributionStrategy::Broadcast),
            )
            .unwrap();
        assert!(batch.comm.sources_contacted <= broadcast.comm.sources_contacted);
        match broadcast.results {
            SearchResults::Knn(answers) => assert_eq!(answers, batch.answers),
            other => panic!("unexpected results {other:?}"),
        }
    }

    /// The shard-mode parity check: the per-source batched mode must produce
    /// exactly the answers and summed `SearchStats` of the per-query oracle,
    /// while contacting the same sources with fewer requests.
    #[test]
    fn batched_shard_mode_matches_per_query_oracle() {
        let (fw, queries) = five_source_framework();
        let per_query = fw.engine();
        let mut config = *per_query.config();
        config.shard_mode = ShardMode::PerSourceBatch;
        let batched = QueryEngine::in_process(fw.center(), fw.sources(), config);

        let oracle = per_query.run_ojsp(&queries, 5).unwrap();
        let fast = batched.run_ojsp(&queries, 5).unwrap();
        assert_eq!(oracle.answers, fast.answers);
        assert_eq!(
            oracle.search, fast.search,
            "frontier sharing must not change the summed search stats"
        );
        assert_eq!(oracle.comm.sources_contacted, fast.comm.sources_contacted);
        assert!(
            fast.comm.requests < oracle.comm.requests,
            "batching must collapse requests ({} vs {})",
            fast.comm.requests,
            oracle.comm.requests
        );

        let oracle = per_query.run_cjsp(&queries, 3).unwrap();
        let fast = batched.run_cjsp(&queries, 3).unwrap();
        assert_eq!(oracle.answers, fast.answers);
        assert_eq!(oracle.search, fast.search);
        assert!(fast.comm.requests < oracle.comm.requests);

        // kNN ignores the shard mode entirely.
        let oracle = per_query.run_knn(&queries, 4).unwrap();
        let fast = batched.run_knn(&queries, 4).unwrap();
        assert_eq!(oracle.answers, fast.answers);
        assert_eq!(oracle.comm, fast.comm);
    }

    /// The shard mode is reachable through the unified request API.
    #[test]
    fn search_request_can_pick_the_batched_shard_mode() {
        let (fw, queries) = five_source_framework();
        let oracle = fw
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .unwrap();
        let fast = fw
            .search(
                &SearchRequest::ojsp_batch(queries.clone())
                    .k(5)
                    .shard_mode(ShardMode::PerSourceBatch),
            )
            .unwrap();
        assert_eq!(oracle.results, fast.results);
        assert_eq!(oracle.search, fast.search);
        assert!(fast.comm.requests < oracle.comm.requests);
    }

    /// Tracing is opt-in, assembles center-side and per-source spans, and
    /// never changes the answers or the counted protocol bytes.
    #[test]
    fn traced_requests_return_spans_without_changing_bytes() {
        let (fw, queries) = five_source_framework();
        let plain = fw
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .unwrap();
        assert!(plain.trace.is_none(), "tracing must be opt-in");
        let traced = fw
            .search(
                &SearchRequest::ojsp_batch(queries.clone())
                    .k(5)
                    .with_trace(true),
            )
            .unwrap();
        assert_eq!(plain.results, traced.results);
        assert_eq!(
            plain.comm, traced.comm,
            "tracing must not change the counted protocol bytes"
        );
        let trace = traced.trace.expect("trace was requested");
        assert!(trace.id > 0, "0 is reserved as the no-trace wire marker");
        assert_eq!(trace.spans_named("plan").count(), 1);
        assert_eq!(trace.spans_named("aggregate").count(), 1);
        // One call/service/traversal/verify span per exchanged request, each
        // naming the source it was measured on.
        for name in ["call", "service", "traversal", "verify"] {
            assert_eq!(trace.spans_named(name).count(), traced.comm.requests);
            assert!(trace.spans_named(name).all(|s| s.source.is_some()));
        }
        // Canonical order puts center-side spans first.
        assert_eq!(trace.spans[0].source, None);
        assert!(trace.total_named("traversal") > Duration::ZERO);
        // Service time surfaced per source, bounded by the transport time.
        assert!(traced
            .per_source
            .iter()
            .all(|t| t.service > Duration::ZERO && t.service <= t.elapsed));
    }

    /// Every run crossing the slow-query threshold is recorded with its kind
    /// and (when traced) its trace id.
    #[test]
    fn slow_query_log_captures_runs_with_trace_ids() {
        let (fw, queries) = five_source_framework();
        let log = obs::SlowQueryLog::new(Duration::ZERO);
        let engine = fw.engine().with_slow_log(&log);
        let traced = engine
            .run(
                &SearchRequest::ojsp_batch(queries.clone())
                    .k(3)
                    .with_trace(true),
            )
            .unwrap();
        engine
            .run(&SearchRequest::knn_batch(queries.clone()).k(3))
            .unwrap();
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "ojsp");
        assert_eq!(
            entries[0].trace_id,
            Some(traced.trace.expect("traced run").id)
        );
        assert_eq!(entries[1].kind, "knn");
        assert_eq!(entries[1].trace_id, None, "untraced runs log no trace id");
    }

    /// A transport where one source is "dead": every call to it fails with
    /// a typed timeout, while the rest answer in-process.
    #[derive(Debug)]
    struct FaultyTransport<'a> {
        inner: InProcessTransport<'a>,
        dead: SourceId,
    }

    impl SourceTransport for FaultyTransport<'_> {
        fn source_ids(&self) -> Vec<SourceId> {
            self.inner.source_ids()
        }

        fn call_with(
            &self,
            source: SourceId,
            request: &Message,
            opts: CallOptions,
        ) -> Result<crate::transport::TransportReply, TransportError> {
            if source == self.dead {
                return Err(TransportError::Timeout {
                    source,
                    waited: Duration::from_millis(1),
                });
            }
            self.inner.call_with(source, request, opts)
        }
    }

    /// The degradation contract: fail-fast aborts on a dead source, while
    /// skip-and-report completes the batch with the healthy sources'
    /// answers, reports the dead source exactly once, and accounts only the
    /// completed shards' bytes.
    #[test]
    fn degraded_runs_skip_dead_sources_and_report_them() {
        let (fw, queries) = five_source_framework();
        let dead = fw.sources()[0].id;
        let faulty = FaultyTransport {
            inner: InProcessTransport::new(fw.sources()),
            dead,
        };

        // Fail-fast (the default): the shard error aborts the whole batch.
        let config = EngineConfig::default();
        let err = QueryEngine::new(fw.center(), &faulty, config)
            .run_ojsp(&queries, 5)
            .unwrap_err();
        assert!(
            matches!(err, SearchError::Transport(TransportError::Timeout { .. })),
            "{err:?}"
        );

        // Skip-and-report: the batch completes without the dead source.
        let config = EngineConfig {
            skip_failed_sources: true,
            ..EngineConfig::default()
        };
        let degraded = QueryEngine::new(fw.center(), &faulty, config)
            .run_ojsp(&queries, 5)
            .unwrap();
        assert_eq!(degraded.answers.len(), queries.len());
        assert_eq!(degraded.failures.len(), 1, "{:?}", degraded.failures);
        assert_eq!(degraded.failures[0].source, dead);
        assert!(matches!(
            degraded.failures[0].error,
            SearchError::Transport(TransportError::Timeout { .. })
        ));
        for answer in &degraded.answers {
            assert!(
                answer.results.iter().all(|(s, _)| *s != dead),
                "a skipped source leaked results into the aggregate"
            );
        }

        // Oracle: the same plan over a deployment that never had the dead
        // source.  Answers, accounted bytes and search stats must match —
        // the degraded run's counters describe exactly the completed
        // shards.  Only `sources_contacted` differs: the degraded run
        // planned (and failed) contacts to the dead source.
        let healthy: Vec<DataSource> = fw
            .sources()
            .iter()
            .filter(|s| s.id != dead)
            .cloned()
            .collect();
        let oracle = QueryEngine::in_process(fw.center(), &healthy, EngineConfig::default())
            .run_ojsp(&queries, 5)
            .unwrap();
        assert_eq!(degraded.answers, oracle.answers);
        assert_eq!(degraded.comm.total_bytes(), oracle.comm.total_bytes());
        assert_eq!(degraded.comm.requests, oracle.comm.requests);
        assert_eq!(degraded.search, oracle.search);
        assert!(degraded.comm.sources_contacted > oracle.comm.sources_contacted);
        assert!(oracle.failures.is_empty());

        // The mode is reachable per request, for every search kind.
        let engine = QueryEngine::new(fw.center(), &faulty, EngineConfig::default());
        for request in [
            SearchRequest::ojsp_batch(queries.clone()).k(5),
            SearchRequest::cjsp_batch(queries.clone()).k(3),
            SearchRequest::knn_batch(queries.clone()).k(4),
        ] {
            let response = engine
                .run(&request.skip_failed_sources(true))
                .expect("degraded run must not park the batch");
            assert!(!response.is_complete());
            assert_eq!(response.failures.len(), 1);
            assert_eq!(response.failures[0].source, dead);
        }
    }

    /// The stats-merging parity check: a parallel engine run over the five
    /// sources must produce answers *and* communication byte totals
    /// identical to the sequential (one-worker) path on the same fixed seed.
    #[test]
    fn parallel_and_sequential_engines_agree() {
        let (fw, queries) = five_source_framework();
        let seq = fw.engine_with_workers(1).run_ojsp(&queries, 4).unwrap();
        let par = fw.engine_with_workers(8).run_ojsp(&queries, 4).unwrap();
        assert_eq!(seq.answers, par.answers);
        assert_eq!(
            seq.comm, par.comm,
            "CommStats must merge to identical totals"
        );
        assert_eq!(
            seq.search, par.search,
            "SearchStats must merge to identical totals"
        );

        let seq = fw.engine_with_workers(1).run_cjsp(&queries, 3).unwrap();
        let par = fw.engine_with_workers(8).run_cjsp(&queries, 3).unwrap();
        assert_eq!(seq.answers, par.answers);
        assert_eq!(seq.comm, par.comm);
        assert_eq!(seq.search, par.search);

        let seq = fw.engine_with_workers(1).run_knn(&queries, 4).unwrap();
        let par = fw.engine_with_workers(8).run_knn(&queries, 4).unwrap();
        assert_eq!(seq.answers, par.answers);
        assert_eq!(seq.comm, par.comm);
        assert_eq!(seq.search, par.search);
    }
}
