//! The batched, parallel query engine — the single execution path for every
//! multi-source search in the repository.
//!
//! [`QueryEngine`] owns query execution end to end.  It accepts *batches* of
//! OJSP / CJSP queries and fans each batch out as one task per
//! `(query, candidate source)` pair — one source is one shard, matching the
//! deployment of the paper's Fig. 3 where every data source runs its local
//! search concurrently.  Tasks are executed by a fixed pool of scoped worker
//! threads; each worker keeps its *own* [`CommStats`] and [`SearchStats`]
//! accumulators (no shared counters, no locks on the hot path) and the
//! per-worker blocks are merged once at the end, so the reported totals are
//! identical to a sequential run of the same plan.
//!
//! The engine split is:
//!
//! 1. **Plan** (sequential, cheap): route each query through DITS-G, clip it
//!    per candidate source, and materialise the request messages.
//! 2. **Execute** (parallel): serialise requests, run the local searches,
//!    account bytes — the expensive part, embarrassingly parallel.
//! 3. **Aggregate**: merge per-source answers into the global top-`k`
//!    (OJSP) or run the cross-source greedy selection (CJSP, itself
//!    parallelised over the queries of the batch).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use dits::SearchStats;
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId, SourceId, SpatialDataset};

use crate::center::{AggregatedCoverage, AggregatedOverlap, DataCenter, DistributionStrategy};
use crate::comm::{CommConfig, CommStats};
use crate::message::{CoverageCandidate, Message};
use crate::source::DataSource;

/// Configuration of the query engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Query-distribution strategy applied when planning.
    pub strategy: DistributionStrategy,
    /// Connectivity threshold δ in cell units (CJSP only).
    pub delta_cells: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            strategy: DistributionStrategy::PrunedClipped,
            delta_cells: 10.0,
        }
    }
}

/// Result of one batch run: per-query answers plus accumulated costs.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    /// One aggregated answer per query, in query order.
    pub answers: Vec<T>,
    /// Communication statistics accumulated over the whole batch.
    pub comm: CommStats,
    /// Local-search statistics accumulated over every contacted source.
    pub search: SearchStats,
    /// Wall-clock time spent planning, searching and aggregating.
    pub elapsed: Duration,
}

impl<T> BatchOutcome<T> {
    /// Transmission time implied by the accumulated bytes, in milliseconds.
    pub fn transmission_time_ms(&self, config: &CommConfig) -> f64 {
        self.comm.transmission_time_ms(config)
    }
}

/// One planned shard task: a request bound for one source on behalf of one
/// query of the batch.
struct ShardTask<'s> {
    query_idx: usize,
    source: &'s DataSource,
    request: Message,
}

/// The batched, parallel multi-source query engine.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    center: &'a DataCenter,
    sources: &'a [DataSource],
    config: EngineConfig,
}

impl<'a> QueryEngine<'a> {
    /// Builds an engine over a data center and its sources.
    pub fn new(center: &'a DataCenter, sources: &'a [DataSource], config: EngineConfig) -> Self {
        Self {
            center,
            sources,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The number of worker threads a run will actually use.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.config.workers)
    }

    /// Runs a batch of overlap joinable searches.
    pub fn run_ojsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> BatchOutcome<AggregatedOverlap> {
        let start = Instant::now();

        // Plan: route and clip every query, materialise the wire requests.
        let mut comm = CommStats::new();
        let mut tasks: Vec<ShardTask<'a>> = Vec::new();
        for (query_idx, query) in queries.iter().enumerate() {
            let targets = self
                .center
                .route(self.sources, query, 0.0, self.config.strategy);
            comm.sources_contacted += targets.len();
            for source in targets {
                let Some(cells) =
                    self.center
                        .prepare_query(source, query, 0.0, self.config.strategy)
                else {
                    continue;
                };
                if cells.is_empty() {
                    continue;
                }
                tasks.push(ShardTask {
                    query_idx,
                    source,
                    request: Message::OverlapQuery { query: cells, k },
                });
            }
        }

        // Execute: one task per (query, source) shard, in parallel.
        let (per_task, exec_comm, search) =
            run_parallel(&tasks, self.config.workers, |task, comm, search| {
                comm.record_request(task.request.wire_size());
                let Some((reply, stats)) = task.source.handle_with_stats(&task.request) else {
                    return Vec::new();
                };
                search.merge(&stats);
                comm.record_reply(reply.wire_size());
                match reply {
                    Message::OverlapReply { source, results } => {
                        results.into_iter().map(|r| (source, r)).collect()
                    }
                    _ => Vec::new(),
                }
            });
        comm.merge(&exec_comm);

        // Aggregate: global top-k per query.
        let mut buckets: Vec<Vec<(SourceId, dits::OverlapResult)>> =
            (0..queries.len()).map(|_| Vec::new()).collect();
        for (task, results) in tasks.iter().zip(per_task) {
            buckets[task.query_idx].extend(results);
        }
        let answers = buckets
            .into_iter()
            .map(|mut all| {
                all.sort_unstable_by(|a, b| {
                    b.1.overlap
                        .cmp(&a.1.overlap)
                        .then(a.0.cmp(&b.0))
                        .then(a.1.dataset.cmp(&b.1.dataset))
                });
                all.truncate(k);
                AggregatedOverlap { results: all }
            })
            .collect();

        BatchOutcome {
            answers,
            comm,
            search,
            elapsed: start.elapsed(),
        }
    }

    /// Runs a batch of coverage joinable searches.
    pub fn run_cjsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> BatchOutcome<AggregatedCoverage> {
        let start = Instant::now();
        let delta = self.config.delta_cells;

        // Plan: route with the connectivity slack, clip, materialise requests
        // and capture each query's un-clipped cell set in the shared grid
        // (used by the final aggregation at the center).
        let mut comm = CommStats::new();
        let mut tasks: Vec<ShardTask<'a>> = Vec::new();
        let mut query_cells: Vec<Option<CellSet>> = vec![None; queries.len()];
        for (query_idx, query) in queries.iter().enumerate() {
            let targets = self.center.route(
                self.sources,
                query,
                self.center.delta_lonlat(),
                self.config.strategy,
            );
            comm.sources_contacted += targets.len();
            for source in targets {
                let Some(cells) =
                    self.center
                        .prepare_query(source, query, delta, self.config.strategy)
                else {
                    continue;
                };
                if cells.is_empty() {
                    continue;
                }
                if query_cells[query_idx].is_none() {
                    query_cells[query_idx] = Some(source.grid_query(query));
                }
                tasks.push(ShardTask {
                    query_idx,
                    source,
                    request: Message::CoverageQuery {
                        query: cells,
                        k,
                        delta,
                    },
                });
            }
        }

        // Execute: local coverage searches in parallel.
        let (per_task, exec_comm, search) =
            run_parallel(&tasks, self.config.workers, |task, comm, search| {
                comm.record_request(task.request.wire_size());
                let Some((reply, stats)) = task.source.handle_with_stats(&task.request) else {
                    return Vec::new();
                };
                search.merge(&stats);
                comm.record_reply(reply.wire_size());
                match reply {
                    Message::CoverageReply { candidates, .. } => candidates,
                    _ => Vec::new(),
                }
            });
        comm.merge(&exec_comm);

        // Aggregate: cross-source greedy selection, parallelised over the
        // queries of the batch (each query's greedy run is independent).
        let mut buckets: Vec<Vec<CoverageCandidate>> =
            (0..queries.len()).map(|_| Vec::new()).collect();
        for (task, candidates) in tasks.iter().zip(per_task) {
            buckets[task.query_idx].extend(candidates);
        }
        let agg_inputs: Vec<(CellSet, Vec<CoverageCandidate>)> = query_cells
            .into_iter()
            .zip(buckets)
            .map(|(cells, candidates)| (cells.unwrap_or_default(), candidates))
            .collect();
        let (answers, _, _) = run_parallel(
            &agg_inputs,
            self.config.workers,
            |(cells, candidates), _, _| aggregate_coverage(cells, candidates, k, delta),
        );

        BatchOutcome {
            answers,
            comm,
            search,
            elapsed: start.elapsed(),
        }
    }
}

/// The cross-source greedy selection of CoverageSearch's aggregation phase
/// (Section VI-C applied at the data center): repeatedly picks the connected
/// candidate with the largest marginal gain until `k` datasets are selected
/// or no candidate adds coverage.
fn aggregate_coverage(
    query_cells: &CellSet,
    candidates: &[CoverageCandidate],
    k: usize,
    delta_cells: f64,
) -> AggregatedCoverage {
    let query_coverage = query_cells.len();
    let mut merged = query_cells.clone();
    let mut selected: Vec<(SourceId, DatasetId)> = Vec::new();
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    while selected.len() < k && !remaining.is_empty() {
        let probe = NeighborProbe::new(&merged);
        // Connectivity first (cheap bound checks), then one batched exact
        // intersection pass over only the connected candidates.
        let connected: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &idx)| probe.within(&candidates[idx].cells, delta_cells))
            .map(|(pos, _)| pos)
            .collect();
        let overlaps = merged.intersection_size_many(
            connected
                .iter()
                .map(|&pos| &candidates[remaining[pos]].cells),
        );
        let mut best: Option<(usize, usize)> = None; // (position in remaining, gain)
        for (&pos, overlap) in connected.iter().zip(&overlaps) {
            let cand = &candidates[remaining[pos]];
            let gain = cand.cells.len() - overlap;
            let wins = match best {
                None => true,
                Some((best_pos, best_gain)) => {
                    let best_cand = &candidates[remaining[best_pos]];
                    gain > best_gain
                        || (gain == best_gain
                            && (cand.source, cand.dataset) < (best_cand.source, best_cand.dataset))
                }
            };
            if wins {
                best = Some((pos, gain));
            }
        }
        let Some((pos, gain)) = best else { break };
        if gain == 0 {
            break;
        }
        let idx = remaining.swap_remove(pos);
        merged.union_in_place(&candidates[idx].cells);
        selected.push((candidates[idx].source, candidates[idx].dataset));
    }

    AggregatedCoverage {
        selected,
        coverage: merged.len(),
        query_coverage,
    }
}

/// Resolves a worker-count setting: `0` means one worker per available CPU.
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Below this many tasks a run stays on the calling thread: spawning and
/// joining OS threads costs tens of microseconds, which swamps the work of a
/// handful of shard searches (e.g. one query routed to five sources via the
/// single-query convenience wrappers).
const MIN_PARALLEL_TASKS: usize = 8;

/// Runs `f` over every task on a pool of scoped worker threads, returning
/// the per-task results **in task order** plus the merged per-worker
/// statistics accumulators.
///
/// Each worker owns private `CommStats` / `SearchStats` blocks — workers
/// never contend on shared counters; the only synchronisation is the atomic
/// task cursor and the final join/merge.  With one worker (or fewer than
/// [`MIN_PARALLEL_TASKS`] tasks) the pool is bypassed entirely, which
/// doubles as the sequential reference path the parity tests compare
/// against.
fn run_parallel<T, R, F>(tasks: &[T], workers: usize, f: F) -> (Vec<R>, CommStats, SearchStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut CommStats, &mut SearchStats) -> R + Sync,
{
    let worker_count = resolve_workers(workers).min(tasks.len());
    let mut comm = CommStats::new();
    let mut search = SearchStats::new();

    if worker_count <= 1 || tasks.len() < MIN_PARALLEL_TASKS {
        let results = tasks.iter().map(|t| f(t, &mut comm, &mut search)).collect();
        return (results, comm, search);
    }

    /// What one worker brings home: its indexed results plus its private
    /// statistics accumulators.
    type WorkerBlock<R> = (Vec<(usize, R)>, CommStats, SearchStats);

    let cursor = AtomicUsize::new(0);
    let worker_blocks: Vec<WorkerBlock<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                scope.spawn(|| {
                    let mut local_comm = CommStats::new();
                    let mut local_search = SearchStats::new();
                    let mut local_results: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        local_results.push((i, f(&tasks[i], &mut local_comm, &mut local_search)));
                    }
                    (local_results, local_comm, local_search)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Lossless merge of the per-worker accumulators.
    comm = worker_blocks.iter().map(|(_, c, _)| c).sum();
    search = worker_blocks.iter().map(|(_, _, s)| s).sum();
    let mut slots: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    for (results, _, _) in worker_blocks {
        for (i, r) in results {
            slots[i] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every task executed exactly once"))
        .collect();
    (results, comm, search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{FrameworkConfig, MultiSourceFramework};
    use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};

    fn five_source_framework() -> (MultiSourceFramework, Vec<SpatialDataset>) {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(400),
            seed: 77,
            max_points_per_dataset: Some(100),
        };
        let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        let queries: Vec<SpatialDataset> = source_data
            .iter()
            .flat_map(|(_, d)| d.iter().take(2).cloned())
            .collect();
        let fw = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                ..FrameworkConfig::default()
            },
        );
        (fw, queries)
    }

    #[test]
    fn worker_pool_preserves_task_order_and_merges_stats() {
        let tasks: Vec<usize> = (0..100).collect();
        let (results, comm, search) = run_parallel(&tasks, 7, |&t, comm, search| {
            comm.record_request(t);
            search.nodes_visited += 1;
            t * 2
        });
        assert_eq!(results, (0..100).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(comm.bytes_to_sources, (0..100).sum::<usize>());
        assert_eq!(comm.requests, 100);
        assert_eq!(search.nodes_visited, 100);
    }

    #[test]
    fn worker_pool_sequential_path_matches_parallel() {
        let tasks: Vec<usize> = (0..37).collect();
        let (seq, seq_comm, _) = run_parallel(&tasks, 1, |&t, comm, _| {
            comm.record_reply(t + 1);
            t + 10
        });
        let (par, par_comm, _) = run_parallel(&tasks, 8, |&t, comm, _| {
            comm.record_reply(t + 1);
            t + 10
        });
        assert_eq!(seq, par);
        assert_eq!(seq_comm, par_comm);
    }

    #[test]
    fn batch_ojsp_matches_per_query_runs() {
        let (fw, queries) = five_source_framework();
        let batch = fw.engine().run_ojsp(&queries, 5);
        assert_eq!(batch.answers.len(), queries.len());
        let mut merged = CommStats::new();
        for (query, batched) in queries.iter().zip(&batch.answers) {
            let (single, comm) = fw.ojsp(query, 5);
            assert_eq!(&single, batched);
            merged.merge(&comm);
        }
        assert_eq!(merged.total_bytes(), batch.comm.total_bytes());
        assert_eq!(merged.sources_contacted, batch.comm.sources_contacted);
    }

    #[test]
    fn batch_cjsp_matches_per_query_runs() {
        let (fw, queries) = five_source_framework();
        let batch = fw.engine().run_cjsp(&queries, 3);
        assert_eq!(batch.answers.len(), queries.len());
        let mut merged = CommStats::new();
        for (query, batched) in queries.iter().zip(&batch.answers) {
            let (single, comm) = fw.cjsp(query, 3);
            assert_eq!(&single, batched);
            merged.merge(&comm);
        }
        assert_eq!(merged.total_bytes(), batch.comm.total_bytes());
    }

    #[test]
    fn search_stats_are_threaded_through_the_engine() {
        let (fw, queries) = five_source_framework();
        let outcome = fw.engine().run_ojsp(&queries, 5);
        assert!(
            outcome.search.nodes_visited > 0,
            "engine must surface search stats"
        );
        assert!(outcome.search.exact_computations > 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (fw, _) = five_source_framework();
        let outcome = fw.engine().run_ojsp(&[], 5);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.comm.total_bytes(), 0);
        let outcome = fw.engine().run_cjsp(&[], 5);
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.comm, CommStats::new());
    }
}
