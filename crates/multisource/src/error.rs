//! The unified error hierarchy of the multi-source crate.
//!
//! Three layers, matching the three layers a request crosses:
//!
//! * [`WireError`] — a byte buffer could not be decoded into a
//!   [`Message`](crate::message::Message) (truncated, bad tag, bad varint).
//! * [`TransportError`] — a request could not be delivered to a source or
//!   its reply could not be obtained (unknown source, I/O failure, remote
//!   rejection, malformed reply).
//! * [`SearchError`] — a query batch or maintenance batch failed as a
//!   whole: bad configuration, transport failure, or a source rejecting a
//!   maintenance batch.
//!
//! Lower layers convert losslessly into higher ones (`From` impls), so the
//! public entry points — `Framework::search`, `DataCenter::apply_updates` —
//! report a single [`SearchError`] while preserving the root cause.

use std::fmt;
use std::time::Duration;

use spatial::{SourceId, SpatialError};

/// Why a byte buffer could not be decoded into a `Message`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the named field was complete.
    Truncated(&'static str),
    /// The leading message tag is not part of the protocol.
    BadTag(u8),
    /// The tag of one maintenance operation is not part of the protocol.
    BadOpTag(u8),
    /// A LEB128 varint was malformed (ran past 64 bits) while decoding the
    /// named field.
    BadVarint(&'static str),
    /// A delta-encoded cell id overflowed `u64`.
    CellOverflow,
    /// A length prefix exceeds the protocol's sanity limit.
    Oversized(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "message truncated while reading {what}"),
            WireError::BadTag(tag) => write!(f, "unknown message tag {tag}"),
            WireError::BadOpTag(tag) => write!(f, "unknown maintenance op tag {tag}"),
            WireError::BadVarint(what) => write!(f, "malformed varint in {what}"),
            WireError::CellOverflow => write!(f, "delta-encoded cell id overflowed"),
            WireError::Oversized(what) => write!(f, "{what} exceeds the protocol size limit"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a request could not be exchanged with a data source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The transport has no route to this source.
    UnknownSource(SourceId),
    /// The reply (or a frame) could not be decoded.
    Wire(WireError),
    /// Socket-level failure (connect, read, write).  The message carries the
    /// endpoint for diagnosis; `std::io::Error` itself is not `Clone`, so
    /// only its rendering survives.
    Io(String),
    /// The source answered with a protocol error message.
    Remote {
        /// Machine-readable error code (see [`crate::message`] constants).
        code: u16,
        /// Human-readable detail produced by the source.
        detail: String,
    },
    /// The source answered with a message of the wrong kind.
    UnexpectedReply(&'static str),
    /// A mutating request was sent through a shared (read-only) in-process
    /// transport; maintenance needs [`ExclusiveTransport`]
    /// (crate::transport::ExclusiveTransport) or a remote transport.
    ExclusiveRequired,
    /// The source did not reply within the configured deadline.  The call
    /// may still be executing remotely; the caller must treat the request
    /// as of unknown outcome.
    Timeout {
        /// The source that failed to reply in time.
        source: SourceId,
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The per-source in-flight cap was reached and the request could not
    /// be admitted before its deadline — the source is saturated, not
    /// broken.  Shedding here keeps a slow source from parking every
    /// caller thread.
    Backpressure {
        /// The saturated source.
        source: SourceId,
        /// The in-flight cap that was hit.
        in_flight_cap: usize,
    },
    /// Every retry attempt failed; `last` is the error of the final
    /// attempt (boxed to keep this enum's size flat).
    RetriesExhausted {
        /// How many attempts were made (initial call + retries).
        attempts: u32,
        /// The error of the final attempt.
        last: Box<TransportError>,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownSource(id) => write!(f, "no route to data source {id}"),
            TransportError::Wire(e) => write!(f, "wire decode failed: {e}"),
            TransportError::Io(detail) => write!(f, "transport I/O failed: {detail}"),
            TransportError::Remote { code, detail } => {
                write!(f, "source rejected the request (code {code}): {detail}")
            }
            TransportError::UnexpectedReply(expected) => {
                write!(
                    f,
                    "source replied with the wrong message kind (expected {expected})"
                )
            }
            TransportError::ExclusiveRequired => {
                write!(
                    f,
                    "maintenance requests need an exclusive in-process transport or a remote one"
                )
            }
            TransportError::Timeout { source, waited } => {
                write!(
                    f,
                    "source {source} did not reply within {} ms",
                    waited.as_millis()
                )
            }
            TransportError::Backpressure {
                source,
                in_flight_cap,
            } => {
                write!(
                    f,
                    "source {source} is saturated ({in_flight_cap} requests in flight)"
                )
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Why a framework configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The grid resolution θ is outside the supported `1..=31`.
    Resolution(SpatialError),
    /// The connectivity threshold δ is negative or not finite.
    Delta(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Resolution(e) => write!(f, "{e}"),
            ConfigError::Delta(d) => {
                write!(f, "connectivity threshold δ={d} must be finite and ≥ 0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a search or maintenance request failed as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The framework (or request) configuration is invalid.
    Config(ConfigError),
    /// The deployment has no source with this id.
    UnknownSource(SourceId),
    /// A request could not be exchanged with a source.
    Transport(TransportError),
    /// A source rejected a maintenance batch before applying anything (e.g.
    /// a structurally invalid dataset); nothing was mutated anywhere.
    Rejected {
        /// Human-readable reason produced by the source.
        detail: String,
    },
    /// An invariant of the engine itself was violated (worker panic, lost
    /// task slot).  Indicates a bug, not a user error.
    Internal(&'static str),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Config(e) => write!(f, "invalid configuration: {e}"),
            SearchError::UnknownSource(id) => {
                write!(f, "no data source with id {id} in the deployment")
            }
            SearchError::Transport(e) => write!(f, "{e}"),
            SearchError::Rejected { detail } => write!(f, "batch rejected: {detail}"),
            SearchError::Internal(what) => write!(f, "internal engine error: {what}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<ConfigError> for SearchError {
    fn from(e: ConfigError) -> Self {
        SearchError::Config(e)
    }
}

impl From<TransportError> for SearchError {
    fn from(e: TransportError) -> Self {
        match e {
            // An unroutable source is a deployment-level condition, not a
            // socket-level one; surface it at the top of the hierarchy.
            TransportError::UnknownSource(id) => SearchError::UnknownSource(id),
            other => SearchError::Transport(other),
        }
    }
}

impl From<WireError> for SearchError {
    fn from(e: WireError) -> Self {
        SearchError::Transport(TransportError::Wire(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_root_cause() {
        let wire = WireError::BadTag(9);
        let transport: TransportError = wire.into();
        assert_eq!(transport, TransportError::Wire(WireError::BadTag(9)));
        let search: SearchError = transport.into();
        assert!(matches!(
            search,
            SearchError::Transport(TransportError::Wire(WireError::BadTag(9)))
        ));
        // Unknown sources are hoisted to the top level.
        let search: SearchError = TransportError::UnknownSource(7).into();
        assert_eq!(search, SearchError::UnknownSource(7));
    }

    #[test]
    fn displays_are_informative() {
        for e in [
            WireError::Truncated("query cells"),
            WireError::BadTag(200),
            WireError::BadVarint("k"),
            WireError::CellOverflow,
            WireError::BadUtf8,
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert!(SearchError::Config(ConfigError::Delta(-1.0))
            .to_string()
            .contains("δ"));
        assert!(SearchError::UnknownSource(3).to_string().contains('3'));
    }

    #[test]
    fn degraded_transport_variants_stay_comparable_and_informative() {
        let timeout = TransportError::Timeout {
            source: 4,
            waited: Duration::from_millis(250),
        };
        assert_eq!(timeout, timeout.clone());
        assert!(timeout.to_string().contains("250"));

        let shed = TransportError::Backpressure {
            source: 2,
            in_flight_cap: 64,
        };
        assert!(shed.to_string().contains("64"));

        let exhausted = TransportError::RetriesExhausted {
            attempts: 3,
            last: Box::new(timeout.clone()),
        };
        assert_eq!(exhausted, exhausted.clone());
        assert!(exhausted.to_string().contains("3 attempts"));
        assert!(exhausted.to_string().contains("250"));
        // Timeouts stay transport-level when hoisted into SearchError.
        assert!(matches!(
            SearchError::from(timeout),
            SearchError::Transport(TransportError::Timeout { source: 4, .. })
        ));
    }
}
