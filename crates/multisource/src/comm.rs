//! Communication accounting: bytes transferred and transmission time.
//!
//! The paper's communication experiments (Figs. 13–14 and 19–20) report the
//! number of bytes moved between the data center and the data sources and
//! the corresponding transmission time, which is proportional to the bytes
//! under a fixed network bandwidth.  [`CommStats`] is threaded through every
//! simulated exchange and performs exactly that accounting.

use serde::{Deserialize, Serialize};

/// Configuration of the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Network bandwidth in bytes per second used to convert transferred
    /// bytes into transmission time. Default: 1 MiB/s, a deliberately modest
    /// WAN-like figure so transmission time is visible next to search time.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-message latency in milliseconds (one way).
    pub latency_ms: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_sec: 1024.0 * 1024.0,
            latency_ms: 0.5,
        }
    }
}

/// Accumulated communication statistics for one query (or one experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Bytes sent from the data center to data sources.
    pub bytes_to_sources: usize,
    /// Bytes sent from data sources back to the data center.
    pub bytes_to_center: usize,
    /// Number of request messages sent to sources.
    pub requests: usize,
    /// Number of reply messages received from sources.
    pub replies: usize,
    /// Number of sources contacted at least once.
    pub sources_contacted: usize,
}

impl CommStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_to_sources + self.bytes_to_center
    }

    /// Total messages in both directions.
    pub fn total_messages(&self) -> usize {
        self.requests + self.replies
    }

    /// Records a request of `bytes` bytes sent to a source.
    pub fn record_request(&mut self, bytes: usize) {
        self.bytes_to_sources += bytes;
        self.requests += 1;
    }

    /// Records a reply of `bytes` bytes received from a source.
    pub fn record_reply(&mut self, bytes: usize) {
        self.bytes_to_center += bytes;
        self.replies += 1;
    }

    /// Transmission time implied by the byte volume and message count under
    /// the given network configuration, in milliseconds.
    pub fn transmission_time_ms(&self, config: &CommConfig) -> f64 {
        let bandwidth = config.bandwidth_bytes_per_sec.max(1.0);
        self.total_bytes() as f64 / bandwidth * 1000.0
            + self.total_messages() as f64 * config.latency_ms
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_to_sources += other.bytes_to_sources;
        self.bytes_to_center += other.bytes_to_center;
        self.requests += other.requests;
        self.replies += other.replies;
        self.sources_contacted += other.sources_contacted;
    }
}

impl std::iter::Sum for CommStats {
    fn sum<I: Iterator<Item = CommStats>>(iter: I) -> Self {
        let mut total = CommStats::new();
        for block in iter {
            total.merge(&block);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a CommStats> for CommStats {
    fn sum<I: Iterator<Item = &'a CommStats>>(iter: I) -> Self {
        let mut total = CommStats::new();
        for block in iter {
            total.merge(block);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut s = CommStats::new();
        s.record_request(100);
        s.record_request(50);
        s.record_reply(10);
        assert_eq!(s.bytes_to_sources, 150);
        assert_eq!(s.bytes_to_center, 10);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.requests, 2);
        assert_eq!(s.replies, 1);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn transmission_time_scales_with_bytes_and_latency() {
        let config = CommConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency_ms: 2.0,
        };
        let mut s = CommStats::new();
        s.record_request(500);
        s.record_reply(500);
        // 1000 bytes at 1000 B/s = 1 s = 1000 ms, plus 2 messages * 2 ms.
        assert!((s.transmission_time_ms(&config) - 1004.0).abs() < 1e-9);
        // More bytes, more time.
        let mut bigger = s;
        bigger.record_reply(1000);
        assert!(bigger.transmission_time_ms(&config) > s.transmission_time_ms(&config));
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = CommStats::new();
        a.record_request(10);
        a.sources_contacted = 1;
        let mut b = CommStats::new();
        b.record_reply(20);
        b.sources_contacted = 2;
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.sources_contacted, 3);
        assert_eq!(a.total_messages(), 2);
    }

    #[test]
    fn sum_matches_repeated_merge() {
        let blocks: Vec<CommStats> = (1..4)
            .map(|i| {
                let mut s = CommStats::new();
                s.record_request(10 * i);
                s.record_reply(i);
                s.sources_contacted = 1;
                s
            })
            .collect();
        let by_sum: CommStats = blocks.iter().sum();
        let mut by_merge = CommStats::new();
        for b in &blocks {
            by_merge.merge(b);
        }
        assert_eq!(by_sum, by_merge);
        assert_eq!(by_sum.total_bytes(), 60 + 6);
        assert_eq!(by_sum.sources_contacted, 3);
        let owned: CommStats = blocks.into_iter().sum();
        assert_eq!(owned, by_merge);
    }

    #[test]
    fn default_config_is_sane() {
        let c = CommConfig::default();
        assert!(c.bandwidth_bytes_per_sec > 0.0);
        assert!(c.latency_ms >= 0.0);
        let s = CommStats::new();
        assert_eq!(s.transmission_time_ms(&c), 0.0);
    }
}
