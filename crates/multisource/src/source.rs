//! A data source: an autonomous holder of spatial datasets with its own
//! local index, answering the data center's query messages.

use dits::{
    coverage_search, overlap_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig,
    SearchStats, SourceSummary,
};
use spatial::{CellSet, Grid, SourceId, SpatialDataset};

use crate::message::{CoverageCandidate, Message};

/// One autonomous data source of the multi-source framework.
#[derive(Debug, Clone)]
pub struct DataSource {
    /// The source's identifier.
    pub id: SourceId,
    /// Human-readable name (portal name).
    pub name: String,
    grid: Grid,
    index: DitsLocal,
    dataset_nodes: Vec<DatasetNode>,
}

impl DataSource {
    /// Builds a data source from raw datasets: grids them at the source's own
    /// resolution and constructs the local DITS-L index.
    pub fn build(
        id: SourceId,
        name: impl Into<String>,
        grid: Grid,
        datasets: &[SpatialDataset],
        config: DitsLocalConfig,
    ) -> Self {
        let dataset_nodes: Vec<DatasetNode> = datasets
            .iter()
            .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
            .collect();
        let index = DitsLocal::build(dataset_nodes.clone(), config);
        Self {
            id,
            name: name.into(),
            grid,
            index,
            dataset_nodes,
        }
    }

    /// The source's grid (each source may pick its own resolution).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The source's local index.
    pub fn index(&self) -> &DitsLocal {
        &self.index
    }

    /// Mutable access to the local index (used by maintenance experiments).
    pub fn index_mut(&mut self) -> &mut DitsLocal {
        &mut self.index
    }

    /// The dataset nodes held by the source (used by the SG baseline, which
    /// scans the raw collection instead of an index).
    pub fn dataset_nodes(&self) -> &[DatasetNode] {
        &self.dataset_nodes
    }

    /// Number of indexed datasets.
    pub fn dataset_count(&self) -> usize {
        self.index.dataset_count()
    }

    /// The root summary uploaded to the data center after index construction.
    pub fn summary(&self) -> SourceSummary {
        SourceSummary::from_local_root(self.id, &self.grid, self.index.root_geometry())
    }

    /// Grids a query dataset with this source's own resolution.
    pub fn grid_query(&self, query: &SpatialDataset) -> CellSet {
        CellSet::from_points(&self.grid, &query.points)
    }

    /// Handles one request message, producing the reply the source would put
    /// on the wire.  Unknown request types yield `None`.
    pub fn handle(&self, request: &Message) -> Option<Message> {
        self.handle_with_stats(request).map(|(reply, _)| reply)
    }

    /// Handles one request message, additionally returning the local search
    /// statistics of the run.  The statistics never travel on the wire (they
    /// are a per-source instrumentation channel, not part of the protocol),
    /// which keeps the byte accounting identical to [`handle`](Self::handle).
    ///
    /// Takes `&self` only: sources answer concurrent requests from the query
    /// engine's worker threads without any synchronisation.
    pub fn handle_with_stats(&self, request: &Message) -> Option<(Message, SearchStats)> {
        match request {
            Message::OverlapQuery { query, k } => {
                let (results, stats) = overlap_search(&self.index, query, *k);
                Some((
                    Message::OverlapReply {
                        source: self.id,
                        results,
                    },
                    stats,
                ))
            }
            Message::CoverageQuery { query, k, delta } => {
                let (result, stats) =
                    coverage_search(&self.index, query, CoverageConfig::new(*k, *delta));
                let candidates = result
                    .datasets
                    .iter()
                    .filter_map(|id| {
                        self.index
                            .find_dataset(*id)
                            .map(|(_, node)| CoverageCandidate {
                                source: self.id,
                                dataset: *id,
                                cells: node.cells.clone(),
                            })
                    })
                    .collect();
                Some((
                    Message::CoverageReply {
                        source: self.id,
                        candidates,
                    },
                    stats,
                ))
            }
            Message::OverlapReply { .. } | Message::CoverageReply { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::Point;

    fn source_with_routes() -> DataSource {
        let grid = Grid::global(10).unwrap();
        let datasets: Vec<SpatialDataset> = (0..20)
            .map(|i| {
                let base_lon = -77.0 + (i as f64) * 0.3;
                let points: Vec<Point> = (0..10)
                    .map(|j| Point::new(base_lon + j as f64 * 0.02, 38.9 + j as f64 * 0.01))
                    .collect();
                SpatialDataset::new(i, points)
            })
            .collect();
        DataSource::build(
            1,
            "test-source",
            grid,
            &datasets,
            DitsLocalConfig::default(),
        )
    }

    #[test]
    fn build_indexes_all_nonempty_datasets() {
        let s = source_with_routes();
        assert_eq!(s.dataset_count(), 20);
        assert_eq!(s.dataset_nodes().len(), 20);
        assert_eq!(s.id, 1);
        assert_eq!(s.name, "test-source");
        let summary = s.summary();
        assert_eq!(summary.source, 1);
        assert_eq!(summary.resolution, 10);
    }

    #[test]
    fn handles_overlap_query() {
        let s = source_with_routes();
        let query =
            SpatialDataset::new(99, vec![Point::new(-77.0, 38.9), Point::new(-76.9, 38.95)]);
        let cells = s.grid_query(&query);
        assert!(!cells.is_empty());
        let reply = s
            .handle(&Message::OverlapQuery { query: cells, k: 5 })
            .unwrap();
        match reply {
            Message::OverlapReply { source, results } => {
                assert_eq!(source, 1);
                assert!(!results.is_empty());
                assert!(results.len() <= 5);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn handles_coverage_query() {
        let s = source_with_routes();
        let query = SpatialDataset::new(99, vec![Point::new(-77.0, 38.9)]);
        let cells = s.grid_query(&query);
        let reply = s
            .handle(&Message::CoverageQuery {
                query: cells,
                k: 3,
                delta: 10.0,
            })
            .unwrap();
        match reply {
            Message::CoverageReply { source, candidates } => {
                assert_eq!(source, 1);
                assert!(candidates.len() <= 3);
                for c in &candidates {
                    assert_eq!(c.source, 1);
                    assert!(!c.cells.is_empty());
                }
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn replies_are_not_handled_as_requests() {
        let s = source_with_routes();
        assert!(s
            .handle(&Message::OverlapReply {
                source: 0,
                results: vec![]
            })
            .is_none());
        assert!(s
            .handle(&Message::CoverageReply {
                source: 0,
                candidates: vec![]
            })
            .is_none());
    }

    #[test]
    fn index_mut_allows_maintenance() {
        let mut s = source_with_routes();
        let node = s.dataset_nodes()[0].clone();
        assert!(s.index_mut().delete(node.id));
        assert_eq!(s.dataset_count(), 19);
        assert!(s.index_mut().insert(node));
        assert_eq!(s.dataset_count(), 20);
    }
}
