//! A data source: an autonomous holder of spatial datasets with its own
//! local index, answering the data center's query messages and applying the
//! center's maintenance batches (Appendix IX-C at deployment scale).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dits::{
    coverage_search, coverage_search_batch, nearest_datasets, overlap_search, overlap_search_batch,
    take_phase_timings, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig, MaintenanceStats,
    PhaseTimings, SearchStats, SourceSummary,
};
use spatial::{CellSet, DatasetId, Grid, SourceId, SpatialDataset, SpatialError};

use crate::message::{CoverageCandidate, Message, UpdateOp, ERR_REJECTED_BATCH, ERR_UNSUPPORTED};
use crate::transport::ServedReply;

/// The request kinds a source counts separately (the `kind` label of
/// `source_requests_total`).
const REQUEST_KINDS: [&str; 7] = [
    "overlap",
    "coverage",
    "knn",
    "maintenance",
    "summary",
    "metrics",
    "other",
];

fn request_kind_index(request: &Message) -> usize {
    match request {
        Message::OverlapQuery { .. } | Message::OverlapBatchQuery { .. } => 0,
        Message::CoverageQuery { .. } | Message::CoverageBatchQuery { .. } => 1,
        Message::KnnQuery { .. } => 2,
        Message::ApplyUpdates { ops } if !ops.is_empty() => 3,
        Message::ApplyUpdates { .. } => 4,
        Message::MetricsQuery => 5,
        _ => 6,
    }
}

/// A data source's observability registry, pre-wired with the instruments
/// every source maintains: per-kind request counters, a log₂ histogram of
/// service time, cumulative traversal/verification phase counters and a
/// dataset-count gauge.  The spatial crate's process-global intersection
/// kernel counters are folded in as gauges at snapshot time.
///
/// `Clone` shares the underlying registry (the handles are `Arc`s), so
/// clones of a [`DataSource`] — e.g. the copy handed to a
/// [`SourceServer`](crate::SourceServer) — report into one registry.
#[derive(Debug, Clone)]
pub struct SourceMetrics {
    registry: Arc<obs::MetricsRegistry>,
    requests: [obs::Counter; REQUEST_KINDS.len()],
    service_nanos: obs::Histogram,
    traversal_nanos: obs::Counter,
    verify_nanos: obs::Counter,
    datasets: obs::Gauge,
    kernel_calls: [obs::Gauge; 3],
}

impl SourceMetrics {
    fn new() -> Self {
        let registry = Arc::new(obs::MetricsRegistry::new());
        let requests = std::array::from_fn(|i| {
            let kind = REQUEST_KINDS.get(i).copied().unwrap_or("other");
            registry.counter("source_requests_total", &[("kind", kind)])
        });
        let service_nanos = registry.histogram("source_service_nanos", &[]);
        let traversal_nanos = registry.counter("source_phase_nanos", &[("phase", "traversal")]);
        let verify_nanos = registry.counter("source_phase_nanos", &[("phase", "verify")]);
        let datasets = registry.gauge("source_datasets", &[]);
        let kernel_calls = [
            registry.gauge("spatial_kernel_calls", &[("kernel", "packed")]),
            registry.gauge("spatial_kernel_calls", &[("kernel", "linear")]),
            registry.gauge("spatial_kernel_calls", &[("kernel", "galloping")]),
        ];
        Self {
            registry,
            requests,
            service_nanos,
            traversal_nanos,
            verify_nanos,
            datasets,
            kernel_calls,
        }
    }

    /// The underlying registry (register additional instruments, render
    /// exporters).
    pub fn registry(&self) -> &obs::MetricsRegistry {
        &self.registry
    }

    fn record(&self, request: &Message, service: Duration, phases: PhaseTimings) {
        if let Some(counter) = self.requests.get(request_kind_index(request)) {
            counter.inc();
        }
        self.service_nanos.observe(service.as_nanos() as u64);
        if phases.traversal > Duration::ZERO {
            self.traversal_nanos.add(phases.traversal.as_nanos() as u64);
        }
        if phases.verify > Duration::ZERO {
            self.verify_nanos.add(phases.verify.as_nanos() as u64);
        }
    }
}

/// A maintenance operation whose dataset has already been gridded — the
/// validated form [`DataSource::apply_updates`] executes.
enum PreparedOp {
    Insert(DatasetNode),
    Update(DatasetNode),
    Delete(DatasetId),
}

/// One autonomous data source of the multi-source framework.
#[derive(Debug, Clone)]
pub struct DataSource {
    /// The source's identifier.
    pub id: SourceId,
    /// Human-readable name (portal name).
    pub name: String,
    grid: Grid,
    index: DitsLocal,
    dataset_nodes: Vec<DatasetNode>,
    metrics: SourceMetrics,
}

impl DataSource {
    /// Builds a data source from raw datasets: grids them at the source's own
    /// resolution and constructs the local DITS-L index.
    pub fn build(
        id: SourceId,
        name: impl Into<String>,
        grid: Grid,
        datasets: &[SpatialDataset],
        config: DitsLocalConfig,
    ) -> Self {
        let dataset_nodes: Vec<DatasetNode> = datasets
            .iter()
            .filter_map(|d| DatasetNode::from_dataset(&grid, d).ok())
            .collect();
        let index = DitsLocal::build(dataset_nodes.clone(), config);
        Self {
            id,
            name: name.into(),
            grid,
            index,
            dataset_nodes,
            metrics: SourceMetrics::new(),
        }
    }

    /// The source's observability registry handles.
    pub fn metrics(&self) -> &SourceMetrics {
        &self.metrics
    }

    /// A point-in-time snapshot of the source's metrics registry — what a
    /// [`Message::MetricsQuery`] is answered with.  Gauges (dataset count,
    /// the process-global intersection-kernel dispatch counters) are
    /// refreshed here, immediately before the registry is read.
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        self.metrics.datasets.set(self.index.dataset_count() as f64);
        let kernels = spatial::kernel_counters();
        let [packed, linear, galloping] = &self.metrics.kernel_calls;
        packed.set(kernels.packed as f64);
        linear.set(kernels.linear as f64);
        galloping.set(kernels.galloping as f64);
        self.metrics.registry.snapshot()
    }

    /// The source's grid (each source may pick its own resolution).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The source's local index.
    pub fn index(&self) -> &DitsLocal {
        &self.index
    }

    /// Applies a batch of maintenance operations to the local index.
    ///
    /// The batch is *validated before anything mutates*: every insert/update
    /// dataset is gridded up front, so a structurally invalid dataset (e.g.
    /// an empty one, which has no MBR and can never be indexed) returns
    /// [`SpatialError`] with the index untouched.  Individually impossible
    /// operations — inserting a duplicate id, updating or deleting a missing
    /// id — are not errors: they are skipped and counted in
    /// [`MaintenanceStats::rejected`], matching the idempotent semantics a
    /// replayed maintenance log needs.
    ///
    /// On success, returns the source's refreshed root summary (what the
    /// data center folds into DITS-G) plus the maintenance statistics.
    pub fn apply_updates(
        &mut self,
        ops: &[UpdateOp],
    ) -> Result<(SourceSummary, MaintenanceStats), SpatialError> {
        let mut prepared = Vec::with_capacity(ops.len());
        for op in ops {
            prepared.push(match op {
                UpdateOp::Insert(d) => {
                    PreparedOp::Insert(DatasetNode::from_dataset(&self.grid, d)?)
                }
                UpdateOp::Update(d) => {
                    PreparedOp::Update(DatasetNode::from_dataset(&self.grid, d)?)
                }
                UpdateOp::Delete(id) => PreparedOp::Delete(*id),
            });
        }
        let mut stats = MaintenanceStats::new();
        // The raw-collection cache (scanned by the index-free baselines) is
        // maintained op by op — one clone per *applied* operation — rather
        // than rebuilt from the index per batch, which would cost a clone
        // of every indexed cell set no matter how small the batch.
        for op in prepared {
            match op {
                PreparedOp::Insert(node) => {
                    if self.index.insert_with_stats(node.clone(), &mut stats) {
                        self.dataset_nodes.push(node);
                    } else {
                        stats.rejected += 1;
                    }
                }
                PreparedOp::Update(node) => {
                    if self.index.update_with_stats(node.clone(), &mut stats) {
                        // The cache mirrors the index, so the id is present;
                        // resync by appending if it ever is not (a request
                        // handler must stay total).
                        let pos = self.dataset_nodes.iter().position(|e| e.id == node.id);
                        debug_assert!(pos.is_some(), "cache is in sync with the index");
                        match pos.and_then(|p| self.dataset_nodes.get_mut(p)) {
                            Some(slot) => *slot = node,
                            None => self.dataset_nodes.push(node),
                        }
                    } else {
                        stats.rejected += 1;
                    }
                }
                PreparedOp::Delete(id) => {
                    if self.index.delete_with_stats(id, &mut stats) {
                        let pos = self.dataset_nodes.iter().position(|e| e.id == id);
                        debug_assert!(pos.is_some(), "cache is in sync with the index");
                        if let Some(pos) = pos {
                            self.dataset_nodes.swap_remove(pos);
                        }
                    } else {
                        stats.rejected += 1;
                    }
                }
            }
            // Debug-build hardening: validate DITS-L after every applied op
            // (not just the batch) so a violation is pinned to the op that
            // introduced it.
            #[cfg(debug_assertions)]
            debug_assert_eq!(self.index.check_invariants(), Ok(()));
        }
        debug_assert_eq!(self.index.check_invariants(), Ok(()));
        Ok((self.summary(), stats))
    }

    /// Handles one maintenance request, producing the
    /// [`Message::SummaryRefresh`] acknowledgement the source would put on
    /// the wire plus the off-wire maintenance statistics.  Non-maintenance
    /// messages yield `None`.
    pub fn handle_maintenance(
        &mut self,
        request: &Message,
    ) -> Option<Result<(Message, MaintenanceStats), SpatialError>> {
        let Message::ApplyUpdates { ops } = request else {
            return None;
        };
        Some(self.apply_updates(ops).map(|(summary, stats)| {
            (
                Message::SummaryRefresh {
                    summary,
                    dataset_count: self.index.dataset_count() as u64,
                    applied: stats.applied() as u64,
                    rejected: stats.rejected as u64,
                },
                stats,
            )
        }))
    }

    /// The dataset nodes held by the source (used by the SG baseline, which
    /// scans the raw collection instead of an index).
    pub fn dataset_nodes(&self) -> &[DatasetNode] {
        &self.dataset_nodes
    }

    /// Number of indexed datasets.
    pub fn dataset_count(&self) -> usize {
        self.index.dataset_count()
    }

    /// The root summary uploaded to the data center after index construction.
    pub fn summary(&self) -> SourceSummary {
        SourceSummary::from_local_root(self.id, &self.grid, self.index.root_geometry())
    }

    /// The [`Message::SummaryRefresh`] this source would answer to a
    /// read-only summary poll (an empty [`Message::ApplyUpdates`] batch):
    /// the current root summary, the current dataset count, nothing applied.
    ///
    /// Takes `&self` — polling never mutates, which lets the shared
    /// (lock-free) in-process transport bootstrap a data center.
    pub fn summary_message(&self) -> Message {
        Message::SummaryRefresh {
            summary: self.summary(),
            dataset_count: self.index.dataset_count() as u64,
            applied: 0,
            rejected: 0,
        }
    }

    /// Grids a query dataset with this source's own resolution.
    pub fn grid_query(&self, query: &SpatialDataset) -> CellSet {
        CellSet::from_points(&self.grid, &query.points)
    }

    /// Handles one request message, producing the reply the source would put
    /// on the wire.  Unknown request types yield `None`.
    pub fn handle(&self, request: &Message) -> Option<Message> {
        self.handle_with_stats(request).map(|(reply, _)| reply)
    }

    /// Handles one request message, additionally returning the local search
    /// statistics of the run.  The statistics never travel on the wire (they
    /// are a per-source instrumentation channel, not part of the protocol),
    /// which keeps the byte accounting identical to [`handle`](Self::handle).
    ///
    /// Takes `&self` only: sources answer concurrent requests from the query
    /// engine's worker threads without any synchronisation.
    pub fn handle_with_stats(&self, request: &Message) -> Option<(Message, SearchStats)> {
        match request {
            Message::OverlapQuery { query, k } => {
                let (results, stats) = overlap_search(&self.index, query, *k);
                Some((
                    Message::OverlapReply {
                        source: self.id,
                        results,
                    },
                    stats,
                ))
            }
            Message::CoverageQuery { query, k, delta } => {
                let (result, stats) =
                    coverage_search(&self.index, query, CoverageConfig::new(*k, *delta));
                let candidates = result
                    .datasets
                    .iter()
                    .filter_map(|id| {
                        self.index
                            .find_dataset(*id)
                            .map(|(_, node)| CoverageCandidate {
                                source: self.id,
                                dataset: *id,
                                cells: node.cells.clone(),
                            })
                    })
                    .collect();
                Some((
                    Message::CoverageReply {
                        source: self.id,
                        candidates,
                    },
                    stats,
                ))
            }
            Message::KnnQuery { query, k } => {
                let (neighbors, stats) = nearest_datasets(&self.index, query, *k);
                Some((
                    Message::KnnReply {
                        source: self.id,
                        neighbors,
                    },
                    stats,
                ))
            }
            Message::OverlapBatchQuery { queries, k } => {
                // One shared frontier walk answers the whole batch; the reply
                // carries the per-query results in query order and the stats
                // channel reports the batch total (the per-query stats sum,
                // so per-query and batched shard modes agree on aggregates).
                let mut merged = SearchStats::new();
                let results = overlap_search_batch(&self.index, queries, *k)
                    .into_iter()
                    .map(|(results, stats)| {
                        merged.merge(&stats);
                        results
                    })
                    .collect();
                Some((
                    Message::OverlapBatchReply {
                        source: self.id,
                        results,
                    },
                    merged,
                ))
            }
            Message::CoverageBatchQuery { queries, k, delta } => {
                let mut merged = SearchStats::new();
                let candidates =
                    coverage_search_batch(&self.index, queries, CoverageConfig::new(*k, *delta))
                        .into_iter()
                        .map(|(result, stats)| {
                            merged.merge(&stats);
                            result
                                .datasets
                                .iter()
                                .filter_map(|id| {
                                    self.index.find_dataset(*id).map(|(_, node)| {
                                        CoverageCandidate {
                                            source: self.id,
                                            dataset: *id,
                                            cells: node.cells.clone(),
                                        }
                                    })
                                })
                                .collect()
                        })
                        .collect();
                Some((
                    Message::CoverageBatchReply {
                        source: self.id,
                        candidates,
                    },
                    merged,
                ))
            }
            // Maintenance requests need `&mut self` and flow through
            // [`Self::handle_maintenance`], metrics scrapes through
            // [`Self::serve_readonly`]; replies are never requests.
            Message::ApplyUpdates { .. }
            | Message::MetricsQuery
            | Message::OverlapReply { .. }
            | Message::CoverageReply { .. }
            | Message::SummaryRefresh { .. }
            | Message::KnnReply { .. }
            | Message::OverlapBatchReply { .. }
            | Message::CoverageBatchReply { .. }
            | Message::MetricsSnapshot { .. }
            | Message::Error { .. } => None,
        }
    }

    /// The one-stop request dispatcher every transport server uses: query
    /// messages go through [`Self::handle_with_stats`], maintenance batches
    /// through [`Self::handle_maintenance`], and anything unservable —
    /// including a transactionally rejected batch — becomes a
    /// [`Message::Error`] reply instead of a dropped connection.  This is
    /// what makes a source behave *identically* behind the in-process
    /// transport and behind a TCP socket.
    pub fn serve(&mut self, request: &Message) -> ServedReply {
        match request {
            Message::ApplyUpdates { ops } if !ops.is_empty() => {
                // Discard any phase residue a non-serve caller left on this
                // thread, so the drain in `finish` sees only this request.
                let _ = take_phase_timings();
                let started = Instant::now();
                let reply = match self.handle_maintenance(request) {
                    Some(Ok((reply, stats))) => ServedReply::maintenance(reply, stats),
                    Some(Err(e)) => ServedReply::plain(Message::Error {
                        code: ERR_REJECTED_BATCH,
                        detail: e.to_string(),
                    }),
                    // Unreachable: the match arm guarantees a maintenance
                    // request, but stay total instead of panicking.
                    None => ServedReply::plain(Message::Error {
                        code: ERR_UNSUPPORTED,
                        detail: "not a maintenance request".to_string(),
                    }),
                };
                self.finish(request, started, reply)
            }
            other => self.serve_readonly(other),
        }
    }

    /// The read-only half of [`Self::serve`]: summary polls, metrics
    /// scrapes and query messages, which never mutate the index.  Both
    /// in-process transports and the TCP server's read path dispatch through
    /// this single function, so the protocols cannot drift apart.
    pub fn serve_readonly(&self, request: &Message) -> ServedReply {
        // Discard any phase residue a non-serve caller left on this thread,
        // so the drain in `finish` sees only this request.
        let _ = take_phase_timings();
        let started = Instant::now();
        let reply = match request {
            Message::ApplyUpdates { ops } if ops.is_empty() => {
                ServedReply::plain(self.summary_message())
            }
            Message::ApplyUpdates { .. } => ServedReply::plain(Message::Error {
                code: ERR_UNSUPPORTED,
                detail: "mutating maintenance needs exclusive access".to_string(),
            }),
            Message::MetricsQuery => ServedReply::plain(Message::MetricsSnapshot {
                source: self.id,
                snapshot: self.metrics_snapshot(),
            }),
            other => match self.handle_with_stats(other) {
                Some((reply, stats)) => ServedReply::search(reply, stats),
                None => ServedReply::plain(Message::Error {
                    code: ERR_UNSUPPORTED,
                    detail: "request kind not served by a data source".to_string(),
                }),
            },
        };
        self.finish(request, started, reply)
    }

    /// Completes a served request: measures the service time, drains the
    /// thread-local traversal/verification phase clock the search left
    /// behind, records both into the source's metrics registry and attaches
    /// them to the reply so they can ride the frame next to the statistics.
    fn finish(&self, request: &Message, started: Instant, reply: ServedReply) -> ServedReply {
        let service = started.elapsed();
        let phases = take_phase_timings();
        self.metrics.record(request, service, phases);
        reply.with_timing(service, phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::Point;

    fn source_with_routes() -> DataSource {
        let grid = Grid::global(10).unwrap();
        let datasets: Vec<SpatialDataset> = (0..20)
            .map(|i| {
                let base_lon = -77.0 + (i as f64) * 0.3;
                let points: Vec<Point> = (0..10)
                    .map(|j| Point::new(base_lon + j as f64 * 0.02, 38.9 + j as f64 * 0.01))
                    .collect();
                SpatialDataset::new(i, points)
            })
            .collect();
        DataSource::build(
            1,
            "test-source",
            grid,
            &datasets,
            DitsLocalConfig::default(),
        )
    }

    #[test]
    fn build_indexes_all_nonempty_datasets() {
        let s = source_with_routes();
        assert_eq!(s.dataset_count(), 20);
        assert_eq!(s.dataset_nodes().len(), 20);
        assert_eq!(s.id, 1);
        assert_eq!(s.name, "test-source");
        let summary = s.summary();
        assert_eq!(summary.source, 1);
        assert_eq!(summary.resolution, 10);
    }

    #[test]
    fn handles_overlap_query() {
        let s = source_with_routes();
        let query =
            SpatialDataset::new(99, vec![Point::new(-77.0, 38.9), Point::new(-76.9, 38.95)]);
        let cells = s.grid_query(&query);
        assert!(!cells.is_empty());
        let reply = s
            .handle(&Message::OverlapQuery { query: cells, k: 5 })
            .unwrap();
        match reply {
            Message::OverlapReply { source, results } => {
                assert_eq!(source, 1);
                assert!(!results.is_empty());
                assert!(results.len() <= 5);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn handles_coverage_query() {
        let s = source_with_routes();
        let query = SpatialDataset::new(99, vec![Point::new(-77.0, 38.9)]);
        let cells = s.grid_query(&query);
        let reply = s
            .handle(&Message::CoverageQuery {
                query: cells,
                k: 3,
                delta: 10.0,
            })
            .unwrap();
        match reply {
            Message::CoverageReply { source, candidates } => {
                assert_eq!(source, 1);
                assert!(candidates.len() <= 3);
                for c in &candidates {
                    assert_eq!(c.source, 1);
                    assert!(!c.cells.is_empty());
                }
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn batch_queries_match_per_query_replies_and_summed_stats() {
        let s = source_with_routes();
        let queries: Vec<CellSet> = [
            vec![Point::new(-77.0, 38.9), Point::new(-76.9, 38.95)],
            vec![Point::new(-76.0, 38.92)],
            vec![], // empty query rides along without disturbing the batch
            vec![Point::new(-75.0, 38.95), Point::new(-74.8, 39.0)],
        ]
        .into_iter()
        .enumerate()
        .map(|(i, pts)| s.grid_query(&SpatialDataset::new(100 + i as u32, pts)))
        .collect();

        // Overlap: the batched reply must be the per-query replies in query
        // order, and the batch stats must be the per-query sum.
        let (batch_reply, batch_stats) = s
            .handle_with_stats(&Message::OverlapBatchQuery {
                queries: queries.clone(),
                k: 5,
            })
            .unwrap();
        let mut expected_stats = SearchStats::new();
        let mut expected_results = Vec::new();
        for q in &queries {
            let (reply, stats) = s
                .handle_with_stats(&Message::OverlapQuery {
                    query: q.clone(),
                    k: 5,
                })
                .unwrap();
            expected_stats.merge(&stats);
            match reply {
                Message::OverlapReply { results, .. } => expected_results.push(results),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(
            batch_reply,
            Message::OverlapBatchReply {
                source: 1,
                results: expected_results,
            }
        );
        assert_eq!(batch_stats, expected_stats);

        // Coverage: same contract.
        let (batch_reply, batch_stats) = s
            .handle_with_stats(&Message::CoverageBatchQuery {
                queries: queries.clone(),
                k: 3,
                delta: 10.0,
            })
            .unwrap();
        let mut expected_stats = SearchStats::new();
        let mut expected_candidates = Vec::new();
        for q in &queries {
            let (reply, stats) = s
                .handle_with_stats(&Message::CoverageQuery {
                    query: q.clone(),
                    k: 3,
                    delta: 10.0,
                })
                .unwrap();
            expected_stats.merge(&stats);
            match reply {
                Message::CoverageReply { candidates, .. } => expected_candidates.push(candidates),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(
            batch_reply,
            Message::CoverageBatchReply {
                source: 1,
                candidates: expected_candidates,
            }
        );
        assert_eq!(batch_stats, expected_stats);
    }

    #[test]
    fn replies_are_not_handled_as_requests() {
        let s = source_with_routes();
        assert!(s
            .handle(&Message::OverlapReply {
                source: 0,
                results: vec![]
            })
            .is_none());
        assert!(s
            .handle(&Message::CoverageReply {
                source: 0,
                candidates: vec![]
            })
            .is_none());
    }

    #[test]
    fn apply_updates_maintains_index_and_cache() {
        let mut s = source_with_routes();
        let old_summary = s.summary();
        let ops = vec![
            UpdateOp::Delete(0),
            UpdateOp::Insert(SpatialDataset::new(
                500,
                vec![Point::new(-50.0, 10.0), Point::new(-49.9, 10.1)],
            )),
            // Rejected: the id was just deleted.
            UpdateOp::Update(SpatialDataset::new(0, vec![Point::new(1.0, 1.0)])),
        ];
        let (summary, stats) = s.apply_updates(&ops).unwrap();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(s.dataset_count(), 20);
        // The cached raw collection tracked the mutation.
        assert!(s.dataset_nodes().iter().any(|n| n.id == 500));
        assert!(s.dataset_nodes().iter().all(|n| n.id != 0));
        // The summary reflects the new root geometry (the inserted dataset
        // lies far east of the original routes).
        assert!(summary.geometry.rect.max.x > old_summary.geometry.rect.max.x);
    }

    #[test]
    fn empty_dataset_rejects_the_whole_batch() {
        let mut s = source_with_routes();
        let before = s.dataset_count();
        let ops = vec![
            UpdateOp::Delete(1),
            UpdateOp::Insert(SpatialDataset::new(600, vec![])),
        ];
        let err = s.apply_updates(&ops).unwrap_err();
        assert_eq!(err, SpatialError::EmptyDataset);
        // Transactional: the valid delete before the invalid insert did not
        // run either.
        assert_eq!(s.dataset_count(), before);
        assert!(s.index().find_dataset(1).is_some());
    }

    #[test]
    fn handle_maintenance_produces_summary_refresh() {
        let mut s = source_with_routes();
        let request = Message::ApplyUpdates {
            ops: vec![UpdateOp::Delete(3), UpdateOp::Delete(999_999)],
        };
        let (reply, stats) = s.handle_maintenance(&request).unwrap().unwrap();
        match reply {
            Message::SummaryRefresh {
                summary,
                dataset_count,
                applied,
                rejected,
            } => {
                assert_eq!(summary.source, 1);
                assert_eq!(dataset_count, 19);
                assert_eq!(applied, 1);
                assert_eq!(rejected, 1);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(stats.deletes, 1);
        // Query messages are not maintenance.
        assert!(s
            .handle_maintenance(&Message::OverlapQuery {
                query: CellSet::new(),
                k: 1
            })
            .is_none());
    }
}
