//! The data center: global routing, query distribution and result
//! aggregation (Sections IV and VI-A).

use dits::{DitsGlobal, OverlapResult};
use spatial::distance::NeighborProbe;
use spatial::{CellSet, DatasetId, Mbr, Point, SourceId, SpatialDataset};

use crate::comm::CommStats;
use crate::message::{CoverageCandidate, Message};
use crate::source::DataSource;

/// How the data center distributes a query to the data sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionStrategy {
    /// Send the whole query to every source (what the index-less baselines
    /// do: no global index, no clipping).
    Broadcast,
    /// Use DITS-G to contact only candidate sources, but still send the
    /// whole query to each of them (first strategy only).
    Pruned,
    /// Use DITS-G to select candidate sources *and* clip the query to the
    /// region that can intersect each source (both strategies — the paper's
    /// full query-distribution scheme).
    PrunedClipped,
}

/// Aggregated OJSP answer: the global top-k across all sources.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedOverlap {
    /// `(source, dataset, overlap)` triples sorted by decreasing overlap.
    pub results: Vec<(SourceId, OverlapResult)>,
}

/// Aggregated CJSP answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedCoverage {
    /// Selected `(source, dataset)` pairs in greedy order.
    pub selected: Vec<(SourceId, DatasetId)>,
    /// Total coverage `|S_Q ∪ (∪ selected)|` in cells.
    pub coverage: usize,
    /// Coverage of the query alone.
    pub query_coverage: usize,
}

/// The data center of the multi-source framework.
#[derive(Debug, Clone)]
pub struct DataCenter {
    global: DitsGlobal,
    /// Connectivity slack used when routing CJSP queries, in degrees of
    /// longitude/latitude (δ converted from cells by the framework).
    delta_lonlat: f64,
}

impl DataCenter {
    /// Builds the data center's global index from the sources' uploaded root
    /// summaries.
    pub fn build(sources: &[DataSource], leaf_capacity: usize, delta_lonlat: f64) -> Self {
        let summaries = sources.iter().map(|s| s.summary()).collect();
        Self {
            global: DitsGlobal::build(summaries, leaf_capacity),
            delta_lonlat,
        }
    }

    /// The global index (exposed for inspection / experiments).
    pub fn global(&self) -> &DitsGlobal {
        &self.global
    }

    /// Runs the multi-source overlap joinable search.
    ///
    /// Returns the aggregated global top-`k` together with the communication
    /// statistics of the exchange.
    pub fn ojsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        strategy: DistributionStrategy,
    ) -> (AggregatedOverlap, CommStats) {
        let mut comm = CommStats::new();
        let mut all: Vec<(SourceId, OverlapResult)> = Vec::new();
        let targets = self.route(sources, query, 0.0, strategy);
        comm.sources_contacted = targets.len();

        for source in targets {
            let Some(query_cells) = self.prepare_query(source, query, 0.0, strategy) else {
                continue;
            };
            if query_cells.is_empty() {
                continue;
            }
            let request = Message::OverlapQuery { query: query_cells, k };
            comm.record_request(request.wire_size());
            let Some(reply) = source.handle(&request) else { continue };
            comm.record_reply(reply.wire_size());
            if let Message::OverlapReply { source: sid, results } = reply {
                all.extend(results.into_iter().map(|r| (sid, r)));
            }
        }

        all.sort_unstable_by(|a, b| {
            b.1.overlap
                .cmp(&a.1.overlap)
                .then(a.0.cmp(&b.0))
                .then(a.1.dataset.cmp(&b.1.dataset))
        });
        all.truncate(k);
        (AggregatedOverlap { results: all }, comm)
    }

    /// Runs the multi-source coverage joinable search.
    ///
    /// Each candidate source returns its local greedy candidates (with their
    /// cells); the data center then runs the final greedy selection across
    /// sources, enforcing spatial connectivity with the query.  All sources
    /// are assumed to share the query's grid resolution for the cell-level
    /// aggregation (the per-run setting used throughout the paper's
    /// experiments).
    pub fn cjsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> (AggregatedCoverage, CommStats) {
        let mut comm = CommStats::new();
        let targets = self.route(sources, query, self.delta_lonlat, strategy);
        comm.sources_contacted = targets.len();

        let mut candidates: Vec<CoverageCandidate> = Vec::new();
        let mut query_cells_any: Option<CellSet> = None;
        for source in targets {
            let Some(query_cells) = self.prepare_query(source, query, delta_cells, strategy)
            else {
                continue;
            };
            if query_cells.is_empty() {
                continue;
            }
            if query_cells_any.is_none() {
                // The un-clipped query in the shared grid, used for the final
                // aggregation at the center.
                query_cells_any = Some(source.grid_query(query));
            }
            let request = Message::CoverageQuery { query: query_cells, k, delta: delta_cells };
            comm.record_request(request.wire_size());
            let Some(reply) = source.handle(&request) else { continue };
            comm.record_reply(reply.wire_size());
            if let Message::CoverageReply { candidates: mut c, .. } = reply {
                candidates.append(&mut c);
            }
        }

        let query_cells = query_cells_any.unwrap_or_default();
        let query_coverage = query_cells.len();
        let mut merged = query_cells;
        let mut selected: Vec<(SourceId, DatasetId)> = Vec::new();
        let mut remaining: Vec<CoverageCandidate> = candidates;
        while selected.len() < k && !remaining.is_empty() {
            let probe = NeighborProbe::new(&merged);
            let mut best: Option<(usize, usize)> = None; // (index, gain)
            for (i, cand) in remaining.iter().enumerate() {
                if !probe.within(&cand.cells, delta_cells) {
                    continue;
                }
                let gain = cand.cells.marginal_gain(&merged);
                let wins = match best {
                    None => true,
                    Some((bi, bg)) => {
                        gain > bg
                            || (gain == bg
                                && (remaining[i].source, remaining[i].dataset)
                                    < (remaining[bi].source, remaining[bi].dataset))
                    }
                };
                if wins {
                    best = Some((i, gain));
                }
            }
            let Some((idx, gain)) = best else { break };
            if gain == 0 {
                break;
            }
            let chosen = remaining.swap_remove(idx);
            merged.union_in_place(&chosen.cells);
            selected.push((chosen.source, chosen.dataset));
        }

        (
            AggregatedCoverage {
                selected,
                coverage: merged.len(),
                query_coverage,
            },
            comm,
        )
    }

    /// Chooses which sources to contact for a query.
    fn route<'a>(
        &self,
        sources: &'a [DataSource],
        query: &SpatialDataset,
        delta_lonlat: f64,
        strategy: DistributionStrategy,
    ) -> Vec<&'a DataSource> {
        match strategy {
            DistributionStrategy::Broadcast => sources.iter().collect(),
            DistributionStrategy::Pruned | DistributionStrategy::PrunedClipped => {
                let Some(query_rect) = query.mbr() else { return Vec::new() };
                let candidates = self.global.candidate_sources(&query_rect, delta_lonlat);
                sources
                    .iter()
                    .filter(|s| candidates.iter().any(|c| c.source == s.id))
                    .collect()
            }
        }
    }

    /// Grids the query with the target source's resolution and, under the
    /// clipped strategy, keeps only the cells that can interact with the
    /// source (its root MBR inflated by δ).
    fn prepare_query(
        &self,
        source: &DataSource,
        query: &SpatialDataset,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> Option<CellSet> {
        let cells = source.grid_query(query);
        match strategy {
            DistributionStrategy::Broadcast | DistributionStrategy::Pruned => Some(cells),
            DistributionStrategy::PrunedClipped => {
                let root = source.index().root_geometry().rect;
                let slack = delta_cells.max(0.0);
                let window = Mbr::new(
                    Point::new(root.min.x - slack, root.min.y - slack),
                    Point::new(root.max.x + slack, root.max.y + slack),
                );
                Some(cells.clip_to_window(&window))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use spatial::Grid;

    /// Two regional sources far apart plus a query overlapping only one.
    fn two_sources() -> Vec<DataSource> {
        let grid = Grid::global(10).unwrap();
        let east: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| Point::new(10.0 + i as f64 * 0.2 + j as f64 * 0.02, 50.0 + j as f64 * 0.02))
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        let west: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| Point::new(-120.0 + i as f64 * 0.2 + j as f64 * 0.02, 40.0 + j as f64 * 0.02))
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        vec![
            DataSource::build(0, "east", grid, &east, DitsLocalConfig::default()),
            DataSource::build(1, "west", grid, &west, DitsLocalConfig::default()),
        ]
    }

    fn query_in_east() -> SpatialDataset {
        SpatialDataset::new(
            999,
            (0..6).map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0 + j as f64 * 0.02)).collect(),
        )
    }

    #[test]
    fn pruned_strategy_contacts_fewer_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = query_in_east();
        let (_, broadcast) = center.ojsp(&sources, &query, 5, DistributionStrategy::Broadcast);
        let (_, pruned) = center.ojsp(&sources, &query, 5, DistributionStrategy::Pruned);
        assert_eq!(broadcast.sources_contacted, 2);
        assert_eq!(pruned.sources_contacted, 1);
        assert!(pruned.total_bytes() < broadcast.total_bytes());
    }

    #[test]
    fn clipping_reduces_bytes_without_changing_results() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = query_in_east();
        let (res_pruned, comm_pruned) =
            center.ojsp(&sources, &query, 5, DistributionStrategy::Pruned);
        let (res_clipped, comm_clipped) =
            center.ojsp(&sources, &query, 5, DistributionStrategy::PrunedClipped);
        assert_eq!(
            res_pruned.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>(),
            res_clipped.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>()
        );
        assert!(comm_clipped.total_bytes() <= comm_pruned.total_bytes());
    }

    #[test]
    fn ojsp_aggregates_across_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        // A query spanning both regions (two clusters of points).
        let mut pts: Vec<Point> =
            (0..4).map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0)).collect();
        pts.extend((0..4).map(|j| Point::new(-120.0 + j as f64 * 0.05, 40.0)));
        let query = SpatialDataset::new(999, pts);
        let (res, comm) = center.ojsp(&sources, &query, 10, DistributionStrategy::PrunedClipped);
        assert_eq!(comm.sources_contacted, 2);
        let sources_seen: std::collections::HashSet<SourceId> =
            res.results.iter().map(|(s, _)| *s).collect();
        assert_eq!(sources_seen.len(), 2, "results should come from both sources");
        // Sorted by decreasing overlap.
        for w in res.results.windows(2) {
            assert!(w[0].1.overlap >= w[1].1.overlap);
        }
    }

    #[test]
    fn cjsp_selects_connected_datasets() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 2.0);
        let query = query_in_east();
        let (res, comm) =
            center.cjsp(&sources, &query, 4, 10.0, DistributionStrategy::PrunedClipped);
        assert!(res.coverage >= res.query_coverage);
        assert!(res.selected.len() <= 4);
        assert!(!res.selected.is_empty());
        assert!(comm.total_bytes() > 0);
        // All selected datasets come from the east source: the west one is
        // thousands of cells away.
        assert!(res.selected.iter().all(|(s, _)| *s == 0));
    }

    #[test]
    fn empty_query_produces_empty_answer() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = SpatialDataset::new(1, vec![]);
        let (res, comm) = center.ojsp(&sources, &query, 5, DistributionStrategy::PrunedClipped);
        assert!(res.results.is_empty());
        assert_eq!(comm.total_bytes(), 0);
        let (res, _) = center.cjsp(&sources, &query, 5, 10.0, DistributionStrategy::PrunedClipped);
        assert!(res.selected.is_empty());
        assert_eq!(res.coverage, 0);
    }
}
