//! The data center: global routing, query distribution, result aggregation
//! (Sections IV and VI-A) and the center half of the maintenance protocol.
//!
//! Everything the center plans — candidate sources, query clipping windows,
//! kNN distance bounds — is derived from the [`SourceSummary`]s registered
//! in DITS-G, never from a local index.  That is what makes the planning
//! transport-agnostic: the same plan executes against in-process sources and
//! against remote `source-server` processes, byte for byte.

use std::collections::BTreeMap;

use dits::bounds::node_distance_bounds;
use dits::{DitsGlobal, MaintenanceStats, Neighbor, NodeGeometry, OverlapResult, SourceSummary};
use spatial::{CellSet, DatasetId, Grid, Mbr, Point, SourceId, SpatialDataset};

use crate::comm::CommStats;
use crate::engine::{EngineConfig, QueryEngine};
use crate::error::{ConfigError, SearchError, TransportError};
use crate::message::{Message, UpdateOp};
use crate::source::DataSource;
use crate::transport::SourceTransport;

/// How the data center distributes a query to the data sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionStrategy {
    /// Send the whole query to every source (what the index-less baselines
    /// do: no global index, no clipping).
    Broadcast,
    /// Use DITS-G to contact only candidate sources, but still send the
    /// whole query to each of them (first strategy only).
    Pruned,
    /// Use DITS-G to select candidate sources *and* clip the query to the
    /// region that can intersect each source (both strategies — the paper's
    /// full query-distribution scheme).
    PrunedClipped,
}

/// Aggregated OJSP answer: the global top-k across all sources.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedOverlap {
    /// `(source, dataset, overlap)` triples sorted by decreasing overlap.
    pub results: Vec<(SourceId, OverlapResult)>,
}

/// Aggregated CJSP answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedCoverage {
    /// Selected `(source, dataset)` pairs in greedy order.
    pub selected: Vec<(SourceId, DatasetId)>,
    /// Total coverage `|S_Q ∪ (∪ selected)|` in cells.
    pub coverage: usize,
    /// Coverage of the query alone.
    pub query_coverage: usize,
}

/// Aggregated kNN answer: the global k nearest datasets across all sources,
/// ascending by distance (ties broken by source, then dataset id).
///
/// All sources are assumed to share the query's grid resolution so the
/// cell-unit distances are comparable — the per-run setting used throughout
/// the paper's experiments (the same assumption CJSP aggregation makes).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedKnn {
    /// `(source, neighbor)` pairs sorted by ascending distance.
    pub neighbors: Vec<(SourceId, Neighbor)>,
}

/// What one applied maintenance batch produced.
#[derive(Debug, Clone)]
pub struct MaintenanceOutcome {
    /// The source's root summary after the batch (already folded into
    /// DITS-G by the time the caller sees it).
    pub summary: SourceSummary,
    /// Structural work done by the batch, across the local index (splits,
    /// collapses, relocations) and the global one (refreshes, rebuilds).
    pub stats: MaintenanceStats,
    /// Bytes moved by the maintenance exchange.
    pub comm: CommStats,
}

/// Per-resolution grid cache used while planning a batch: sources may index
/// at their own θ, and `Grid::global` validates the resolution, so building
/// a grid is fallible and worth doing once per resolution per batch.
pub(crate) struct GridCache {
    grids: BTreeMap<u32, Grid>,
}

impl GridCache {
    pub(crate) fn new() -> Self {
        Self {
            grids: BTreeMap::new(),
        }
    }

    pub(crate) fn get(&mut self, resolution: u32) -> Result<&Grid, SearchError> {
        match self.grids.entry(resolution) {
            std::collections::btree_map::Entry::Occupied(entry) => Ok(entry.into_mut()),
            std::collections::btree_map::Entry::Vacant(slot) => {
                let grid = Grid::global(resolution)
                    .map_err(|e| SearchError::Config(ConfigError::Resolution(e)))?;
                Ok(slot.insert(grid))
            }
        }
    }
}

/// Per-query cache of the gridded query cells, keyed by resolution: with a
/// shared per-run θ every candidate source sees the same cell set, so one
/// gridding per query replaces one per `(query, source)` pair.
pub(crate) struct QueryCellsCache {
    by_resolution: BTreeMap<u32, CellSet>,
}

impl QueryCellsCache {
    pub(crate) fn new() -> Self {
        Self {
            by_resolution: BTreeMap::new(),
        }
    }

    pub(crate) fn get(&mut self, grid: &Grid, points: &[Point]) -> &CellSet {
        self.by_resolution
            .entry(grid.resolution())
            .or_insert_with(|| CellSet::from_points(grid, points))
    }
}

/// The data center of the multi-source framework.
#[derive(Debug, Clone)]
pub struct DataCenter {
    global: DitsGlobal,
}

impl DataCenter {
    /// Builds the data center's global index from the sources' uploaded root
    /// summaries.
    ///
    /// Sources that hold no datasets are not registered: an empty index has
    /// no real root geometry (only a degenerate placeholder at the grid
    /// origin), can answer no query, and would otherwise attract
    /// origin-adjacent queries for nothing.  The maintenance path readmits
    /// such a source as soon as an applied batch gives it data (see
    /// [`Self::register_source`]).
    pub fn build(sources: &[DataSource], leaf_capacity: usize) -> Self {
        let summaries = sources
            .iter()
            .filter(|s| s.dataset_count() > 0)
            .map(|s| s.summary())
            .collect();
        Self {
            global: DitsGlobal::build(summaries, leaf_capacity),
        }
    }

    /// Builds a data center by polling every source reachable through a
    /// transport for its root summary (an empty [`Message::ApplyUpdates`]
    /// batch is the protocol's read-only summary poll).  This is how a
    /// center bootstraps a *federated* deployment: the sources may be
    /// `source-server` processes on other machines.
    ///
    /// Sources reporting zero datasets are skipped, exactly like
    /// [`Self::build`].
    pub fn from_transport(
        transport: &dyn SourceTransport,
        leaf_capacity: usize,
    ) -> Result<Self, SearchError> {
        let mut summaries = Vec::new();
        for source in transport.source_ids() {
            let reply = transport.call(source, &Message::ApplyUpdates { ops: vec![] }, false)?;
            match reply.message {
                Message::SummaryRefresh {
                    summary,
                    dataset_count,
                    ..
                } => {
                    if dataset_count > 0 {
                        summaries.push(summary);
                    }
                }
                Message::Error { code, detail } => {
                    return Err(TransportError::Remote { code, detail }.into())
                }
                _ => return Err(TransportError::UnexpectedReply("SummaryRefresh").into()),
            }
        }
        Ok(Self {
            global: DitsGlobal::build(summaries, leaf_capacity),
        })
    }

    /// Reassembles a data center around a recovered global index (e.g. one
    /// decoded from a [`dits::persist`] image after a restart), skipping the
    /// summary re-poll of every source that [`Self::build`] performs.
    pub fn from_global(global: DitsGlobal) -> Self {
        Self { global }
    }

    /// The global index (exposed for inspection / experiments).
    pub fn global(&self) -> &DitsGlobal {
        &self.global
    }

    /// Applies a batch of maintenance operations to one source *through a
    /// transport*, then refreshes DITS-G with the source's new root summary
    /// — the full cross-layer pipeline of Appendix IX-C, working identically
    /// for in-process sources (via
    /// [`ExclusiveTransport`](crate::ExclusiveTransport)) and remote ones
    /// (via [`TcpTransport`](crate::TcpTransport)).
    ///
    /// The exchange is transactional at the batch level: a structurally
    /// invalid dataset rejects the whole batch with nothing mutated anywhere
    /// ([`SearchError::Rejected`]), while individually impossible operations
    /// (duplicate insert, missing update/delete target) are skipped and
    /// counted in [`MaintenanceStats::rejected`].  By the time this returns
    /// `Ok`, the next query batch is planned against a DITS-G that agrees
    /// with the mutated local index, so `candidate_sources` pruning stays
    /// lossless.
    pub fn apply_updates(
        &mut self,
        transport: &dyn SourceTransport,
        source: SourceId,
        ops: &[UpdateOp],
    ) -> Result<MaintenanceOutcome, SearchError> {
        let request = Message::ApplyUpdates { ops: ops.to_vec() };
        let mut comm = CommStats::new();
        comm.sources_contacted += 1;
        let reply = transport.call(source, &request, true)?;
        comm.record_request(reply.request_bytes);
        comm.record_reply(reply.reply_bytes);
        let mut stats = reply.maintenance.unwrap_or_default();
        let (summary, dataset_count) = match reply.message {
            Message::SummaryRefresh {
                summary,
                dataset_count,
                ..
            } => (summary, dataset_count),
            Message::Error { code, detail } if code == crate::message::ERR_REJECTED_BATCH => {
                return Err(SearchError::Rejected { detail })
            }
            Message::Error { code, detail } => {
                return Err(TransportError::Remote { code, detail }.into())
            }
            _ => return Err(TransportError::UnexpectedReply("SummaryRefresh").into()),
        };
        if dataset_count == 0 {
            // The batch emptied the source.  An empty index has only a
            // degenerate placeholder geometry and can answer no query, so
            // it is dropped from DITS-G (readmitted when data returns)
            // instead of attracting origin-adjacent queries for nothing.
            self.remove_source(source, &mut stats);
        } else if !self.apply_refresh(summary, &mut stats) {
            // Unknown to DITS-G: the source was empty at build time or was
            // dropped when a previous batch emptied it — register it now
            // that it holds data again.
            self.register_source(summary, &mut stats);
        }
        // Debug-build hardening: the maintenance path is DITS-G's only
        // writer, so validate the whole tree after every folded batch.
        #[cfg(debug_assertions)]
        debug_assert_eq!(self.global.check_invariants(), Ok(()));
        Ok(MaintenanceOutcome {
            summary,
            stats,
            comm,
        })
    }

    /// Folds a source's refreshed root summary into DITS-G — the center half
    /// of the maintenance protocol.  Runs *before* the maintenance call
    /// returns, so the next query batch is planned against summaries that
    /// agree with every source's local index.
    ///
    /// When the accumulated in-place churn degrades the global tree (see
    /// [`DitsGlobal::needs_rebuild`]), the tree is rebuilt from its current
    /// summaries on the spot.
    ///
    /// Returns `false` when the source is not registered in DITS-G.
    pub fn apply_refresh(&mut self, summary: SourceSummary, stats: &mut MaintenanceStats) -> bool {
        if !self.global.refresh_source(summary) {
            return false;
        }
        stats.summary_refreshes += 1;
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
        true
    }

    /// Registers a summary for a source DITS-G does not know yet: one that
    /// joined the federation, was empty when the center was built, or was
    /// dropped when maintenance emptied it and now holds data again.
    pub fn register_source(&mut self, summary: SourceSummary, stats: &mut MaintenanceStats) {
        self.global.insert_source(summary);
        stats.summary_refreshes += 1;
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
    }

    /// Unregisters a source from DITS-G (a source leaving the federation,
    /// or one whose index shrank to empty).
    /// Returns `false` when the source is not registered.
    pub fn remove_source(&mut self, source: SourceId, stats: &mut MaintenanceStats) -> bool {
        if !self.global.remove_source(source) {
            return false;
        }
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
        true
    }

    /// The connectivity slack used when routing CJSP queries, in degrees:
    /// δ (cell units) scaled by the *coarsest* registered source's cell size,
    /// so the lonlat-space pruning bound is conservative for every source —
    /// and so a per-request δ override widens routing along with clipping
    /// and aggregation.
    pub(crate) fn route_slack_lonlat(
        &self,
        delta_cells: f64,
        grids: &mut GridCache,
    ) -> Result<f64, SearchError> {
        let mut degrees_per_cell: f64 = 0.0;
        for summary in self.global.summaries() {
            let grid = grids.get(summary.resolution)?;
            degrees_per_cell = degrees_per_cell.max(grid.cell_width().max(grid.cell_height()));
        }
        Ok(delta_cells.max(0.0) * degrees_per_cell)
    }

    /// Runs the multi-source overlap joinable search for one query over
    /// in-process sources.
    #[deprecated(
        since = "0.1.0",
        note = "build a `SearchRequest` and run it through `QueryEngine::run`"
    )]
    pub fn ojsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        strategy: DistributionStrategy,
    ) -> Result<(AggregatedOverlap, CommStats), SearchError> {
        let engine = QueryEngine::in_process(
            self,
            sources,
            EngineConfig {
                strategy,
                ..EngineConfig::default()
            },
        );
        let outcome = engine.run_ojsp(std::slice::from_ref(query), k)?;
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .ok_or(SearchError::Internal("batch of one produced no answer"))?;
        Ok((answer, outcome.comm))
    }

    /// Runs the multi-source coverage joinable search for one query over
    /// in-process sources.
    #[deprecated(
        since = "0.1.0",
        note = "build a `SearchRequest` and run it through `QueryEngine::run`"
    )]
    pub fn cjsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> Result<(AggregatedCoverage, CommStats), SearchError> {
        let engine = QueryEngine::in_process(
            self,
            sources,
            EngineConfig {
                strategy,
                delta_cells,
                ..EngineConfig::default()
            },
        );
        let outcome = engine.run_cjsp(std::slice::from_ref(query), k)?;
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .ok_or(SearchError::Internal("batch of one produced no answer"))?;
        Ok((answer, outcome.comm))
    }

    /// Chooses which sources to contact for an overlap / coverage query,
    /// purely from the summaries registered in DITS-G (ascending by source
    /// id).  Under `Broadcast` every registered source is contacted; the
    /// pruned strategies consult `candidate_sources`.
    pub(crate) fn route(
        &self,
        query: &SpatialDataset,
        delta_lonlat: f64,
        strategy: DistributionStrategy,
    ) -> Vec<SourceSummary> {
        match strategy {
            DistributionStrategy::Broadcast => self.global.summaries(),
            DistributionStrategy::Pruned | DistributionStrategy::PrunedClipped => {
                let Some(query_rect) = query.mbr() else {
                    return Vec::new();
                };
                self.global.candidate_sources(&query_rect, delta_lonlat)
            }
        }
    }

    /// Chooses which sources to contact for a kNN query: every source whose
    /// distance *lower bound* to the query could still land in the top-`k`.
    ///
    /// The rule is lossless (Lemma 4 applied at the federation level): the
    /// `k` sources with the smallest distance *upper bounds* each guarantee
    /// at least one dataset within their bound, so the k-th best distance is
    /// at most the k-th smallest upper bound `T` — and any source with
    /// `lb > T` can only hold datasets strictly farther than every true
    /// top-k member.
    pub(crate) fn knn_route(
        &self,
        query: &SpatialDataset,
        k: usize,
        strategy: DistributionStrategy,
        grids: &mut GridCache,
        cells: &mut QueryCellsCache,
    ) -> Result<Vec<SourceSummary>, SearchError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let summaries = self.global.summaries();
        if strategy == DistributionStrategy::Broadcast || summaries.len() <= k {
            return Ok(summaries);
        }
        let mut scored: Vec<(f64, f64, SourceSummary)> = Vec::with_capacity(summaries.len());
        for s in summaries {
            let grid = grids.get(s.resolution)?;
            let cells = cells.get(grid, &query.points);
            let Some(query_rect) = cells.mbr_cell_space() else {
                // The query grids to nothing: no source can answer it.
                return Ok(Vec::new());
            };
            let query_geometry = NodeGeometry::from_mbr(query_rect);
            let source_geometry = NodeGeometry::from_mbr(s.cell_space_rect(grid));
            let (lb, ub) = node_distance_bounds(&source_geometry, &query_geometry);
            scored.push((lb, ub, s));
        }
        let mut upper_bounds: Vec<f64> = scored.iter().map(|&(_, ub, _)| ub).collect();
        upper_bounds.sort_unstable_by(|a, b| a.total_cmp(b));
        // Small slack absorbs the floating-point error of the lonlat →
        // cell-space round trip; keeping a borderline source is always safe.
        let threshold = upper_bounds[k - 1] + 1e-9;
        let mut out: Vec<SourceSummary> = scored
            .into_iter()
            .filter(|&(lb, _, _)| lb <= threshold)
            .map(|(_, _, s)| s)
            .collect();
        out.sort_by_key(|s| s.source);
        Ok(out)
    }

    /// Clips query cells to the window that can interact with a source (its
    /// root MBR in cell space, inflated by δ) under the clipped strategy;
    /// passes them through untouched otherwise.
    ///
    /// The window is recovered from the source's uploaded summary — the
    /// lonlat corners are cell centres, so [`SourceSummary::cell_space_rect`]
    /// reproduces the local root's integer cell rectangle exactly, and the
    /// clipping decision is identical to one taken next to the local index.
    pub(crate) fn clip_for_source(
        summary: &SourceSummary,
        grid: &Grid,
        cells: &CellSet,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> CellSet {
        match strategy {
            DistributionStrategy::Broadcast | DistributionStrategy::Pruned => cells.clone(),
            DistributionStrategy::PrunedClipped => {
                let root = summary.cell_space_rect(grid);
                let slack = delta_cells.max(0.0);
                let window = Mbr::new(
                    Point::new(root.min.x - slack, root.min.y - slack),
                    Point::new(root.max.x + slack, root.max.y + slack),
                );
                cells.clip_to_window(&window)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use dits::DitsLocalConfig;
    use spatial::Grid;

    /// Two regional sources far apart plus a query overlapping only one.
    fn two_sources() -> Vec<DataSource> {
        let grid = Grid::global(10).unwrap();
        let east: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| {
                        Point::new(
                            10.0 + i as f64 * 0.2 + j as f64 * 0.02,
                            50.0 + j as f64 * 0.02,
                        )
                    })
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        let west: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| {
                        Point::new(
                            -120.0 + i as f64 * 0.2 + j as f64 * 0.02,
                            40.0 + j as f64 * 0.02,
                        )
                    })
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        vec![
            DataSource::build(0, "east", grid, &east, DitsLocalConfig::default()),
            DataSource::build(1, "west", grid, &west, DitsLocalConfig::default()),
        ]
    }

    fn query_in_east() -> SpatialDataset {
        SpatialDataset::new(
            999,
            (0..6)
                .map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0 + j as f64 * 0.02))
                .collect(),
        )
    }

    #[allow(deprecated)]
    fn run_ojsp(
        center: &DataCenter,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        strategy: DistributionStrategy,
    ) -> (AggregatedOverlap, CommStats) {
        center.ojsp(sources, query, k, strategy).unwrap()
    }

    #[allow(deprecated)]
    fn run_cjsp(
        center: &DataCenter,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        delta: f64,
        strategy: DistributionStrategy,
    ) -> (AggregatedCoverage, CommStats) {
        center.cjsp(sources, query, k, delta, strategy).unwrap()
    }

    #[test]
    fn pruned_strategy_contacts_fewer_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        let query = query_in_east();
        let (_, broadcast) = run_ojsp(
            &center,
            &sources,
            &query,
            5,
            DistributionStrategy::Broadcast,
        );
        let (_, pruned) = run_ojsp(&center, &sources, &query, 5, DistributionStrategy::Pruned);
        assert_eq!(broadcast.sources_contacted, 2);
        assert_eq!(pruned.sources_contacted, 1);
        assert!(pruned.total_bytes() < broadcast.total_bytes());
    }

    #[test]
    fn clipping_reduces_bytes_without_changing_results() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        let query = query_in_east();
        let (res_pruned, comm_pruned) =
            run_ojsp(&center, &sources, &query, 5, DistributionStrategy::Pruned);
        let (res_clipped, comm_clipped) = run_ojsp(
            &center,
            &sources,
            &query,
            5,
            DistributionStrategy::PrunedClipped,
        );
        assert_eq!(
            res_pruned
                .results
                .iter()
                .map(|(_, r)| r.overlap)
                .collect::<Vec<_>>(),
            res_clipped
                .results
                .iter()
                .map(|(_, r)| r.overlap)
                .collect::<Vec<_>>()
        );
        assert!(comm_clipped.total_bytes() <= comm_pruned.total_bytes());
    }

    #[test]
    fn ojsp_aggregates_across_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        // A query spanning both regions (two clusters of points).
        let mut pts: Vec<Point> = (0..4)
            .map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0))
            .collect();
        pts.extend((0..4).map(|j| Point::new(-120.0 + j as f64 * 0.05, 40.0)));
        let query = SpatialDataset::new(999, pts);
        let (res, comm) = run_ojsp(
            &center,
            &sources,
            &query,
            10,
            DistributionStrategy::PrunedClipped,
        );
        assert_eq!(comm.sources_contacted, 2);
        let sources_seen: std::collections::HashSet<SourceId> =
            res.results.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            sources_seen.len(),
            2,
            "results should come from both sources"
        );
        // Sorted by decreasing overlap.
        for w in res.results.windows(2) {
            assert!(w[0].1.overlap >= w[1].1.overlap);
        }
    }

    #[test]
    fn cjsp_selects_connected_datasets() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        let query = query_in_east();
        let (res, comm) = run_cjsp(
            &center,
            &sources,
            &query,
            4,
            10.0,
            DistributionStrategy::PrunedClipped,
        );
        assert!(res.coverage >= res.query_coverage);
        assert!(res.selected.len() <= 4);
        assert!(!res.selected.is_empty());
        assert!(comm.total_bytes() > 0);
        // All selected datasets come from the east source: the west one is
        // thousands of cells away.
        assert!(res.selected.iter().all(|(s, _)| *s == 0));
    }

    #[test]
    fn empty_query_produces_empty_answer() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        let query = SpatialDataset::new(1, vec![]);
        let (res, comm) = run_ojsp(
            &center,
            &sources,
            &query,
            5,
            DistributionStrategy::PrunedClipped,
        );
        assert!(res.results.is_empty());
        assert_eq!(comm.total_bytes(), 0);
        let (res, _) = run_cjsp(
            &center,
            &sources,
            &query,
            5,
            10.0,
            DistributionStrategy::PrunedClipped,
        );
        assert!(res.selected.is_empty());
        assert_eq!(res.coverage, 0);
    }

    #[test]
    fn from_transport_matches_direct_build() {
        let sources = two_sources();
        let direct = DataCenter::build(&sources, 4);
        let transport = InProcessTransport::new(&sources);
        let polled = DataCenter::from_transport(&transport, 4).unwrap();
        assert_eq!(polled.global().summaries(), direct.global().summaries());
        assert_eq!(polled.global().source_count(), 2);
    }

    #[test]
    fn knn_route_keeps_every_source_that_could_matter() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4);
        let mut grids = GridCache::new();
        let mut cells = QueryCellsCache::new();
        // k larger than the federation: nothing can be pruned.
        let all = center
            .knn_route(
                &query_in_east(),
                5,
                DistributionStrategy::PrunedClipped,
                &mut grids,
                &mut cells,
            )
            .unwrap();
        assert_eq!(all.len(), 2);
        // k = 1 for a query sitting inside the east source: the west source
        // (an ocean away) must be pruned.
        let east_only = center
            .knn_route(
                &query_in_east(),
                1,
                DistributionStrategy::PrunedClipped,
                &mut grids,
                &mut cells,
            )
            .unwrap();
        assert_eq!(east_only.len(), 1);
        assert_eq!(east_only[0].source, 0);
        // Broadcast never prunes; k = 0 asks for nothing.
        assert_eq!(
            center
                .knn_route(
                    &query_in_east(),
                    1,
                    DistributionStrategy::Broadcast,
                    &mut grids,
                    &mut cells
                )
                .unwrap()
                .len(),
            2
        );
        assert!(center
            .knn_route(
                &query_in_east(),
                0,
                DistributionStrategy::PrunedClipped,
                &mut grids,
                &mut cells
            )
            .unwrap()
            .is_empty());
    }
}
