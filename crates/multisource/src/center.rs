//! The data center: global routing, query distribution and result
//! aggregation (Sections IV and VI-A).

use dits::{DitsGlobal, MaintenanceStats, OverlapResult, SourceSummary};
use spatial::{CellSet, DatasetId, Mbr, Point, SourceId, SpatialDataset};

use crate::comm::CommStats;
use crate::engine::{EngineConfig, QueryEngine};
use crate::source::DataSource;

/// How the data center distributes a query to the data sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionStrategy {
    /// Send the whole query to every source (what the index-less baselines
    /// do: no global index, no clipping).
    Broadcast,
    /// Use DITS-G to contact only candidate sources, but still send the
    /// whole query to each of them (first strategy only).
    Pruned,
    /// Use DITS-G to select candidate sources *and* clip the query to the
    /// region that can intersect each source (both strategies — the paper's
    /// full query-distribution scheme).
    PrunedClipped,
}

/// Aggregated OJSP answer: the global top-k across all sources.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedOverlap {
    /// `(source, dataset, overlap)` triples sorted by decreasing overlap.
    pub results: Vec<(SourceId, OverlapResult)>,
}

/// Aggregated CJSP answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedCoverage {
    /// Selected `(source, dataset)` pairs in greedy order.
    pub selected: Vec<(SourceId, DatasetId)>,
    /// Total coverage `|S_Q ∪ (∪ selected)|` in cells.
    pub coverage: usize,
    /// Coverage of the query alone.
    pub query_coverage: usize,
}

/// The data center of the multi-source framework.
#[derive(Debug, Clone)]
pub struct DataCenter {
    global: DitsGlobal,
    /// Connectivity slack used when routing CJSP queries, in degrees of
    /// longitude/latitude (δ converted from cells by the framework).
    delta_lonlat: f64,
}

impl DataCenter {
    /// Builds the data center's global index from the sources' uploaded root
    /// summaries.
    ///
    /// Sources that hold no datasets are not registered: an empty index has
    /// no real root geometry (only a degenerate placeholder at the grid
    /// origin), can answer no query, and would otherwise attract
    /// origin-adjacent queries for nothing.  The maintenance path readmits
    /// such a source as soon as an applied batch gives it data (see
    /// [`Self::register_source`]).
    pub fn build(sources: &[DataSource], leaf_capacity: usize, delta_lonlat: f64) -> Self {
        let summaries = sources
            .iter()
            .filter(|s| s.dataset_count() > 0)
            .map(|s| s.summary())
            .collect();
        Self {
            global: DitsGlobal::build(summaries, leaf_capacity),
            delta_lonlat,
        }
    }

    /// Reassembles a data center around a recovered global index (e.g. one
    /// decoded from a [`dits::persist`] image after a restart), skipping the
    /// summary re-poll of every source that [`Self::build`] performs.
    pub fn from_global(global: DitsGlobal, delta_lonlat: f64) -> Self {
        Self {
            global,
            delta_lonlat,
        }
    }

    /// The global index (exposed for inspection / experiments).
    pub fn global(&self) -> &DitsGlobal {
        &self.global
    }

    /// Folds a source's refreshed root summary into DITS-G — the center half
    /// of the maintenance protocol.  Runs *before* the maintenance call
    /// returns, so the next query batch is planned against summaries that
    /// agree with every source's local index.
    ///
    /// When the accumulated in-place churn degrades the global tree (see
    /// [`DitsGlobal::needs_rebuild`]), the tree is rebuilt from its current
    /// summaries on the spot.
    ///
    /// Returns `false` when the source is not registered in DITS-G.
    pub fn apply_refresh(&mut self, summary: SourceSummary, stats: &mut MaintenanceStats) -> bool {
        if !self.global.refresh_source(summary) {
            return false;
        }
        stats.summary_refreshes += 1;
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
        true
    }

    /// Registers a summary for a source DITS-G does not know yet: one that
    /// joined the federation, was empty when the center was built, or was
    /// dropped when maintenance emptied it and now holds data again.
    pub fn register_source(&mut self, summary: SourceSummary, stats: &mut MaintenanceStats) {
        self.global.insert_source(summary);
        stats.summary_refreshes += 1;
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
    }

    /// Unregisters a source from DITS-G (a source leaving the federation,
    /// or one whose index shrank to empty).
    /// Returns `false` when the source is not registered.
    pub fn remove_source(&mut self, source: SourceId, stats: &mut MaintenanceStats) -> bool {
        if !self.global.remove_source(source) {
            return false;
        }
        if self.global.needs_rebuild() {
            self.global.rebuild();
            stats.global_rebuilds += 1;
        }
        true
    }

    /// The connectivity slack used when routing CJSP queries, in degrees.
    pub(crate) fn delta_lonlat(&self) -> f64 {
        self.delta_lonlat
    }

    /// Runs the multi-source overlap joinable search for one query.
    ///
    /// A convenience wrapper: builds a [`QueryEngine`] over this center and
    /// the given sources and runs a batch of one.  Batch callers should hold
    /// an engine directly.
    pub fn ojsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        strategy: DistributionStrategy,
    ) -> (AggregatedOverlap, CommStats) {
        let engine = QueryEngine::new(
            self,
            sources,
            EngineConfig {
                strategy,
                ..EngineConfig::default()
            },
        );
        let outcome = engine.run_ojsp(std::slice::from_ref(query), k);
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .expect("batch of one produces one answer");
        (answer, outcome.comm)
    }

    /// Runs the multi-source coverage joinable search for one query.
    ///
    /// Each candidate source returns its local greedy candidates (with their
    /// cells); the engine then runs the final greedy selection across
    /// sources, enforcing spatial connectivity with the query.  All sources
    /// are assumed to share the query's grid resolution for the cell-level
    /// aggregation (the per-run setting used throughout the paper's
    /// experiments).
    pub fn cjsp(
        &self,
        sources: &[DataSource],
        query: &SpatialDataset,
        k: usize,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> (AggregatedCoverage, CommStats) {
        let engine = QueryEngine::new(
            self,
            sources,
            EngineConfig {
                strategy,
                delta_cells,
                ..EngineConfig::default()
            },
        );
        let outcome = engine.run_cjsp(std::slice::from_ref(query), k);
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .expect("batch of one produces one answer");
        (answer, outcome.comm)
    }

    /// Chooses which sources to contact for a query.
    pub(crate) fn route<'a>(
        &self,
        sources: &'a [DataSource],
        query: &SpatialDataset,
        delta_lonlat: f64,
        strategy: DistributionStrategy,
    ) -> Vec<&'a DataSource> {
        match strategy {
            DistributionStrategy::Broadcast => sources.iter().collect(),
            DistributionStrategy::Pruned | DistributionStrategy::PrunedClipped => {
                let Some(query_rect) = query.mbr() else {
                    return Vec::new();
                };
                let candidates = self.global.candidate_sources(&query_rect, delta_lonlat);
                sources
                    .iter()
                    .filter(|s| candidates.iter().any(|c| c.source == s.id))
                    .collect()
            }
        }
    }

    /// Grids the query with the target source's resolution and, under the
    /// clipped strategy, keeps only the cells that can interact with the
    /// source (its root MBR inflated by δ).
    pub(crate) fn prepare_query(
        &self,
        source: &DataSource,
        query: &SpatialDataset,
        delta_cells: f64,
        strategy: DistributionStrategy,
    ) -> Option<CellSet> {
        let cells = source.grid_query(query);
        match strategy {
            DistributionStrategy::Broadcast | DistributionStrategy::Pruned => Some(cells),
            DistributionStrategy::PrunedClipped => {
                let root = source.index().root_geometry().rect;
                let slack = delta_cells.max(0.0);
                let window = Mbr::new(
                    Point::new(root.min.x - slack, root.min.y - slack),
                    Point::new(root.max.x + slack, root.max.y + slack),
                );
                Some(cells.clip_to_window(&window))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dits::DitsLocalConfig;
    use spatial::Grid;

    /// Two regional sources far apart plus a query overlapping only one.
    fn two_sources() -> Vec<DataSource> {
        let grid = Grid::global(10).unwrap();
        let east: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| {
                        Point::new(
                            10.0 + i as f64 * 0.2 + j as f64 * 0.02,
                            50.0 + j as f64 * 0.02,
                        )
                    })
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        let west: Vec<SpatialDataset> = (0..15)
            .map(|i| {
                let pts = (0..8)
                    .map(|j| {
                        Point::new(
                            -120.0 + i as f64 * 0.2 + j as f64 * 0.02,
                            40.0 + j as f64 * 0.02,
                        )
                    })
                    .collect();
                SpatialDataset::new(i, pts)
            })
            .collect();
        vec![
            DataSource::build(0, "east", grid, &east, DitsLocalConfig::default()),
            DataSource::build(1, "west", grid, &west, DitsLocalConfig::default()),
        ]
    }

    fn query_in_east() -> SpatialDataset {
        SpatialDataset::new(
            999,
            (0..6)
                .map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0 + j as f64 * 0.02))
                .collect(),
        )
    }

    #[test]
    fn pruned_strategy_contacts_fewer_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = query_in_east();
        let (_, broadcast) = center.ojsp(&sources, &query, 5, DistributionStrategy::Broadcast);
        let (_, pruned) = center.ojsp(&sources, &query, 5, DistributionStrategy::Pruned);
        assert_eq!(broadcast.sources_contacted, 2);
        assert_eq!(pruned.sources_contacted, 1);
        assert!(pruned.total_bytes() < broadcast.total_bytes());
    }

    #[test]
    fn clipping_reduces_bytes_without_changing_results() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = query_in_east();
        let (res_pruned, comm_pruned) =
            center.ojsp(&sources, &query, 5, DistributionStrategy::Pruned);
        let (res_clipped, comm_clipped) =
            center.ojsp(&sources, &query, 5, DistributionStrategy::PrunedClipped);
        assert_eq!(
            res_pruned
                .results
                .iter()
                .map(|(_, r)| r.overlap)
                .collect::<Vec<_>>(),
            res_clipped
                .results
                .iter()
                .map(|(_, r)| r.overlap)
                .collect::<Vec<_>>()
        );
        assert!(comm_clipped.total_bytes() <= comm_pruned.total_bytes());
    }

    #[test]
    fn ojsp_aggregates_across_sources() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        // A query spanning both regions (two clusters of points).
        let mut pts: Vec<Point> = (0..4)
            .map(|j| Point::new(10.0 + j as f64 * 0.05, 50.0))
            .collect();
        pts.extend((0..4).map(|j| Point::new(-120.0 + j as f64 * 0.05, 40.0)));
        let query = SpatialDataset::new(999, pts);
        let (res, comm) = center.ojsp(&sources, &query, 10, DistributionStrategy::PrunedClipped);
        assert_eq!(comm.sources_contacted, 2);
        let sources_seen: std::collections::HashSet<SourceId> =
            res.results.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            sources_seen.len(),
            2,
            "results should come from both sources"
        );
        // Sorted by decreasing overlap.
        for w in res.results.windows(2) {
            assert!(w[0].1.overlap >= w[1].1.overlap);
        }
    }

    #[test]
    fn cjsp_selects_connected_datasets() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 2.0);
        let query = query_in_east();
        let (res, comm) = center.cjsp(
            &sources,
            &query,
            4,
            10.0,
            DistributionStrategy::PrunedClipped,
        );
        assert!(res.coverage >= res.query_coverage);
        assert!(res.selected.len() <= 4);
        assert!(!res.selected.is_empty());
        assert!(comm.total_bytes() > 0);
        // All selected datasets come from the east source: the west one is
        // thousands of cells away.
        assert!(res.selected.iter().all(|(s, _)| *s == 0));
    }

    #[test]
    fn empty_query_produces_empty_answer() {
        let sources = two_sources();
        let center = DataCenter::build(&sources, 4, 1.0);
        let query = SpatialDataset::new(1, vec![]);
        let (res, comm) = center.ojsp(&sources, &query, 5, DistributionStrategy::PrunedClipped);
        assert!(res.results.is_empty());
        assert_eq!(comm.total_bytes(), 0);
        let (res, _) = center.cjsp(
            &sources,
            &query,
            5,
            10.0,
            DistributionStrategy::PrunedClipped,
        );
        assert!(res.selected.is_empty());
        assert_eq!(res.coverage, 0);
    }
}
