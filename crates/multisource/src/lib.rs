//! Multi-source joinable spatial dataset search framework (Section IV).
//!
//! The framework mirrors Fig. 3 of the paper: a set of independent
//! [`DataSource`]s, each holding its own datasets and its own DITS-L, and a
//! [`DataCenter`] that keeps the DITS-G global index built from the sources'
//! root summaries.  A user builds a [`SearchRequest`] (OJSP, CJSP or kNN —
//! one query or a batch) and the data center
//!
//! 1. consults DITS-G to find the *candidate sources* (first query-
//!    distribution strategy: fewer communication rounds; kNN uses distance
//!    bounds instead of intersection),
//! 2. ships to each candidate only the part of the query that can intersect
//!    it (second strategy: fewer bytes per round),
//! 3. lets every candidate run its local OverlapSearch / CoverageSearch /
//!    kNN, and
//! 4. aggregates the per-source results into the final top-`k` answer of a
//!    [`SearchResponse`].
//!
//! # Transports
//!
//! Delivery is pluggable through [`SourceTransport`]: the same planning and
//! aggregation code runs against
//!
//! * [`InProcessTransport`] — sources in this process (the benchmark /
//!   simulation deployment; every request and response is still serialised
//!   into actual bytes by [`message`], and [`comm::CommStats`] accounts
//!   them), and
//! * [`TcpTransport`] — sources as independent processes speaking
//!   length-prefixed frames over TCP (the `source-server` binary, or
//!   [`SourceServer`] threads), with **identical answers and identical
//!   protocol byte counts**.
//!
//! A federated data center bootstraps itself with
//! [`DataCenter::from_transport`], which polls every remote source for its
//! root summary.
//!
//! All query execution flows through the [`engine::QueryEngine`], which fans
//! every batch out as one task per `(query, candidate source)` shard across
//! a pool of worker threads and merges per-worker communication / search /
//! timing statistics at the end.
//!
//! Index mutation flows through
//! [`framework::MultiSourceFramework::apply_updates`] (in-process) or
//! [`DataCenter::apply_updates`] (any transport): maintenance batches travel
//! as [`message::Message::ApplyUpdates`], each source applies them
//! transactionally to its DITS-L, and the
//! [`message::Message::SummaryRefresh`] acknowledgement is folded into the
//! center's DITS-G before the next query batch is planned — the consistency
//! guarantee that keeps `candidate_sources` pruning lossless under churn
//! (see [`message`] for the protocol details).
//!
//! Failures are typed, not panicked: [`WireError`] for undecodable bytes,
//! [`TransportError`] for undeliverable requests, [`SearchError`] for
//! whole-request failures (see [`error`]).

#![warn(missing_docs)]

pub mod api;
pub mod center;
pub mod comm;
pub mod engine;
pub mod error;
pub mod framework;
pub mod message;
pub mod source;
pub mod transport;

pub use api::{
    SearchKind, SearchRequest, SearchResponse, SearchResults, SourceFailure, SourceTiming,
};
pub use center::{
    AggregatedCoverage, AggregatedKnn, AggregatedOverlap, DataCenter, DistributionStrategy,
    MaintenanceOutcome,
};
pub use comm::{CommConfig, CommStats};
pub use engine::{BatchOutcome, EngineConfig, QueryEngine, ShardMode};
pub use error::{ConfigError, SearchError, TransportError, WireError};
pub use framework::{FrameworkConfig, MultiSourceFramework};
pub use message::{CoverageCandidate, Message, UpdateOp};
pub use source::{DataSource, SourceMetrics};
pub use transport::{
    scrape_metrics, serve_source, serve_source_until, CallOptions, ExclusiveTransport,
    InProcessTransport, ServedReply, ShutdownSignal, SourceServer, SourceTrace, SourceTransport,
    TcpTransport, TransportReply,
};
