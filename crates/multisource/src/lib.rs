//! Multi-source joinable spatial dataset search framework (Section IV).
//!
//! The framework mirrors Fig. 3 of the paper: a set of independent
//! [`DataSource`]s, each holding its own datasets and its own DITS-L, and a
//! [`DataCenter`] that keeps the DITS-G global index built from the sources'
//! root summaries.  A user query goes to the data center, which
//!
//! 1. consults DITS-G to find the *candidate sources* (first query-
//!    distribution strategy: fewer communication rounds),
//! 2. ships to each candidate only the part of the query that can intersect
//!    it (second strategy: fewer bytes per round),
//! 3. lets every candidate run its local OverlapSearch / CoverageSearch, and
//! 4. aggregates the per-source results into the final top-`k`.
//!
//! The deployment is simulated in-process: every request and response is
//! serialised into an actual byte buffer by [`message`], and
//! [`comm::CommStats`] accumulates the transferred bytes and converts them
//! into transmission time under a configurable bandwidth — exactly the two
//! communication metrics reported in Figs. 13–14 and 19–20.
//!
//! All query execution — single queries and batches alike — flows through
//! the [`engine::QueryEngine`], which fans every batch out as one task per
//! `(query, candidate source)` shard across a pool of worker threads and
//! merges per-worker communication / search statistics at the end.
//!
//! Index mutation flows through
//! [`framework::MultiSourceFramework::apply_updates`]: maintenance batches
//! travel as [`message::Message::ApplyUpdates`], each source applies them
//! transactionally to its DITS-L, and the
//! [`message::Message::SummaryRefresh`] acknowledgement is folded into the
//! center's DITS-G before the next query batch is planned — the consistency
//! guarantee that keeps `candidate_sources` pruning lossless under churn
//! (see [`message`] for the protocol details).

#![warn(missing_docs)]

pub mod center;
pub mod comm;
pub mod engine;
pub mod framework;
pub mod message;
pub mod source;

pub use center::{AggregatedCoverage, AggregatedOverlap, DataCenter, DistributionStrategy};
pub use comm::{CommConfig, CommStats};
pub use engine::{BatchOutcome, EngineConfig, QueryEngine};
pub use framework::{FrameworkConfig, MaintenanceError, MaintenanceOutcome, MultiSourceFramework};
pub use message::{CoverageCandidate, Message, UpdateOp};
pub use source::DataSource;
