//! The unified client-facing query API: one request type for every search
//! kind, one response type for every answer.
//!
//! A [`SearchRequest`] names the search kind (OJSP, CJSP, k-nearest
//! datasets), carries one query or a whole batch, and tunes execution —
//! `k`, worker count, distribution strategy, connectivity threshold,
//! statistics opt-in.  It executes through
//! [`MultiSourceFramework::search`](crate::MultiSourceFramework::search)
//! in-process, or through [`QueryEngine::run`](crate::QueryEngine::run) over
//! any [`SourceTransport`](crate::SourceTransport) — the request is
//! transport-agnostic by construction.
//!
//! ```no_run
//! # use multisource::{SearchRequest, MultiSourceFramework, FrameworkConfig};
//! # use spatial::SpatialDataset;
//! # fn demo(framework: &MultiSourceFramework, query: SpatialDataset) {
//! let response = framework
//!     .search(&SearchRequest::ojsp(query).k(10).with_stats(true))
//!     .expect("in-process search");
//! let best = &response.overlap().expect("OJSP answers")[0];
//! println!("{} results, {} bytes moved", best.results.len(), response.comm.total_bytes());
//! # }
//! ```

use std::time::Duration;

use dits::SearchStats;
use spatial::{SourceId, SpatialDataset};

use crate::center::{AggregatedCoverage, AggregatedKnn, AggregatedOverlap, DistributionStrategy};
use crate::comm::CommStats;
use crate::engine::ShardMode;
use crate::error::SearchError;

/// Which search problem a [`SearchRequest`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Overlap joinable search (Section VI-A): top-k datasets by shared
    /// cells.
    Ojsp,
    /// Coverage joinable search (Section VI-C): greedy connected set
    /// maximising coverage.
    Cjsp,
    /// k-nearest datasets by the cell-based dataset distance (Definition 6),
    /// routed across sources through DITS-G distance bounds.
    Knn,
}

/// A unified, transport-agnostic search request.
///
/// Built with the `ojsp`/`cjsp`/`knn` constructors (single query) or their
/// `_batch` variants, then refined with the chainable setters.  Unset
/// options inherit the executing framework's / engine's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    kind: SearchKind,
    queries: Vec<SpatialDataset>,
    k: usize,
    workers: Option<usize>,
    strategy: Option<DistributionStrategy>,
    delta_cells: Option<f64>,
    shard_mode: Option<ShardMode>,
    skip_failed_sources: Option<bool>,
    collect_stats: bool,
    collect_trace: bool,
}

impl SearchRequest {
    fn new(kind: SearchKind, queries: Vec<SpatialDataset>) -> Self {
        Self {
            kind,
            queries,
            k: 10,
            workers: None,
            strategy: None,
            delta_cells: None,
            shard_mode: None,
            skip_failed_sources: None,
            collect_stats: true,
            collect_trace: false,
        }
    }

    /// An overlap joinable search for one query.
    pub fn ojsp(query: SpatialDataset) -> Self {
        Self::new(SearchKind::Ojsp, vec![query])
    }

    /// An overlap joinable search over a batch of queries.
    pub fn ojsp_batch(queries: Vec<SpatialDataset>) -> Self {
        Self::new(SearchKind::Ojsp, queries)
    }

    /// A coverage joinable search for one query.
    pub fn cjsp(query: SpatialDataset) -> Self {
        Self::new(SearchKind::Cjsp, vec![query])
    }

    /// A coverage joinable search over a batch of queries.
    pub fn cjsp_batch(queries: Vec<SpatialDataset>) -> Self {
        Self::new(SearchKind::Cjsp, queries)
    }

    /// A k-nearest-datasets search for one query.
    pub fn knn(query: SpatialDataset) -> Self {
        Self::new(SearchKind::Knn, vec![query])
    }

    /// A k-nearest-datasets search over a batch of queries.
    pub fn knn_batch(queries: Vec<SpatialDataset>) -> Self {
        Self::new(SearchKind::Knn, queries)
    }

    /// Number of results per query (default 10).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the engine worker count for this request (`0` = one per
    /// CPU; unset = the deployment's configured count).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Overrides the query-distribution strategy for this request.
    pub fn strategy(mut self, strategy: DistributionStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the CJSP connectivity threshold δ (in cell units) for this
    /// request.
    pub fn delta_cells(mut self, delta: f64) -> Self {
        self.delta_cells = Some(delta);
        self
    }

    /// Overrides how the batch is sharded across sources for this request
    /// (OJSP/CJSP only; kNN always runs per query).
    /// [`ShardMode::PerSourceBatch`] answers each source's whole sub-batch
    /// with one shared frontier traversal — identical answers, fewer
    /// messages, one index walk per batch instead of one per query.
    pub fn shard_mode(mut self, mode: ShardMode) -> Self {
        self.shard_mode = Some(mode);
        self
    }

    /// Whether sources should report their off-wire search statistics
    /// (default `true`).  Opting out never changes the counted protocol
    /// bytes — the statistics ride in the transport frame, not the message.
    pub fn with_stats(mut self, collect: bool) -> Self {
        self.collect_stats = collect;
        self
    }

    /// The requested search kind.
    pub fn kind(&self) -> SearchKind {
        self.kind
    }

    /// The query batch (a single query is a batch of one).
    pub fn queries(&self) -> &[SpatialDataset] {
        &self.queries
    }

    /// The requested result count per query.
    pub fn requested_k(&self) -> usize {
        self.k
    }

    /// The worker-count override, if any.
    pub fn requested_workers(&self) -> Option<usize> {
        self.workers
    }

    /// The strategy override, if any.
    pub fn requested_strategy(&self) -> Option<DistributionStrategy> {
        self.strategy
    }

    /// The δ override, if any.
    pub fn requested_delta_cells(&self) -> Option<f64> {
        self.delta_cells
    }

    /// The shard-mode override, if any.
    pub fn requested_shard_mode(&self) -> Option<ShardMode> {
        self.shard_mode
    }

    /// Overrides the engine's degradation mode for this request.  With
    /// `true`, a shard whose source is slow or dead is skipped and reported
    /// in [`SearchResponse::failures`] instead of failing the whole batch —
    /// the answers are computed from the sources that did reply.  With
    /// `false` (the engine default) the first shard error aborts the batch.
    pub fn skip_failed_sources(mut self, skip: bool) -> Self {
        self.skip_failed_sources = Some(skip);
        self
    }

    /// The degradation-mode override, if any.
    pub fn requested_skip_failed_sources(&self) -> Option<bool> {
        self.skip_failed_sources
    }

    /// Whether statistics collection was requested.
    pub fn wants_stats(&self) -> bool {
        self.collect_stats
    }

    /// Opt in to structured tracing (default off): the engine assigns a
    /// trace id, propagates it to every contacted source on the transport
    /// frame, and returns a [`SearchResponse::trace`] of timed spans
    /// covering planning, per-shard transport calls, the sources' traversal
    /// vs. verification split and aggregation.  Like the statistics channel,
    /// tracing never changes the counted protocol bytes.
    pub fn with_trace(mut self, collect: bool) -> Self {
        self.collect_trace = collect;
        self
    }

    /// Whether a trace was requested.
    pub fn wants_trace(&self) -> bool {
        self.collect_trace
    }
}

/// Typed per-query answers of a [`SearchResponse`], one variant per
/// [`SearchKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum SearchResults {
    /// OJSP answers, in query order.
    Overlap(Vec<AggregatedOverlap>),
    /// CJSP answers, in query order.
    Coverage(Vec<AggregatedCoverage>),
    /// kNN answers, in query order.
    Knn(Vec<AggregatedKnn>),
}

impl SearchResults {
    /// Number of per-query answers.
    pub fn len(&self) -> usize {
        match self {
            SearchResults::Overlap(v) => v.len(),
            SearchResults::Coverage(v) => v.len(),
            SearchResults::Knn(v) => v.len(),
        }
    }

    /// Whether the batch produced no answers (empty batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Time and volume spent talking to one source over a whole request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTiming {
    /// The source.
    pub source: SourceId,
    /// Requests sent to it.
    pub requests: usize,
    /// Protocol bytes exchanged with it (both directions).
    pub bytes: usize,
    /// Wall-clock time spent in transport calls to it (includes the
    /// source's local search time).
    pub elapsed: Duration,
    /// The part of `elapsed` the source itself reported serving — the
    /// remainder is transport overhead (framing, sockets, scheduling).
    /// Zero when the source did not report service times.
    pub service: Duration,
}

/// One source a degraded run could not get an answer from: the shard(s)
/// bound for it were skipped and the batch was aggregated without them.
///
/// Recorded only when the run opted in with
/// [`SearchRequest::skip_failed_sources`] (or the engine's equivalent
/// configuration); a fail-fast run aborts on the first error instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFailure {
    /// The source that failed.
    pub source: SourceId,
    /// The first error observed on a shard bound for this source.
    pub error: SearchError,
}

/// What a [`SearchRequest`] produces: typed answers plus the cost accounting
/// of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Per-query answers, in query order.
    pub results: SearchResults,
    /// Communication statistics accumulated over the whole batch.
    pub comm: CommStats,
    /// Local-search statistics accumulated over every contacted source;
    /// `None` when the request opted out (or a remote source did not report
    /// them).
    pub search: Option<SearchStats>,
    /// Per-source transport timing, ascending by source id.
    pub per_source: Vec<SourceTiming>,
    /// Sources a degraded run skipped, ascending by source id; always empty
    /// for fail-fast runs.  [`CommStats`] byte and request counters cover
    /// completed exchanges only (a failed shard moves no accounted bytes),
    /// while `sources_contacted` counts planned contacts, including the
    /// sources listed here.
    pub failures: Vec<SourceFailure>,
    /// Wall-clock time spent planning, searching and aggregating.
    pub elapsed: Duration,
    /// The structured trace of the run; `None` unless the request opted in
    /// with [`SearchRequest::with_trace`].
    pub trace: Option<obs::Trace>,
}

impl SearchResponse {
    /// Whether every planned shard completed (no source was skipped).
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

impl SearchResponse {
    /// The OJSP answers, if this was an OJSP request.
    pub fn overlap(&self) -> Option<&[AggregatedOverlap]> {
        match &self.results {
            SearchResults::Overlap(v) => Some(v),
            _ => None,
        }
    }

    /// The CJSP answers, if this was a CJSP request.
    pub fn coverage(&self) -> Option<&[AggregatedCoverage]> {
        match &self.results {
            SearchResults::Coverage(v) => Some(v),
            _ => None,
        }
    }

    /// The kNN answers, if this was a kNN request.
    pub fn knn(&self) -> Option<&[AggregatedKnn]> {
        match &self.results {
            SearchResults::Knn(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::Point;

    #[test]
    fn builder_chains_and_reports_options() {
        let q = SpatialDataset::new(1, vec![Point::new(0.0, 0.0)]);
        let r = SearchRequest::cjsp(q.clone())
            .k(4)
            .workers(2)
            .strategy(DistributionStrategy::Broadcast)
            .delta_cells(5.0)
            .with_stats(false);
        assert_eq!(r.kind(), SearchKind::Cjsp);
        assert_eq!(r.queries().len(), 1);
        assert_eq!(r.requested_k(), 4);
        assert_eq!(r.requested_workers(), Some(2));
        assert_eq!(
            r.requested_strategy(),
            Some(DistributionStrategy::Broadcast)
        );
        assert_eq!(r.requested_delta_cells(), Some(5.0));
        assert!(!r.wants_stats());

        let batch = SearchRequest::knn_batch(vec![q.clone(), q]);
        assert_eq!(batch.kind(), SearchKind::Knn);
        assert_eq!(batch.queries().len(), 2);
        assert_eq!(batch.requested_workers(), None);
        assert!(batch.wants_stats());
    }

    #[test]
    fn results_len_covers_every_variant() {
        assert_eq!(SearchResults::Overlap(vec![]).len(), 0);
        assert!(SearchResults::Coverage(vec![]).is_empty());
        let knn = SearchResults::Knn(vec![AggregatedKnn { neighbors: vec![] }]);
        assert_eq!(knn.len(), 1);
        assert!(!knn.is_empty());
    }
}
