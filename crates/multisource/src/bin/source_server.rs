//! `source-server` — run one data source as its own process.
//!
//! The federated deployment of the paper's Fig. 3, for real: the server
//! loads raw datasets, grids them at its own resolution, builds its DITS-L,
//! then serves the framed multi-source protocol (OJSP / CJSP / kNN queries
//! and `ApplyUpdates` maintenance batches) over TCP.  A data center reaches
//! it through [`multisource::TcpTransport`] and bootstraps its DITS-G with
//! [`multisource::DataCenter::from_transport`].
//!
//! ```text
//! source-server --id 2 --name parks --resolution 12 \
//!     --listen 127.0.0.1:7702 --data parks.tsv
//! ```
//!
//! The data file is whitespace-separated `dataset_id lon lat` triples, one
//! point per line (`#` starts a comment); points sharing a dataset id form
//! one dataset.  On startup the server prints `LISTENING <addr>` to stdout —
//! with `--listen 127.0.0.1:0` that is how callers learn the ephemeral port.
//!
//! Writing a line reading `SHUTDOWN` to the server's stdin drains it
//! gracefully: the server stops accepting, every connection finishes the
//! frame it is serving, and the process exits cleanly (printing `DRAINED`)
//! instead of dying mid-frame.  EOF on stdin is deliberately *not* a
//! shutdown trigger, so servers spawned with a null or inherited stdin run
//! forever, exactly as before.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use dits::DitsLocalConfig;
use multisource::DataSource;
use multisource::{serve_source_until, ShutdownSignal};
use spatial::{Grid, Point, SourceId, SpatialDataset};

struct Args {
    id: SourceId,
    name: String,
    resolution: u32,
    leaf_capacity: usize,
    listen: String,
    data: String,
}

const USAGE: &str = "usage: source-server --id N --data FILE \
[--name STR] [--resolution N] [--leaf-capacity N] [--listen ADDR]

Serves one multi-source data source over framed TCP.

  --id N             source id (u16), required
  --data FILE        whitespace-separated `dataset_id lon lat` lines, required
  --name STR         human-readable source name      (default: source-<id>)
  --resolution N     grid resolution theta, 1..=31   (default: 12)
  --leaf-capacity N  DITS-L leaf capacity f          (default: 10)
  --listen ADDR      bind address                    (default: 127.0.0.1:0)";

fn parse_args() -> Result<Args, String> {
    let mut id: Option<SourceId> = None;
    let mut name: Option<String> = None;
    let mut resolution: u32 = 12;
    let mut leaf_capacity: usize = 10;
    let mut listen = "127.0.0.1:0".to_string();
    let mut data: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--id" => id = Some(value("--id")?.parse().map_err(|e| format!("--id: {e}"))?),
            "--name" => name = Some(value("--name")?),
            "--resolution" => {
                resolution = value("--resolution")?
                    .parse()
                    .map_err(|e| format!("--resolution: {e}"))?
            }
            "--leaf-capacity" => {
                leaf_capacity = value("--leaf-capacity")?
                    .parse()
                    .map_err(|e| format!("--leaf-capacity: {e}"))?
            }
            "--listen" => listen = value("--listen")?,
            "--data" => data = Some(value("--data")?),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    let id = id.ok_or_else(|| format!("--id is required\n\n{USAGE}"))?;
    let data = data.ok_or_else(|| format!("--data is required\n\n{USAGE}"))?;
    Ok(Args {
        name: name.unwrap_or_else(|| format!("source-{id}")),
        id,
        resolution,
        leaf_capacity,
        listen,
        data,
    })
}

/// Parses `dataset_id lon lat` lines into datasets (grouped by id, points in
/// file order).
fn load_datasets(path: &str) -> Result<Vec<SpatialDataset>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut by_id: BTreeMap<u32, Vec<Point>> = BTreeMap::new();
    for (line_no, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse = |field: Option<&str>, what: &str| -> Result<f64, String> {
            field
                .ok_or_else(|| format!("{path}:{}: missing {what}", line_no + 1))?
                .parse::<f64>()
                .map_err(|e| format!("{path}:{}: bad {what}: {e}", line_no + 1))
        };
        let id = fields
            .next()
            .ok_or_else(|| format!("{path}:{}: missing dataset id", line_no + 1))?
            .parse::<u32>()
            .map_err(|e| format!("{path}:{}: bad dataset id: {e}", line_no + 1))?;
        let lon = parse(fields.next(), "longitude")?;
        let lat = parse(fields.next(), "latitude")?;
        by_id.entry(id).or_default().push(Point::new(lon, lat));
    }
    Ok(by_id
        .into_iter()
        .map(|(id, points)| SpatialDataset::new(id, points))
        .collect())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let grid = Grid::global(args.resolution).map_err(|e| e.to_string())?;
    let datasets = load_datasets(&args.data)?;
    let source = DataSource::build(
        args.id,
        args.name.clone(),
        grid,
        &datasets,
        DitsLocalConfig {
            leaf_capacity: args.leaf_capacity,
        },
    );
    let listener =
        TcpListener::bind(&args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "source-server: id {} ({}), {} datasets, θ={}, f={}",
        args.id,
        args.name,
        source.dataset_count(),
        args.resolution,
        args.leaf_capacity,
    );
    // The machine-readable ready line callers wait for.
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();

    // Graceful shutdown: a `SHUTDOWN` line on stdin drains the server.  EOF
    // alone does not trigger it (a null stdin must not kill the server), so
    // the watcher simply exits when stdin closes without the magic line.
    let shutdown = ShutdownSignal::new();
    let signal = shutdown.clone();
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            match line {
                Ok(line) if line.trim() == "SHUTDOWN" => {
                    eprintln!("source-server: shutdown requested, draining");
                    signal.trigger();
                    return;
                }
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    });

    serve_source_until(listener, source, shutdown);
    // The machine-readable drained line: in-flight frames are answered and
    // every connection is closed.
    println!("DRAINED");
    let _ = std::io::stdout().flush();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
