//! End-to-end assembly of the multi-source search framework.
//!
//! [`MultiSourceFramework`] owns the data sources and the data center,
//! mirrors the deployment of Fig. 3 and exposes the two batch entry points
//! the experiments need: `run_ojsp` and `run_cjsp` over a set of query
//! datasets, returning the aggregated answers, the accumulated communication
//! statistics and the wall-clock search time.

use std::time::{Duration, Instant};

use dits::DitsLocalConfig;
use spatial::{Grid, SourceId, SpatialDataset};

use crate::center::{
    AggregatedCoverage, AggregatedOverlap, DataCenter, DistributionStrategy,
};
use crate::comm::{CommConfig, CommStats};
use crate::source::DataSource;

/// Configuration of the whole framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkConfig {
    /// Grid resolution θ shared by the sources in one experiment run.
    pub resolution: u32,
    /// Leaf capacity `f` of every local index (and of the global index).
    pub leaf_capacity: usize,
    /// Connectivity threshold δ in cell units (CJSP only).
    pub delta_cells: f64,
    /// Query-distribution strategy.
    pub strategy: DistributionStrategy,
    /// Simulated network parameters.
    pub comm: CommConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            resolution: 12,
            leaf_capacity: 10,
            delta_cells: 10.0,
            strategy: DistributionStrategy::PrunedClipped,
            comm: CommConfig::default(),
        }
    }
}

/// Result of a batch run: per-query answers plus accumulated costs.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    /// One aggregated answer per query, in query order.
    pub answers: Vec<T>,
    /// Communication statistics accumulated over the whole batch.
    pub comm: CommStats,
    /// Wall-clock time spent in search and aggregation.
    pub elapsed: Duration,
}

impl<T> BatchOutcome<T> {
    /// Transmission time implied by the accumulated bytes, in milliseconds.
    pub fn transmission_time_ms(&self, config: &CommConfig) -> f64 {
        self.comm.transmission_time_ms(config)
    }
}

/// The assembled multi-source search framework.
#[derive(Debug, Clone)]
pub struct MultiSourceFramework {
    config: FrameworkConfig,
    grid: Grid,
    sources: Vec<DataSource>,
    center: DataCenter,
}

impl MultiSourceFramework {
    /// Builds the framework: one [`DataSource`] (with its DITS-L) per input
    /// collection, then the data center's DITS-G from the uploaded root
    /// summaries.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is outside `1..=31` (programming error in
    /// experiment configuration).
    pub fn build(
        source_data: &[(String, Vec<SpatialDataset>)],
        config: FrameworkConfig,
    ) -> Self {
        let grid = Grid::global(config.resolution).expect("valid resolution");
        let local_config = DitsLocalConfig { leaf_capacity: config.leaf_capacity };
        let sources: Vec<DataSource> = source_data
            .iter()
            .enumerate()
            .map(|(i, (name, datasets))| {
                DataSource::build(i as SourceId, name.clone(), grid, datasets, local_config)
            })
            .collect();
        let delta_lonlat =
            config.delta_cells * grid.cell_width().max(grid.cell_height());
        let center = DataCenter::build(&sources, config.leaf_capacity, delta_lonlat);
        Self { config, grid, sources, center }
    }

    /// The framework's configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The shared grid of this run.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The data sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// Mutable access to the data sources (index-maintenance experiments).
    pub fn sources_mut(&mut self) -> &mut [DataSource] {
        &mut self.sources
    }

    /// The data center.
    pub fn center(&self) -> &DataCenter {
        &self.center
    }

    /// Total number of datasets across all sources.
    pub fn dataset_count(&self) -> usize {
        self.sources.iter().map(|s| s.dataset_count()).sum()
    }

    /// Runs the overlap joinable search for one query.
    pub fn ojsp(&self, query: &SpatialDataset, k: usize) -> (AggregatedOverlap, CommStats) {
        self.center.ojsp(&self.sources, query, k, self.config.strategy)
    }

    /// Runs the coverage joinable search for one query.
    pub fn cjsp(&self, query: &SpatialDataset, k: usize) -> (AggregatedCoverage, CommStats) {
        self.center.cjsp(
            &self.sources,
            query,
            k,
            self.config.delta_cells,
            self.config.strategy,
        )
    }

    /// Runs OJSP over a batch of queries, accumulating costs.
    pub fn run_ojsp(&self, queries: &[SpatialDataset], k: usize) -> BatchOutcome<AggregatedOverlap> {
        let start = Instant::now();
        let mut comm = CommStats::new();
        let mut answers = Vec::with_capacity(queries.len());
        for q in queries {
            let (answer, c) = self.ojsp(q, k);
            comm.merge(&c);
            answers.push(answer);
        }
        BatchOutcome { answers, comm, elapsed: start.elapsed() }
    }

    /// Runs CJSP over a batch of queries, accumulating costs.
    pub fn run_cjsp(&self, queries: &[SpatialDataset], k: usize) -> BatchOutcome<AggregatedCoverage> {
        let start = Instant::now();
        let mut comm = CommStats::new();
        let mut answers = Vec::with_capacity(queries.len());
        for q in queries {
            let (answer, c) = self.cjsp(q, k);
            comm.merge(&c);
            answers.push(answer);
        }
        BatchOutcome { answers, comm, elapsed: start.elapsed() }
    }

    /// Runs OJSP over a batch of queries using one worker thread per CPU,
    /// returning the same outcome as [`run_ojsp`](Self::run_ojsp).  The
    /// multi-source search parallelises naturally because each query's
    /// routing and aggregation are independent.
    pub fn run_ojsp_parallel(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> BatchOutcome<AggregatedOverlap> {
        let start = Instant::now();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(queries.len().max(1));
        let results = parking_lot::Mutex::new(vec![None; queries.len()]);
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let outcome = self.ojsp(&queries[i], k);
                    results.lock()[i] = Some(outcome);
                });
            }
        })
        .expect("worker thread panicked");
        let mut comm = CommStats::new();
        let mut answers = Vec::with_capacity(queries.len());
        for slot in results.into_inner() {
            let (answer, c) = slot.expect("every query processed");
            comm.merge(&c);
            answers.push(answer);
        }
        BatchOutcome { answers, comm, elapsed: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};
    use spatial::Point;

    fn tiny_framework(strategy: DistributionStrategy) -> (MultiSourceFramework, Vec<SpatialDataset>) {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(400),
            seed: 11,
            max_points_per_dataset: Some(120),
        };
        let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        let queries: Vec<SpatialDataset> = source_data
            .iter()
            .flat_map(|(_, d)| d.iter().take(1).cloned())
            .collect();
        let fw = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                strategy,
                ..FrameworkConfig::default()
            },
        );
        (fw, queries)
    }

    #[test]
    fn builds_five_sources_from_the_generator() {
        let (fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        assert_eq!(fw.sources().len(), 5);
        assert!(fw.dataset_count() > 0);
        assert_eq!(fw.center().global().source_count(), 5);
        assert_eq!(fw.grid().resolution(), 11);
    }

    #[test]
    fn queries_drawn_from_a_source_find_themselves() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw.run_ojsp(&queries, 5);
        assert_eq!(outcome.answers.len(), queries.len());
        // A query that *is* one of the indexed datasets must be found with
        // full overlap (it is its own best match).
        let found_self = outcome.answers.iter().filter(|a| !a.results.is_empty()).count();
        assert_eq!(found_self, queries.len());
        assert!(outcome.comm.total_bytes() > 0);
        assert!(outcome.transmission_time_ms(&CommConfig::default()) > 0.0);
    }

    #[test]
    fn strategies_agree_on_results_but_not_on_cost() {
        let (fw_b, queries) = tiny_framework(DistributionStrategy::Broadcast);
        let (fw_c, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let out_b = fw_b.run_ojsp(&queries, 5);
        let out_c = fw_c.run_ojsp(&queries, 5);
        for (a, b) in out_b.answers.iter().zip(out_c.answers.iter()) {
            assert_eq!(
                a.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>(),
                b.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>()
            );
        }
        assert!(out_c.comm.total_bytes() <= out_b.comm.total_bytes());
        assert!(out_c.comm.requests <= out_b.comm.requests);
    }

    #[test]
    fn cjsp_batch_improves_coverage() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw.run_cjsp(&queries, 3);
        assert_eq!(outcome.answers.len(), queries.len());
        for a in &outcome.answers {
            assert!(a.coverage >= a.query_coverage);
            assert!(a.selected.len() <= 3);
        }
    }

    #[test]
    fn parallel_and_sequential_ojsp_agree() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let seq = fw.run_ojsp(&queries, 4);
        let par = fw.run_ojsp_parallel(&queries, 4);
        assert_eq!(seq.answers.len(), par.answers.len());
        for (a, b) in seq.answers.iter().zip(par.answers.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(seq.comm.total_bytes(), par.comm.total_bytes());
    }

    #[test]
    fn index_maintenance_through_the_framework() {
        let (mut fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let before = fw.dataset_count();
        let grid = *fw.grid();
        let new_dataset = SpatialDataset::new(
            90_000,
            (0..10).map(|j| Point::new(-77.0 + j as f64 * 0.01, 38.9)).collect(),
        );
        let node = dits::DatasetNode::from_dataset(&grid, &new_dataset).unwrap();
        assert!(fw.sources_mut()[3].index_mut().insert(node));
        assert_eq!(fw.dataset_count(), before + 1);
    }
}
