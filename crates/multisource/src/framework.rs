//! End-to-end assembly of the multi-source search framework.
//!
//! [`MultiSourceFramework`] owns the data sources and the data center,
//! mirrors the deployment of Fig. 3 and exposes the batch entry points the
//! experiments need: `run_ojsp` and `run_cjsp` over a set of query datasets.
//! Both route through the [`QueryEngine`](crate::engine::QueryEngine) — the
//! framework plans nothing itself; it only assembles the deployment and
//! hands batches to the engine.
//!
//! Index maintenance flows through [`MultiSourceFramework::apply_updates`]:
//! a batch of [`UpdateOp`]s travels to one source as a
//! [`Message::ApplyUpdates`], the source applies it to its DITS-L, and the
//! returned [`Message::SummaryRefresh`] is folded into the center's DITS-G
//! before the call returns — so query batches issued afterwards are planned
//! against summaries that agree with every local index.

use std::fmt;

use dits::{DitsLocalConfig, MaintenanceStats, SourceSummary};
use spatial::{Grid, SourceId, SpatialDataset, SpatialError};

use crate::center::{AggregatedCoverage, AggregatedOverlap, DataCenter, DistributionStrategy};
use crate::comm::{CommConfig, CommStats};
use crate::engine::{BatchOutcome, EngineConfig, QueryEngine};
use crate::message::{Message, UpdateOp};
use crate::source::DataSource;

/// Why a maintenance batch could not be applied.  In both cases nothing was
/// mutated — neither the source's DITS-L nor the center's DITS-G.
#[derive(Debug, PartialEq)]
pub enum MaintenanceError {
    /// The framework has no source with this id.
    UnknownSource(SourceId),
    /// The batch contained a structurally invalid dataset (e.g. an empty
    /// one); the source rejected the whole batch before applying anything.
    Spatial(SpatialError),
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceError::UnknownSource(id) => {
                write!(f, "no data source with id {id} in the framework")
            }
            MaintenanceError::Spatial(e) => write!(f, "maintenance batch rejected: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

impl From<SpatialError> for MaintenanceError {
    fn from(e: SpatialError) -> Self {
        MaintenanceError::Spatial(e)
    }
}

/// What one applied maintenance batch produced.
#[derive(Debug, Clone)]
pub struct MaintenanceOutcome {
    /// The source's root summary after the batch (already folded into
    /// DITS-G by the time the caller sees it).
    pub summary: SourceSummary,
    /// Structural work done by the batch, across the local index (splits,
    /// collapses, relocations) and the global one (refreshes, rebuilds).
    pub stats: MaintenanceStats,
    /// Bytes moved by the maintenance exchange.
    pub comm: CommStats,
}

/// Configuration of the whole framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkConfig {
    /// Grid resolution θ shared by the sources in one experiment run.
    pub resolution: u32,
    /// Leaf capacity `f` of every local index (and of the global index).
    pub leaf_capacity: usize,
    /// Connectivity threshold δ in cell units (CJSP only).
    pub delta_cells: f64,
    /// Query-distribution strategy.
    pub strategy: DistributionStrategy,
    /// Worker threads of the query engine; `0` means one per available CPU.
    pub workers: usize,
    /// Simulated network parameters.
    pub comm: CommConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            resolution: 12,
            leaf_capacity: 10,
            delta_cells: 10.0,
            strategy: DistributionStrategy::PrunedClipped,
            workers: 0,
            comm: CommConfig::default(),
        }
    }
}

/// The assembled multi-source search framework.
#[derive(Debug, Clone)]
pub struct MultiSourceFramework {
    config: FrameworkConfig,
    grid: Grid,
    sources: Vec<DataSource>,
    center: DataCenter,
}

impl MultiSourceFramework {
    /// Builds the framework: one [`DataSource`] (with its DITS-L) per input
    /// collection, then the data center's DITS-G from the uploaded root
    /// summaries.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is outside `1..=31` (programming error in
    /// experiment configuration).
    pub fn build(source_data: &[(String, Vec<SpatialDataset>)], config: FrameworkConfig) -> Self {
        let grid = Grid::global(config.resolution).expect("valid resolution");
        let local_config = DitsLocalConfig {
            leaf_capacity: config.leaf_capacity,
        };
        let sources: Vec<DataSource> = source_data
            .iter()
            .enumerate()
            .map(|(i, (name, datasets))| {
                DataSource::build(i as SourceId, name.clone(), grid, datasets, local_config)
            })
            .collect();
        let delta_lonlat = config.delta_cells * grid.cell_width().max(grid.cell_height());
        let center = DataCenter::build(&sources, config.leaf_capacity, delta_lonlat);
        Self {
            config,
            grid,
            sources,
            center,
        }
    }

    /// The framework's configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The shared grid of this run.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The data sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// The data center.
    pub fn center(&self) -> &DataCenter {
        &self.center
    }

    /// Applies a batch of maintenance operations to one source through the
    /// wire protocol, then refreshes the center's DITS-G with the source's
    /// new root summary — the full cross-layer pipeline of Appendix IX-C.
    ///
    /// The exchange is transactional at the batch level: a structurally
    /// invalid dataset rejects the whole batch with nothing mutated
    /// anywhere, while individually impossible operations (duplicate
    /// insert, missing update/delete target) are skipped and counted in
    /// [`MaintenanceStats::rejected`].  By the time this returns `Ok`, the
    /// next [`QueryEngine`] batch is planned against a DITS-G that agrees
    /// with the mutated local index, so `candidate_sources` pruning stays
    /// lossless.
    pub fn apply_updates(
        &mut self,
        source: SourceId,
        ops: &[UpdateOp],
    ) -> Result<MaintenanceOutcome, MaintenanceError> {
        let pos = self
            .sources
            .iter()
            .position(|s| s.id == source)
            .ok_or(MaintenanceError::UnknownSource(source))?;
        let request = Message::ApplyUpdates { ops: ops.to_vec() };
        let mut comm = CommStats::new();
        comm.sources_contacted += 1;
        comm.record_request(request.wire_size());
        let (reply, mut stats) = self.sources[pos]
            .handle_maintenance(&request)
            .expect("ApplyUpdates is a maintenance request")?;
        comm.record_reply(reply.wire_size());
        let Message::SummaryRefresh {
            summary,
            dataset_count,
            ..
        } = reply
        else {
            unreachable!("a maintenance request is answered by SummaryRefresh");
        };
        if dataset_count == 0 {
            // The batch emptied the source.  An empty index has only a
            // degenerate placeholder geometry and can answer no query, so
            // it is dropped from DITS-G (readmitted when data returns)
            // instead of attracting origin-adjacent queries for nothing.
            self.center.remove_source(source, &mut stats);
        } else if !self.center.apply_refresh(summary, &mut stats) {
            // Unknown to DITS-G: the source was empty at build time or was
            // dropped when a previous batch emptied it — register it now
            // that it holds data again.
            self.center.register_source(summary, &mut stats);
        }
        Ok(MaintenanceOutcome {
            summary,
            stats,
            comm,
        })
    }

    /// Total number of datasets across all sources.
    pub fn dataset_count(&self) -> usize {
        self.sources.iter().map(|s| s.dataset_count()).sum()
    }

    /// A query engine over this deployment with the configured worker count.
    pub fn engine(&self) -> QueryEngine<'_> {
        self.engine_with_workers(self.config.workers)
    }

    /// A query engine over this deployment with an explicit worker count
    /// (`0` means one per available CPU).  Used by the scaling benches and
    /// the sequential-vs-parallel parity tests.
    pub fn engine_with_workers(&self, workers: usize) -> QueryEngine<'_> {
        QueryEngine::new(
            &self.center,
            &self.sources,
            EngineConfig {
                workers,
                strategy: self.config.strategy,
                delta_cells: self.config.delta_cells,
            },
        )
    }

    /// Runs the overlap joinable search for one query.
    pub fn ojsp(&self, query: &SpatialDataset, k: usize) -> (AggregatedOverlap, CommStats) {
        let outcome = self.engine().run_ojsp(std::slice::from_ref(query), k);
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .expect("batch of one produces one answer");
        (answer, outcome.comm)
    }

    /// Runs the coverage joinable search for one query.
    pub fn cjsp(&self, query: &SpatialDataset, k: usize) -> (AggregatedCoverage, CommStats) {
        let outcome = self.engine().run_cjsp(std::slice::from_ref(query), k);
        let answer = outcome
            .answers
            .into_iter()
            .next()
            .expect("batch of one produces one answer");
        (answer, outcome.comm)
    }

    /// Runs OJSP over a batch of queries through the query engine.
    pub fn run_ojsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> BatchOutcome<AggregatedOverlap> {
        self.engine().run_ojsp(queries, k)
    }

    /// Runs CJSP over a batch of queries through the query engine.
    pub fn run_cjsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> BatchOutcome<AggregatedCoverage> {
        self.engine().run_cjsp(queries, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};
    use spatial::Point;

    fn tiny_framework(
        strategy: DistributionStrategy,
    ) -> (MultiSourceFramework, Vec<SpatialDataset>) {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(400),
            seed: 11,
            max_points_per_dataset: Some(120),
        };
        let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        let queries: Vec<SpatialDataset> = source_data
            .iter()
            .flat_map(|(_, d)| d.iter().take(1).cloned())
            .collect();
        let fw = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                strategy,
                ..FrameworkConfig::default()
            },
        );
        (fw, queries)
    }

    #[test]
    fn builds_five_sources_from_the_generator() {
        let (fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        assert_eq!(fw.sources().len(), 5);
        assert!(fw.dataset_count() > 0);
        assert_eq!(fw.center().global().source_count(), 5);
        assert_eq!(fw.grid().resolution(), 11);
    }

    #[test]
    fn queries_drawn_from_a_source_find_themselves() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw.run_ojsp(&queries, 5);
        assert_eq!(outcome.answers.len(), queries.len());
        // A query that *is* one of the indexed datasets must be found with
        // full overlap (it is its own best match).
        let found_self = outcome
            .answers
            .iter()
            .filter(|a| !a.results.is_empty())
            .count();
        assert_eq!(found_self, queries.len());
        assert!(outcome.comm.total_bytes() > 0);
        assert!(outcome.transmission_time_ms(&CommConfig::default()) > 0.0);
    }

    #[test]
    fn strategies_agree_on_results_but_not_on_cost() {
        let (fw_b, queries) = tiny_framework(DistributionStrategy::Broadcast);
        let (fw_c, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let out_b = fw_b.run_ojsp(&queries, 5);
        let out_c = fw_c.run_ojsp(&queries, 5);
        for (a, b) in out_b.answers.iter().zip(out_c.answers.iter()) {
            assert_eq!(
                a.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>(),
                b.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>()
            );
        }
        assert!(out_c.comm.total_bytes() <= out_b.comm.total_bytes());
        assert!(out_c.comm.requests <= out_b.comm.requests);
    }

    #[test]
    fn cjsp_batch_improves_coverage() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw.run_cjsp(&queries, 3);
        assert_eq!(outcome.answers.len(), queries.len());
        for a in &outcome.answers {
            assert!(a.coverage >= a.query_coverage);
            assert!(a.selected.len() <= 3);
        }
    }

    /// The stats-merging parity check: a parallel engine run over the five
    /// sources must produce answers *and* communication byte totals
    /// identical to the sequential (one-worker) path on the same fixed seed.
    #[test]
    fn parallel_and_sequential_engines_agree() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let seq = fw.engine_with_workers(1).run_ojsp(&queries, 4);
        let par = fw.engine_with_workers(8).run_ojsp(&queries, 4);
        assert_eq!(seq.answers, par.answers);
        assert_eq!(
            seq.comm, par.comm,
            "CommStats must merge to identical totals"
        );
        assert_eq!(
            seq.search, par.search,
            "SearchStats must merge to identical totals"
        );

        let seq = fw.engine_with_workers(1).run_cjsp(&queries, 3);
        let par = fw.engine_with_workers(8).run_cjsp(&queries, 3);
        assert_eq!(seq.answers, par.answers);
        assert_eq!(seq.comm, par.comm);
        assert_eq!(seq.search, par.search);
    }

    #[test]
    fn index_maintenance_through_the_framework() {
        let (mut fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let before = fw.dataset_count();
        let new_dataset = SpatialDataset::new(
            90_000,
            (0..10)
                .map(|j| Point::new(-77.0 + j as f64 * 0.01, 38.9))
                .collect(),
        );
        let outcome = fw
            .apply_updates(3, &[UpdateOp::Insert(new_dataset.clone())])
            .unwrap();
        assert_eq!(fw.dataset_count(), before + 1);
        assert_eq!(outcome.stats.inserts, 1);
        assert_eq!(outcome.stats.summary_refreshes, 1);
        assert!(outcome.comm.total_bytes() > 0);
        assert_eq!(outcome.comm.requests, 1);
        assert_eq!(outcome.comm.replies, 1);

        // The refreshed DITS-G routes a query for the new dataset to the
        // mutated source, and the engine finds it with full overlap.
        let (answer, _) = fw.ojsp(&new_dataset, 1);
        assert_eq!(answer.results.len(), 1);
        assert_eq!(answer.results[0].0, 3);
        assert_eq!(answer.results[0].1.dataset, 90_000);

        // Deleting it again restores the old state.
        let outcome = fw.apply_updates(3, &[UpdateOp::Delete(90_000)]).unwrap();
        assert_eq!(outcome.stats.deletes, 1);
        assert_eq!(fw.dataset_count(), before);
    }

    #[test]
    fn maintenance_errors_leave_the_framework_untouched() {
        let (mut fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let before = fw.dataset_count();
        // Unknown source.
        let err = fw.apply_updates(99, &[UpdateOp::Delete(0)]).unwrap_err();
        assert_eq!(err, MaintenanceError::UnknownSource(99));
        // Structurally invalid batch: nothing applied, not even the valid
        // leading op.
        let err = fw
            .apply_updates(
                2,
                &[
                    UpdateOp::Insert(SpatialDataset::new(91_000, vec![Point::new(0.0, 0.0)])),
                    UpdateOp::Insert(SpatialDataset::new(91_001, vec![])),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::Spatial(_)));
        assert_eq!(fw.dataset_count(), before);
        assert!(!err.to_string().is_empty());
    }
}
