//! End-to-end assembly of the multi-source search framework.
//!
//! [`MultiSourceFramework`] owns the data sources and the data center,
//! mirrors the deployment of Fig. 3 and exposes the unified query surface:
//! build a [`SearchRequest`] (OJSP / CJSP / kNN, single query or batch) and
//! execute it with [`MultiSourceFramework::search`].  Execution routes
//! through the [`QueryEngine`](crate::engine::QueryEngine) over an
//! [`InProcessTransport`] — the framework plans nothing itself; it only
//! assembles the deployment and hands requests to the engine.  The same
//! requests run unchanged against remote sources: see
//! [`DataCenter::from_transport`] and [`TcpTransport`](crate::TcpTransport).
//!
//! Index maintenance flows through [`MultiSourceFramework::apply_updates`]:
//! a batch of [`UpdateOp`]s travels to one source as a
//! [`Message::ApplyUpdates`](crate::message::Message::ApplyUpdates) through
//! an [`ExclusiveTransport`], the source applies it to its DITS-L, and the
//! returned summary refresh is folded into the center's DITS-G before the
//! call returns — so query batches issued afterwards are planned against
//! summaries that agree with every local index.

use dits::DitsLocalConfig;
use spatial::{Grid, SourceId, SpatialDataset};

use crate::api::{SearchRequest, SearchResponse};
use crate::center::{
    AggregatedCoverage, AggregatedOverlap, DataCenter, DistributionStrategy, MaintenanceOutcome,
};
use crate::comm::{CommConfig, CommStats};
use crate::engine::{BatchOutcome, EngineConfig, QueryEngine};
use crate::error::{ConfigError, SearchError};
use crate::message::UpdateOp;
use crate::source::DataSource;
use crate::transport::ExclusiveTransport;

/// Configuration of the whole framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkConfig {
    /// Grid resolution θ shared by the sources in one experiment run.
    pub resolution: u32,
    /// Leaf capacity `f` of every local index (and of the global index).
    pub leaf_capacity: usize,
    /// Connectivity threshold δ in cell units (CJSP only).
    pub delta_cells: f64,
    /// Query-distribution strategy.
    pub strategy: DistributionStrategy,
    /// Worker threads of the query engine; `0` means one per available CPU.
    pub workers: usize,
    /// Simulated network parameters.
    pub comm: CommConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self {
            resolution: 12,
            leaf_capacity: 10,
            delta_cells: 10.0,
            strategy: DistributionStrategy::PrunedClipped,
            workers: 0,
            comm: CommConfig::default(),
        }
    }
}

impl FrameworkConfig {
    /// Validates the configuration without building anything: the grid
    /// resolution must be constructible (`1..=31`) and δ finite and
    /// non-negative.
    pub fn validate(&self) -> Result<(), SearchError> {
        self.validated_grid().map(|_| ())
    }

    /// Validates and returns the shared grid of a run.
    fn validated_grid(&self) -> Result<Grid, SearchError> {
        let grid = Grid::global(self.resolution)
            .map_err(|e| SearchError::Config(ConfigError::Resolution(e)))?;
        if !self.delta_cells.is_finite() || self.delta_cells < 0.0 {
            return Err(SearchError::Config(ConfigError::Delta(self.delta_cells)));
        }
        Ok(grid)
    }
}

/// The assembled multi-source search framework.
#[derive(Debug, Clone)]
pub struct MultiSourceFramework {
    config: FrameworkConfig,
    grid: Grid,
    sources: Vec<DataSource>,
    center: DataCenter,
}

impl MultiSourceFramework {
    /// Builds the framework: one [`DataSource`] (with its DITS-L) per input
    /// collection, then the data center's DITS-G from the uploaded root
    /// summaries.  Returns [`SearchError::Config`] for an invalid
    /// configuration instead of panicking.
    pub fn try_build(
        source_data: &[(String, Vec<SpatialDataset>)],
        config: FrameworkConfig,
    ) -> Result<Self, SearchError> {
        let grid = config.validated_grid()?;
        let local_config = DitsLocalConfig {
            leaf_capacity: config.leaf_capacity,
        };
        let sources: Vec<DataSource> = source_data
            .iter()
            .enumerate()
            .map(|(i, (name, datasets))| {
                DataSource::build(i as SourceId, name.clone(), grid, datasets, local_config)
            })
            .collect();
        let center = DataCenter::build(&sources, config.leaf_capacity);
        Ok(Self {
            config,
            grid,
            sources,
            center,
        })
    }

    /// Builds the framework, panicking on an invalid configuration — a
    /// convenience for tests and experiment binaries whose configurations
    /// are static.  Library callers should prefer [`Self::try_build`].
    ///
    /// # Panics
    ///
    /// Panics when [`FrameworkConfig::validate`] rejects the configuration.
    pub fn build(source_data: &[(String, Vec<SpatialDataset>)], config: FrameworkConfig) -> Self {
        match Self::try_build(source_data, config) {
            Ok(framework) => framework,
            // lint:allow(panic-freedom): documented contract of this test/experiment convenience; library callers use try_build
            Err(e) => panic!("invalid framework configuration: {e}"),
        }
    }

    /// The framework's configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The shared grid of this run.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The data sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// The data center.
    pub fn center(&self) -> &DataCenter {
        &self.center
    }

    /// Executes a unified [`SearchRequest`] (OJSP / CJSP / kNN, single query
    /// or batch) over the in-process deployment.  This is the blessed query
    /// surface; everything else delegates to it.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse, SearchError> {
        self.engine().run(request)
    }

    /// Applies a batch of maintenance operations to one source through the
    /// wire protocol (over an [`ExclusiveTransport`]), then refreshes the
    /// center's DITS-G with the source's new root summary — the full
    /// cross-layer pipeline of Appendix IX-C.  See
    /// [`DataCenter::apply_updates`] for the transactional semantics; the
    /// same call works against remote sources over a
    /// [`TcpTransport`](crate::TcpTransport).
    pub fn apply_updates(
        &mut self,
        source: SourceId,
        ops: &[UpdateOp],
    ) -> Result<MaintenanceOutcome, SearchError> {
        let transport = ExclusiveTransport::new(&mut self.sources);
        self.center.apply_updates(&transport, source, ops)
    }

    /// Total number of datasets across all sources.
    pub fn dataset_count(&self) -> usize {
        self.sources.iter().map(|s| s.dataset_count()).sum()
    }

    /// A query engine over this deployment with the configured worker count.
    pub fn engine(&self) -> QueryEngine<'_> {
        self.engine_with_workers(self.config.workers)
    }

    /// A query engine over this deployment with an explicit worker count
    /// (`0` means one per available CPU).  Used by the scaling benches and
    /// the sequential-vs-parallel parity tests.
    pub fn engine_with_workers(&self, workers: usize) -> QueryEngine<'_> {
        QueryEngine::in_process(
            &self.center,
            &self.sources,
            EngineConfig {
                workers,
                strategy: self.config.strategy,
                delta_cells: self.config.delta_cells,
                ..EngineConfig::default()
            },
        )
    }

    /// Runs the overlap joinable search for one query.
    #[deprecated(since = "0.1.0", note = "use `search` with `SearchRequest::ojsp`")]
    pub fn ojsp(
        &self,
        query: &SpatialDataset,
        k: usize,
    ) -> Result<(AggregatedOverlap, CommStats), SearchError> {
        let response = self.search(&SearchRequest::ojsp(query.clone()).k(k))?;
        let comm = response.comm;
        match response.results {
            crate::api::SearchResults::Overlap(answers) => answers
                .into_iter()
                .next()
                .map(|a| (a, comm))
                .ok_or(SearchError::Internal("batch of one produced no answer")),
            _ => Err(SearchError::Internal(
                "OJSP request produced non-OJSP results",
            )),
        }
    }

    /// Runs the coverage joinable search for one query.
    #[deprecated(since = "0.1.0", note = "use `search` with `SearchRequest::cjsp`")]
    pub fn cjsp(
        &self,
        query: &SpatialDataset,
        k: usize,
    ) -> Result<(AggregatedCoverage, CommStats), SearchError> {
        let response = self.search(&SearchRequest::cjsp(query.clone()).k(k))?;
        let comm = response.comm;
        match response.results {
            crate::api::SearchResults::Coverage(answers) => answers
                .into_iter()
                .next()
                .map(|a| (a, comm))
                .ok_or(SearchError::Internal("batch of one produced no answer")),
            _ => Err(SearchError::Internal(
                "CJSP request produced non-CJSP results",
            )),
        }
    }

    /// Runs OJSP over a batch of queries through the query engine.
    #[deprecated(
        since = "0.1.0",
        note = "use `search` with `SearchRequest::ojsp_batch`"
    )]
    pub fn run_ojsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> Result<BatchOutcome<AggregatedOverlap>, SearchError> {
        self.engine().run_ojsp(queries, k)
    }

    /// Runs CJSP over a batch of queries through the query engine.
    #[deprecated(
        since = "0.1.0",
        note = "use `search` with `SearchRequest::cjsp_batch`"
    )]
    pub fn run_cjsp(
        &self,
        queries: &[SpatialDataset],
        k: usize,
    ) -> Result<BatchOutcome<AggregatedCoverage>, SearchError> {
        self.engine().run_cjsp(queries, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{SearchRequest, SearchResults};
    use crate::error::{ConfigError, SearchError};
    use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};
    use spatial::Point;

    fn tiny_framework(
        strategy: DistributionStrategy,
    ) -> (MultiSourceFramework, Vec<SpatialDataset>) {
        let config = GeneratorConfig {
            scale: SourceScale::Custom(400),
            seed: 11,
            max_points_per_dataset: Some(120),
        };
        let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
            .iter()
            .map(|p| (p.name.to_string(), generate_source(p, &config)))
            .collect();
        let queries: Vec<SpatialDataset> = source_data
            .iter()
            .flat_map(|(_, d)| d.iter().take(1).cloned())
            .collect();
        let fw = MultiSourceFramework::build(
            &source_data,
            FrameworkConfig {
                resolution: 11,
                strategy,
                ..FrameworkConfig::default()
            },
        );
        (fw, queries)
    }

    #[test]
    fn builds_five_sources_from_the_generator() {
        let (fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        assert_eq!(fw.sources().len(), 5);
        assert!(fw.dataset_count() > 0);
        assert_eq!(fw.center().global().source_count(), 5);
        assert_eq!(fw.grid().resolution(), 11);
    }

    #[test]
    fn try_build_rejects_invalid_configurations() {
        let bad_resolution = FrameworkConfig {
            resolution: 40,
            ..FrameworkConfig::default()
        };
        assert!(matches!(
            MultiSourceFramework::try_build(&[], bad_resolution),
            Err(SearchError::Config(ConfigError::Resolution(_)))
        ));
        let bad_delta = FrameworkConfig {
            delta_cells: f64::NAN,
            ..FrameworkConfig::default()
        };
        assert!(matches!(
            bad_delta.validate(),
            Err(SearchError::Config(ConfigError::Delta(_)))
        ));
        assert!(FrameworkConfig::default().validate().is_ok());
    }

    #[test]
    fn unified_search_covers_every_kind() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let query = queries[0].clone();

        let ojsp = fw.search(&SearchRequest::ojsp(query.clone()).k(5)).unwrap();
        let answers = ojsp.overlap().expect("OJSP answers");
        assert_eq!(answers.len(), 1);
        assert!(!answers[0].results.is_empty());
        assert!(ojsp.comm.total_bytes() > 0);
        assert!(ojsp.search.expect("stats requested").nodes_visited > 0);
        assert!(!ojsp.per_source.is_empty());

        let cjsp = fw.search(&SearchRequest::cjsp(query.clone()).k(3)).unwrap();
        let answers = cjsp.coverage().expect("CJSP answers");
        assert!(answers[0].coverage >= answers[0].query_coverage);

        let knn = fw
            .search(&SearchRequest::knn(query).k(4).with_stats(false))
            .unwrap();
        let answers = knn.knn().expect("kNN answers");
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].neighbors[0].1.distance, 0.0);
        assert!(knn.search.is_none(), "stats were opted out");
    }

    #[test]
    fn queries_drawn_from_a_source_find_themselves() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .unwrap();
        let answers = outcome.overlap().expect("OJSP answers");
        assert_eq!(answers.len(), queries.len());
        // A query that *is* one of the indexed datasets must be found with
        // full overlap (it is its own best match).
        let found_self = answers.iter().filter(|a| !a.results.is_empty()).count();
        assert_eq!(found_self, queries.len());
        assert!(outcome.comm.total_bytes() > 0);
        assert!(outcome.comm.transmission_time_ms(&CommConfig::default()) > 0.0);
    }

    #[test]
    fn strategies_agree_on_results_but_not_on_cost() {
        let (fw_b, queries) = tiny_framework(DistributionStrategy::Broadcast);
        let (fw_c, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let out_b = fw_b
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .unwrap();
        let out_c = fw_c
            .search(&SearchRequest::ojsp_batch(queries).k(5))
            .unwrap();
        let answers_b = out_b.overlap().unwrap();
        let answers_c = out_c.overlap().unwrap();
        for (a, b) in answers_b.iter().zip(answers_c.iter()) {
            assert_eq!(
                a.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>(),
                b.results.iter().map(|(_, r)| r.overlap).collect::<Vec<_>>()
            );
        }
        assert!(out_c.comm.total_bytes() <= out_b.comm.total_bytes());
        assert!(out_c.comm.requests <= out_b.comm.requests);
    }

    #[test]
    fn cjsp_batch_improves_coverage() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let outcome = fw
            .search(&SearchRequest::cjsp_batch(queries.clone()).k(3))
            .unwrap();
        let answers = outcome.coverage().expect("CJSP answers");
        assert_eq!(answers.len(), queries.len());
        for a in answers {
            assert!(a.coverage >= a.query_coverage);
            assert!(a.selected.len() <= 3);
        }
    }

    #[test]
    fn request_overrides_beat_the_framework_configuration() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        // Per-request Broadcast contacts every source on every query.
        let broadcast = fw
            .search(
                &SearchRequest::ojsp_batch(queries.clone())
                    .k(5)
                    .strategy(DistributionStrategy::Broadcast),
            )
            .unwrap();
        let pruned = fw
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5))
            .unwrap();
        assert_eq!(
            broadcast.comm.sources_contacted,
            queries.len() * fw.sources().len()
        );
        assert!(pruned.comm.sources_contacted <= broadcast.comm.sources_contacted);
        // Per-request worker override: answers identical either way.
        let seq = fw
            .search(&SearchRequest::ojsp_batch(queries.clone()).k(5).workers(1))
            .unwrap();
        assert_eq!(seq.results, pruned.results);
        assert_eq!(seq.comm, pruned.comm);

        // A per-request δ override must reach *routing* too, not only
        // clipping and aggregation: a widened δ under the pruned strategy
        // returns the same answers Broadcast does (routing never loses a
        // connected source).
        for delta in [0.0, 25.0, 60.0] {
            let pruned = fw
                .search(
                    &SearchRequest::cjsp_batch(queries.clone())
                        .k(3)
                        .delta_cells(delta),
                )
                .unwrap();
            let broadcast = fw
                .search(
                    &SearchRequest::cjsp_batch(queries.clone())
                        .k(3)
                        .delta_cells(delta)
                        .strategy(DistributionStrategy::Broadcast),
                )
                .unwrap();
            assert_eq!(
                pruned.results, broadcast.results,
                "δ={delta}: routing pruned a source the aggregation needed"
            );
        }
    }

    /// The deprecated tuple shims still answer identically to the unified
    /// API they delegate to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_search() {
        let (fw, queries) = tiny_framework(DistributionStrategy::PrunedClipped);
        let (answer, comm) = fw.ojsp(&queries[0], 5).unwrap();
        let response = fw
            .search(&SearchRequest::ojsp(queries[0].clone()).k(5))
            .unwrap();
        assert_eq!(
            response.results,
            SearchResults::Overlap(vec![answer.clone()])
        );
        assert_eq!(response.comm, comm);
        assert!(!answer.results.is_empty());

        let (coverage, _) = fw.cjsp(&queries[0], 3).unwrap();
        assert!(coverage.coverage >= coverage.query_coverage);

        let batch = fw.run_ojsp(&queries, 5).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
        let batch = fw.run_cjsp(&queries, 3).unwrap();
        assert_eq!(batch.answers.len(), queries.len());
    }

    #[test]
    fn index_maintenance_through_the_framework() {
        let (mut fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let before = fw.dataset_count();
        let new_dataset = SpatialDataset::new(
            90_000,
            (0..10)
                .map(|j| Point::new(-77.0 + j as f64 * 0.01, 38.9))
                .collect(),
        );
        let outcome = fw
            .apply_updates(3, &[UpdateOp::Insert(new_dataset.clone())])
            .unwrap();
        assert_eq!(fw.dataset_count(), before + 1);
        assert_eq!(outcome.stats.inserts, 1);
        assert_eq!(outcome.stats.summary_refreshes, 1);
        assert!(outcome.comm.total_bytes() > 0);
        assert_eq!(outcome.comm.requests, 1);
        assert_eq!(outcome.comm.replies, 1);

        // The refreshed DITS-G routes a query for the new dataset to the
        // mutated source, and the engine finds it with full overlap.
        let response = fw
            .search(&SearchRequest::ojsp(new_dataset.clone()).k(1))
            .unwrap();
        let answer = &response.overlap().unwrap()[0];
        assert_eq!(answer.results.len(), 1);
        assert_eq!(answer.results[0].0, 3);
        assert_eq!(answer.results[0].1.dataset, 90_000);

        // Deleting it again restores the old state.
        let outcome = fw.apply_updates(3, &[UpdateOp::Delete(90_000)]).unwrap();
        assert_eq!(outcome.stats.deletes, 1);
        assert_eq!(fw.dataset_count(), before);
    }

    #[test]
    fn maintenance_errors_leave_the_framework_untouched() {
        let (mut fw, _) = tiny_framework(DistributionStrategy::PrunedClipped);
        let before = fw.dataset_count();
        // Unknown source.
        let err = fw.apply_updates(99, &[UpdateOp::Delete(0)]).unwrap_err();
        assert_eq!(err, SearchError::UnknownSource(99));
        // Structurally invalid batch: nothing applied, not even the valid
        // leading op.
        let err = fw
            .apply_updates(
                2,
                &[
                    UpdateOp::Insert(SpatialDataset::new(91_000, vec![Point::new(0.0, 0.0)])),
                    UpdateOp::Insert(SpatialDataset::new(91_001, vec![])),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, SearchError::Rejected { .. }));
        assert_eq!(fw.dataset_count(), before);
        assert!(!err.to_string().is_empty());
    }
}
