//! Wire messages exchanged between the data center and the data sources.
//!
//! The communication cost the paper reports (Figs. 13, 19) is the number of
//! bytes transferred, so messages are actually serialised into a compact
//! binary layout (via [`bytes`]) rather than estimated: cell IDs are
//! delta-encoded as LEB128 varints, which rewards the query-clipping
//! strategy exactly the way a real deployment would.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dits::OverlapResult;
use spatial::{CellId, CellSet, DatasetId, SourceId};

/// A coverage candidate returned by a source: a dataset id plus its cells,
/// so the data center can run the final greedy aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCandidate {
    /// The source that owns the dataset.
    pub source: SourceId,
    /// The dataset id within its source.
    pub dataset: DatasetId,
    /// The dataset's cell-based representation.
    pub cells: CellSet,
}

/// Messages of the multi-source protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Data center → source: run a local overlap search.
    OverlapQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
    },
    /// Source → data center: local overlap results.
    OverlapReply {
        /// The replying source.
        source: SourceId,
        /// Local top-k results.
        results: Vec<OverlapResult>,
    },
    /// Data center → source: run a local coverage search.
    CoverageQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
        /// Connectivity threshold δ in cell units.
        delta: f64,
    },
    /// Source → data center: local coverage candidates (with their cells so
    /// the center can aggregate greedily across sources).
    CoverageReply {
        /// The replying source.
        source: SourceId,
        /// Candidate datasets and their cells.
        candidates: Vec<CoverageCandidate>,
    },
}

impl Message {
    /// Serialises the message into its wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Message::OverlapQuery { query, k } => {
                buf.put_u8(0);
                put_varint(&mut buf, *k as u64);
                put_cells(&mut buf, query);
            }
            Message::OverlapReply { source, results } => {
                buf.put_u8(1);
                buf.put_u16(*source);
                put_varint(&mut buf, results.len() as u64);
                for r in results {
                    put_varint(&mut buf, r.dataset as u64);
                    put_varint(&mut buf, r.overlap as u64);
                }
            }
            Message::CoverageQuery { query, k, delta } => {
                buf.put_u8(2);
                put_varint(&mut buf, *k as u64);
                buf.put_f64(*delta);
                put_cells(&mut buf, query);
            }
            Message::CoverageReply { source, candidates } => {
                buf.put_u8(3);
                buf.put_u16(*source);
                put_varint(&mut buf, candidates.len() as u64);
                for c in candidates {
                    buf.put_u16(c.source);
                    put_varint(&mut buf, c.dataset as u64);
                    put_cells(&mut buf, &c.cells);
                }
            }
        }
        buf.freeze()
    }

    /// Deserialises a message from its wire form.
    ///
    /// Returns `None` for malformed input.
    pub fn decode(mut data: Bytes) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let tag = data.get_u8();
        match tag {
            0 => {
                let k = get_varint(&mut data)? as usize;
                let query = get_cells(&mut data)?;
                Some(Message::OverlapQuery { query, k })
            }
            1 => {
                if data.remaining() < 2 {
                    return None;
                }
                let source = data.get_u16();
                let n = get_varint(&mut data)? as usize;
                let mut results = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let dataset = get_varint(&mut data)? as DatasetId;
                    let overlap = get_varint(&mut data)? as usize;
                    results.push(OverlapResult { dataset, overlap });
                }
                Some(Message::OverlapReply { source, results })
            }
            2 => {
                let k = get_varint(&mut data)? as usize;
                if data.remaining() < 8 {
                    return None;
                }
                let delta = data.get_f64();
                let query = get_cells(&mut data)?;
                Some(Message::CoverageQuery { query, k, delta })
            }
            3 => {
                if data.remaining() < 2 {
                    return None;
                }
                let source = data.get_u16();
                let n = get_varint(&mut data)? as usize;
                let mut candidates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if data.remaining() < 2 {
                        return None;
                    }
                    let src = data.get_u16();
                    let dataset = get_varint(&mut data)? as DatasetId;
                    let cells = get_cells(&mut data)?;
                    candidates.push(CoverageCandidate {
                        source: src,
                        dataset,
                        cells,
                    });
                }
                Some(Message::CoverageReply { source, candidates })
            }
            _ => None,
        }
    }

    /// Size of the message on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// Writes a cell set as a count followed by delta-encoded varints (the cells
/// are already sorted, so deltas are small).
fn put_cells(buf: &mut BytesMut, cells: &CellSet) {
    put_varint(buf, cells.len() as u64);
    let mut previous: CellId = 0;
    for cell in cells.iter() {
        put_varint(buf, cell - previous);
        previous = cell;
    }
}

fn get_cells(data: &mut Bytes) -> Option<CellSet> {
    let n = get_varint(data)? as usize;
    let mut cells = Vec::with_capacity(n.min(1 << 20));
    let mut previous: CellId = 0;
    for _ in 0..n {
        let delta = get_varint(data)?;
        previous = previous.checked_add(delta)?;
        cells.push(previous);
    }
    Some(CellSet::from_cells(cells))
}

/// LEB128 unsigned varint.
fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = data.get_u8();
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cs(ids: &[u64]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn overlap_query_roundtrip() {
        let m = Message::OverlapQuery {
            query: cs(&[1, 5, 100, 4096]),
            k: 10,
        };
        let encoded = m.encode();
        assert_eq!(Message::decode(encoded.clone()), Some(m.clone()));
        assert_eq!(m.wire_size(), encoded.len());
    }

    #[test]
    fn overlap_reply_roundtrip() {
        let m = Message::OverlapReply {
            source: 3,
            results: vec![
                OverlapResult {
                    dataset: 7,
                    overlap: 42,
                },
                OverlapResult {
                    dataset: 1000,
                    overlap: 1,
                },
            ],
        };
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn coverage_messages_roundtrip() {
        let q = Message::CoverageQuery {
            query: cs(&[0, 2, 9]),
            k: 5,
            delta: 10.0,
        };
        assert_eq!(Message::decode(q.encode()), Some(q));
        let r = Message::CoverageReply {
            source: 1,
            candidates: vec![CoverageCandidate {
                source: 1,
                dataset: 4,
                cells: cs(&[9, 10, 11]),
            }],
        };
        assert_eq!(Message::decode(r.encode()), Some(r));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert_eq!(Message::decode(Bytes::new()), None);
        assert_eq!(Message::decode(Bytes::from_static(&[9, 1, 2])), None);
        // Truncated query.
        let m = Message::OverlapQuery {
            query: cs(&[1, 2, 3]),
            k: 1,
        };
        let enc = m.encode();
        let truncated = enc.slice(0..enc.len() - 1);
        assert_eq!(Message::decode(truncated), None);
    }

    #[test]
    fn clipping_the_query_shrinks_the_wire_size() {
        let full: CellSet = (0..1000u64).collect();
        let clipped: CellSet = (0..100u64).collect();
        let full_size = Message::OverlapQuery { query: full, k: 10 }.wire_size();
        let clipped_size = Message::OverlapQuery {
            query: clipped,
            k: 10,
        }
        .wire_size();
        assert!(clipped_size < full_size / 5);
    }

    #[test]
    fn delta_encoding_beats_fixed_width() {
        // 1000 consecutive cells fit in ~1 byte each instead of 8.
        let cells: CellSet = (10_000..11_000u64).collect();
        let size = Message::OverlapQuery {
            query: cells,
            k: 10,
        }
        .wire_size();
        assert!(size < 1_000 * 8 / 4, "wire size {size} not compact");
    }

    proptest! {
        #[test]
        fn prop_messages_roundtrip(
            cells in proptest::collection::vec(0u64..1_000_000, 0..200),
            k in 0usize..100,
            source in 0u16..100,
            delta in 0.0f64..50.0,
        ) {
            let q = Message::OverlapQuery { query: CellSet::from_cells(cells.clone()), k };
            prop_assert_eq!(Message::decode(q.encode()), Some(q));
            let c = Message::CoverageQuery {
                query: CellSet::from_cells(cells.clone()), k, delta };
            prop_assert_eq!(Message::decode(c.encode()), Some(c));
            let r = Message::CoverageReply {
                source,
                candidates: vec![CoverageCandidate {
                    source,
                    dataset: 9,
                    cells: CellSet::from_cells(cells),
                }],
            };
            prop_assert_eq!(Message::decode(r.encode()), Some(r));
        }
    }
}
