//! Wire messages exchanged between the data center and the data sources.
//!
//! The communication cost the paper reports (Figs. 13, 19) is the number of
//! bytes transferred, so messages are actually serialised into a compact
//! binary layout (via [`bytes`]) rather than estimated: cell IDs are
//! delta-encoded as LEB128 varints, which rewards the query-clipping
//! strategy exactly the way a real deployment would.
//!
//! # Maintenance protocol
//!
//! Besides the two query exchanges (overlap, coverage), the protocol has one
//! maintenance exchange implementing the paper's Appendix IX-C algorithms
//! across the deployment:
//!
//! * [`Message::ApplyUpdates`] (center → source) carries a batch of
//!   [`UpdateOp`]s — raw datasets for inserts/updates (each source grids
//!   them at its own resolution) and dataset ids for deletes.
//! * [`Message::SummaryRefresh`] (source → center) acknowledges the batch
//!   and carries the source's *new root summary* plus applied/rejected
//!   counts, so the data center can refresh DITS-G without another round
//!   trip.
//!
//! **Consistency guarantee.** A source validates the whole batch before
//! mutating anything (a structurally invalid op — e.g. an empty dataset —
//! rejects the batch with no partial application), and the data center
//! refreshes DITS-G with the returned summary before any later query batch
//! is planned.  Queries therefore never observe a summary that disagrees
//! with its source's local index, which is exactly the property
//! `candidate_sources` pruning needs to stay lossless.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dits::{OverlapResult, SourceSummary};
use spatial::{CellId, CellSet, DatasetId, Mbr, Point, SourceId, SpatialDataset};

/// One maintenance operation shipped to a data source as part of a
/// [`Message::ApplyUpdates`] batch.
///
/// Inserts and updates carry the *raw* dataset (points in longitude /
/// latitude): sources index at their own resolution, so gridding happens on
/// the receiving side, exactly like the initial upload.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Add a new dataset to the source.
    Insert(SpatialDataset),
    /// Replace the content of an existing dataset.
    Update(SpatialDataset),
    /// Remove a dataset.
    Delete(DatasetId),
}

/// A coverage candidate returned by a source: a dataset id plus its cells,
/// so the data center can run the final greedy aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCandidate {
    /// The source that owns the dataset.
    pub source: SourceId,
    /// The dataset id within its source.
    pub dataset: DatasetId,
    /// The dataset's cell-based representation.
    pub cells: CellSet,
}

/// Messages of the multi-source protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Data center → source: run a local overlap search.
    OverlapQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
    },
    /// Source → data center: local overlap results.
    OverlapReply {
        /// The replying source.
        source: SourceId,
        /// Local top-k results.
        results: Vec<OverlapResult>,
    },
    /// Data center → source: run a local coverage search.
    CoverageQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
        /// Connectivity threshold δ in cell units.
        delta: f64,
    },
    /// Source → data center: local coverage candidates (with their cells so
    /// the center can aggregate greedily across sources).
    CoverageReply {
        /// The replying source.
        source: SourceId,
        /// Candidate datasets and their cells.
        candidates: Vec<CoverageCandidate>,
    },
    /// Data center → source: apply a batch of index-maintenance operations.
    ApplyUpdates {
        /// The operations, applied in order.
        ops: Vec<UpdateOp>,
    },
    /// Source → data center: maintenance acknowledgement carrying the
    /// source's refreshed root summary, so DITS-G can be updated without a
    /// second round trip.
    ///
    /// The summary's geometry travels as its MBR only; pivot and radius are
    /// recomputed on decode (they are fully determined by the MBR).
    SummaryRefresh {
        /// The refreshed root summary of the replying source.
        summary: SourceSummary,
        /// Number of datasets the source holds after the batch.
        dataset_count: u64,
        /// Operations that mutated the index.
        applied: u64,
        /// Operations rejected individually (duplicate insert, missing
        /// update/delete target).
        rejected: u64,
    },
}

impl Message {
    /// Serialises the message into its wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Message::OverlapQuery { query, k } => {
                buf.put_u8(0);
                put_varint(&mut buf, *k as u64);
                put_cells(&mut buf, query);
            }
            Message::OverlapReply { source, results } => {
                buf.put_u8(1);
                buf.put_u16(*source);
                put_varint(&mut buf, results.len() as u64);
                for r in results {
                    put_varint(&mut buf, r.dataset as u64);
                    put_varint(&mut buf, r.overlap as u64);
                }
            }
            Message::CoverageQuery { query, k, delta } => {
                buf.put_u8(2);
                put_varint(&mut buf, *k as u64);
                buf.put_f64(*delta);
                put_cells(&mut buf, query);
            }
            Message::CoverageReply { source, candidates } => {
                buf.put_u8(3);
                buf.put_u16(*source);
                put_varint(&mut buf, candidates.len() as u64);
                for c in candidates {
                    buf.put_u16(c.source);
                    put_varint(&mut buf, c.dataset as u64);
                    put_cells(&mut buf, &c.cells);
                }
            }
            Message::ApplyUpdates { ops } => {
                buf.put_u8(4);
                put_varint(&mut buf, ops.len() as u64);
                for op in ops {
                    match op {
                        UpdateOp::Insert(dataset) => {
                            buf.put_u8(0);
                            put_dataset(&mut buf, dataset);
                        }
                        UpdateOp::Update(dataset) => {
                            buf.put_u8(1);
                            put_dataset(&mut buf, dataset);
                        }
                        UpdateOp::Delete(id) => {
                            buf.put_u8(2);
                            put_varint(&mut buf, *id as u64);
                        }
                    }
                }
            }
            Message::SummaryRefresh {
                summary,
                dataset_count,
                applied,
                rejected,
            } => {
                buf.put_u8(5);
                buf.put_u16(summary.source);
                buf.put_u32(summary.resolution);
                buf.put_f64(summary.geometry.rect.min.x);
                buf.put_f64(summary.geometry.rect.min.y);
                buf.put_f64(summary.geometry.rect.max.x);
                buf.put_f64(summary.geometry.rect.max.y);
                put_varint(&mut buf, *dataset_count);
                put_varint(&mut buf, *applied);
                put_varint(&mut buf, *rejected);
            }
        }
        buf.freeze()
    }

    /// Deserialises a message from its wire form.
    ///
    /// Returns `None` for malformed input.
    pub fn decode(mut data: Bytes) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let tag = data.get_u8();
        match tag {
            0 => {
                let k = get_varint(&mut data)? as usize;
                let query = get_cells(&mut data)?;
                Some(Message::OverlapQuery { query, k })
            }
            1 => {
                if data.remaining() < 2 {
                    return None;
                }
                let source = data.get_u16();
                let n = get_varint(&mut data)? as usize;
                let mut results = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let dataset = get_varint(&mut data)? as DatasetId;
                    let overlap = get_varint(&mut data)? as usize;
                    results.push(OverlapResult { dataset, overlap });
                }
                Some(Message::OverlapReply { source, results })
            }
            2 => {
                let k = get_varint(&mut data)? as usize;
                if data.remaining() < 8 {
                    return None;
                }
                let delta = data.get_f64();
                let query = get_cells(&mut data)?;
                Some(Message::CoverageQuery { query, k, delta })
            }
            3 => {
                if data.remaining() < 2 {
                    return None;
                }
                let source = data.get_u16();
                let n = get_varint(&mut data)? as usize;
                let mut candidates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if data.remaining() < 2 {
                        return None;
                    }
                    let src = data.get_u16();
                    let dataset = get_varint(&mut data)? as DatasetId;
                    let cells = get_cells(&mut data)?;
                    candidates.push(CoverageCandidate {
                        source: src,
                        dataset,
                        cells,
                    });
                }
                Some(Message::CoverageReply { source, candidates })
            }
            4 => {
                let n = get_varint(&mut data)? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if !data.has_remaining() {
                        return None;
                    }
                    let op = match data.get_u8() {
                        0 => UpdateOp::Insert(get_dataset(&mut data)?),
                        1 => UpdateOp::Update(get_dataset(&mut data)?),
                        2 => UpdateOp::Delete(get_varint(&mut data)? as DatasetId),
                        _ => return None,
                    };
                    ops.push(op);
                }
                Some(Message::ApplyUpdates { ops })
            }
            5 => {
                if data.remaining() < 2 + 4 + 4 * 8 {
                    return None;
                }
                let source = data.get_u16();
                let resolution = data.get_u32();
                let min = Point::new(data.get_f64(), data.get_f64());
                let max = Point::new(data.get_f64(), data.get_f64());
                let dataset_count = get_varint(&mut data)?;
                let applied = get_varint(&mut data)?;
                let rejected = get_varint(&mut data)?;
                Some(Message::SummaryRefresh {
                    summary: SourceSummary {
                        source,
                        geometry: dits::NodeGeometry::from_mbr(Mbr::new(min, max)),
                        resolution,
                    },
                    dataset_count,
                    applied,
                    rejected,
                })
            }
            _ => None,
        }
    }

    /// Size of the message on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// Writes a raw spatial dataset: id, name and longitude/latitude points.
/// Maintenance ships raw points (not cells) because every source grids at
/// its own resolution.
fn put_dataset(buf: &mut BytesMut, dataset: &SpatialDataset) {
    put_varint(buf, dataset.id as u64);
    put_varint(buf, dataset.name.len() as u64);
    buf.put_slice(dataset.name.as_bytes());
    put_varint(buf, dataset.points.len() as u64);
    for p in &dataset.points {
        buf.put_f64(p.x);
        buf.put_f64(p.y);
    }
}

fn get_dataset(data: &mut Bytes) -> Option<SpatialDataset> {
    let id = get_varint(data)? as DatasetId;
    let name_len = get_varint(data)? as usize;
    if data.remaining() < name_len {
        return None;
    }
    let name = String::from_utf8(data.chunk()[..name_len].to_vec()).ok()?;
    data.advance(name_len);
    let n = get_varint(data)? as usize;
    if data.remaining() < n.checked_mul(16)? {
        return None;
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(Point::new(data.get_f64(), data.get_f64()));
    }
    Some(SpatialDataset::named(id, name, points))
}

/// Writes a cell set as a count followed by delta-encoded varints (the cells
/// are already sorted, so deltas are small).
fn put_cells(buf: &mut BytesMut, cells: &CellSet) {
    put_varint(buf, cells.len() as u64);
    let mut previous: CellId = 0;
    for cell in cells.iter() {
        put_varint(buf, cell - previous);
        previous = cell;
    }
}

fn get_cells(data: &mut Bytes) -> Option<CellSet> {
    let n = get_varint(data)? as usize;
    let mut cells = Vec::with_capacity(n.min(1 << 20));
    let mut previous: CellId = 0;
    for _ in 0..n {
        let delta = get_varint(data)?;
        previous = previous.checked_add(delta)?;
        cells.push(previous);
    }
    Some(CellSet::from_cells(cells))
}

/// LEB128 unsigned varint.
fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = data.get_u8();
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cs(ids: &[u64]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn overlap_query_roundtrip() {
        let m = Message::OverlapQuery {
            query: cs(&[1, 5, 100, 4096]),
            k: 10,
        };
        let encoded = m.encode();
        assert_eq!(Message::decode(encoded.clone()), Some(m.clone()));
        assert_eq!(m.wire_size(), encoded.len());
    }

    #[test]
    fn overlap_reply_roundtrip() {
        let m = Message::OverlapReply {
            source: 3,
            results: vec![
                OverlapResult {
                    dataset: 7,
                    overlap: 42,
                },
                OverlapResult {
                    dataset: 1000,
                    overlap: 1,
                },
            ],
        };
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn coverage_messages_roundtrip() {
        let q = Message::CoverageQuery {
            query: cs(&[0, 2, 9]),
            k: 5,
            delta: 10.0,
        };
        assert_eq!(Message::decode(q.encode()), Some(q));
        let r = Message::CoverageReply {
            source: 1,
            candidates: vec![CoverageCandidate {
                source: 1,
                dataset: 4,
                cells: cs(&[9, 10, 11]),
            }],
        };
        assert_eq!(Message::decode(r.encode()), Some(r));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert_eq!(Message::decode(Bytes::new()), None);
        assert_eq!(Message::decode(Bytes::from_static(&[9, 1, 2])), None);
        // Truncated query.
        let m = Message::OverlapQuery {
            query: cs(&[1, 2, 3]),
            k: 1,
        };
        let enc = m.encode();
        let truncated = enc.slice(0..enc.len() - 1);
        assert_eq!(Message::decode(truncated), None);
    }

    #[test]
    fn maintenance_messages_roundtrip() {
        use spatial::Point;
        let batch = Message::ApplyUpdates {
            ops: vec![
                UpdateOp::Insert(SpatialDataset::named(
                    7,
                    "bus-route-7",
                    vec![Point::new(-77.01, 38.9), Point::new(-77.02, 38.91)],
                )),
                UpdateOp::Update(SpatialDataset::new(3, vec![Point::new(116.3, 39.9)])),
                UpdateOp::Delete(42),
            ],
        };
        let encoded = batch.encode();
        assert_eq!(Message::decode(encoded.clone()), Some(batch.clone()));
        assert_eq!(batch.wire_size(), encoded.len());

        let grid = spatial::Grid::global(10).unwrap();
        let root = dits::NodeGeometry::from_mbr(spatial::Mbr::new(
            Point::new(100.0, 200.0),
            Point::new(300.0, 400.0),
        ));
        let reply = Message::SummaryRefresh {
            summary: SourceSummary::from_local_root(3, &grid, root),
            dataset_count: 1234,
            applied: 3,
            rejected: 1,
        };
        assert_eq!(Message::decode(reply.encode()), Some(reply));
    }

    #[test]
    fn empty_maintenance_batch_roundtrips() {
        let m = Message::ApplyUpdates { ops: vec![] };
        assert_eq!(Message::decode(m.encode()), Some(m));
    }

    #[test]
    fn malformed_maintenance_messages_are_rejected() {
        let batch = Message::ApplyUpdates {
            ops: vec![UpdateOp::Insert(SpatialDataset::new(
                1,
                vec![spatial::Point::new(1.0, 2.0)],
            ))],
        };
        let enc = batch.encode();
        for cut in 1..enc.len() {
            assert_eq!(
                Message::decode(enc.slice(0..cut)),
                None,
                "truncation at {cut} must fail"
            );
        }
        // Unknown op tag.
        let mut raw = enc.to_vec();
        raw[2] = 9;
        assert_eq!(Message::decode(Bytes::from(raw)), None);
    }

    #[test]
    fn clipping_the_query_shrinks_the_wire_size() {
        let full: CellSet = (0..1000u64).collect();
        let clipped: CellSet = (0..100u64).collect();
        let full_size = Message::OverlapQuery { query: full, k: 10 }.wire_size();
        let clipped_size = Message::OverlapQuery {
            query: clipped,
            k: 10,
        }
        .wire_size();
        assert!(clipped_size < full_size / 5);
    }

    #[test]
    fn delta_encoding_beats_fixed_width() {
        // 1000 consecutive cells fit in ~1 byte each instead of 8.
        let cells: CellSet = (10_000..11_000u64).collect();
        let size = Message::OverlapQuery {
            query: cells,
            k: 10,
        }
        .wire_size();
        assert!(size < 1_000 * 8 / 4, "wire size {size} not compact");
    }

    proptest! {
        #[test]
        fn prop_messages_roundtrip(
            cells in proptest::collection::vec(0u64..1_000_000, 0..200),
            k in 0usize..100,
            source in 0u16..100,
            delta in 0.0f64..50.0,
        ) {
            let q = Message::OverlapQuery { query: CellSet::from_cells(cells.clone()), k };
            prop_assert_eq!(Message::decode(q.encode()), Some(q));
            let c = Message::CoverageQuery {
                query: CellSet::from_cells(cells.clone()), k, delta };
            prop_assert_eq!(Message::decode(c.encode()), Some(c));
            let r = Message::CoverageReply {
                source,
                candidates: vec![CoverageCandidate {
                    source,
                    dataset: 9,
                    cells: CellSet::from_cells(cells),
                }],
            };
            prop_assert_eq!(Message::decode(r.encode()), Some(r));
        }
    }
}
