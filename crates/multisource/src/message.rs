//! Wire messages exchanged between the data center and the data sources.
//!
//! The communication cost the paper reports (Figs. 13, 19) is the number of
//! bytes transferred, so messages are actually serialised into a compact
//! binary layout (via [`bytes`]) rather than estimated: cell IDs are
//! delta-encoded as LEB128 varints, which rewards the query-clipping
//! strategy exactly the way a real deployment would.
//!
//! # Query protocol
//!
//! Three request/reply exchanges, one per [`SearchKind`](crate::SearchKind):
//! [`Message::OverlapQuery`] / [`Message::OverlapReply`] (OJSP),
//! [`Message::CoverageQuery`] / [`Message::CoverageReply`] (CJSP) and
//! [`Message::KnnQuery`] / [`Message::KnnReply`] (k-nearest datasets).
//!
//! # Maintenance protocol
//!
//! One maintenance exchange implements the paper's Appendix IX-C algorithms
//! across the deployment:
//!
//! * [`Message::ApplyUpdates`] (center → source) carries a batch of
//!   [`UpdateOp`]s — raw datasets for inserts/updates (each source grids
//!   them at its own resolution) and dataset ids for deletes.  An *empty*
//!   batch doubles as a summary poll: it mutates nothing and is answered
//!   with the source's current summary, which is how a data center
//!   bootstraps DITS-G from remote sources
//!   ([`DataCenter::from_transport`](crate::DataCenter::from_transport)).
//! * [`Message::SummaryRefresh`] (source → center) acknowledges the batch
//!   and carries the source's *new root summary* plus applied/rejected
//!   counts, so the data center can refresh DITS-G without another round
//!   trip.
//!
//! A source that cannot serve a request answers [`Message::Error`] with a
//! machine-readable code ([`ERR_UNSUPPORTED`], [`ERR_REJECTED_BATCH`]) and a
//! human-readable detail, so a transactional rejection crosses transports
//! losslessly instead of dying as a closed socket.
//!
//! **Consistency guarantee.** A source validates the whole batch before
//! mutating anything (a structurally invalid op — e.g. an empty dataset —
//! rejects the batch with no partial application), and the data center
//! refreshes DITS-G with the returned summary before any later query batch
//! is planned.  Queries therefore never observe a summary that disagrees
//! with its source's local index, which is exactly the property
//! `candidate_sources` pruning needs to stay lossless.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dits::{Neighbor, OverlapResult, SourceSummary};
use spatial::{CellId, CellSet, DatasetId, Mbr, Point, SourceId, SpatialDataset};

use crate::error::WireError;

/// Error code: the source does not serve this request kind.
pub const ERR_UNSUPPORTED: u16 = 0;
/// Error code: a maintenance batch was structurally invalid and rejected as
/// a whole (nothing was applied).
pub const ERR_REJECTED_BATCH: u16 = 1;

/// Upper bound on an error detail on the wire.  Enforced symmetrically: the
/// encoder truncates (at a char boundary) and the decoder rejects anything
/// longer, so an oversized detail can never round-trip in-process but fail
/// over TCP.
const MAX_ERROR_DETAIL_BYTES: usize = 1 << 20;

/// One maintenance operation shipped to a data source as part of a
/// [`Message::ApplyUpdates`] batch.
///
/// Inserts and updates carry the *raw* dataset (points in longitude /
/// latitude): sources index at their own resolution, so gridding happens on
/// the receiving side, exactly like the initial upload.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Add a new dataset to the source.
    Insert(SpatialDataset),
    /// Replace the content of an existing dataset.
    Update(SpatialDataset),
    /// Remove a dataset.
    Delete(DatasetId),
}

/// A coverage candidate returned by a source: a dataset id plus its cells,
/// so the data center can run the final greedy aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCandidate {
    /// The source that owns the dataset.
    pub source: SourceId,
    /// The dataset id within its source.
    pub dataset: DatasetId,
    /// The dataset's cell-based representation.
    pub cells: CellSet,
}

// Wire tags, one per `Message` variant.  repo-lint's `wire-tags` rule
// cross-checks every constant against `encode`, `decode`, the truncation-fuzz
// tag list in `tests/transport.rs`, and the README protocol table — adding a
// variant without threading its tag through all four fails the analysis job.
/// Wire tag of [`Message::OverlapQuery`].
pub const TAG_OVERLAP_QUERY: u8 = 0;
/// Wire tag of [`Message::OverlapReply`].
pub const TAG_OVERLAP_REPLY: u8 = 1;
/// Wire tag of [`Message::CoverageQuery`].
pub const TAG_COVERAGE_QUERY: u8 = 2;
/// Wire tag of [`Message::CoverageReply`].
pub const TAG_COVERAGE_REPLY: u8 = 3;
/// Wire tag of [`Message::ApplyUpdates`].
pub const TAG_APPLY_UPDATES: u8 = 4;
/// Wire tag of [`Message::SummaryRefresh`].
pub const TAG_SUMMARY_REFRESH: u8 = 5;
/// Wire tag of [`Message::KnnQuery`].
pub const TAG_KNN_QUERY: u8 = 6;
/// Wire tag of [`Message::KnnReply`].
pub const TAG_KNN_REPLY: u8 = 7;
/// Wire tag of [`Message::Error`].
pub const TAG_ERROR: u8 = 8;
/// Wire tag of [`Message::OverlapBatchQuery`].
pub const TAG_OVERLAP_BATCH_QUERY: u8 = 9;
/// Wire tag of [`Message::OverlapBatchReply`].
pub const TAG_OVERLAP_BATCH_REPLY: u8 = 10;
/// Wire tag of [`Message::CoverageBatchQuery`].
pub const TAG_COVERAGE_BATCH_QUERY: u8 = 11;
/// Wire tag of [`Message::CoverageBatchReply`].
pub const TAG_COVERAGE_BATCH_REPLY: u8 = 12;
/// Wire tag of [`Message::MetricsQuery`].
pub const TAG_METRICS_QUERY: u8 = 13;
/// Wire tag of [`Message::MetricsSnapshot`].
pub const TAG_METRICS_SNAPSHOT: u8 = 14;

// Inner wire tags: one byte framing each element of a variant's payload.
// Named for the same reason as the frame-level set — repo-lint cross-checks
// that every inner enum variant's tag is wired through both encode and
// decode, which a bare literal defeats.
/// Inner tag of [`UpdateOp::Insert`] inside `ApplyUpdates`.
pub const OP_TAG_INSERT: u8 = 0;
/// Inner tag of [`UpdateOp::Update`] inside `ApplyUpdates`.
pub const OP_TAG_UPDATE: u8 = 1;
/// Inner tag of [`UpdateOp::Delete`] inside `ApplyUpdates`.
pub const OP_TAG_DELETE: u8 = 2;
/// Inner tag of [`obs::MetricValue::Counter`] inside `MetricsSnapshot`.
pub const METRIC_TAG_COUNTER: u8 = 0;
/// Inner tag of [`obs::MetricValue::Gauge`] inside `MetricsSnapshot`.
pub const METRIC_TAG_GAUGE: u8 = 1;
/// Inner tag of [`obs::MetricValue::Histogram`] inside `MetricsSnapshot`.
pub const METRIC_TAG_HISTOGRAM: u8 = 2;

/// Messages of the multi-source protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Data center → source: run a local overlap search.
    OverlapQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
    },
    /// Source → data center: local overlap results.
    OverlapReply {
        /// The replying source.
        source: SourceId,
        /// Local top-k results.
        results: Vec<OverlapResult>,
    },
    /// Data center → source: run a local coverage search.
    CoverageQuery {
        /// The (possibly clipped) query cell set.
        query: CellSet,
        /// Number of results requested.
        k: usize,
        /// Connectivity threshold δ in cell units.
        delta: f64,
    },
    /// Source → data center: local coverage candidates (with their cells so
    /// the center can aggregate greedily across sources).
    CoverageReply {
        /// The replying source.
        source: SourceId,
        /// Candidate datasets and their cells.
        candidates: Vec<CoverageCandidate>,
    },
    /// Data center → source: apply a batch of index-maintenance operations.
    /// An empty batch is a read-only summary poll.
    ApplyUpdates {
        /// The operations, applied in order.
        ops: Vec<UpdateOp>,
    },
    /// Source → data center: maintenance acknowledgement carrying the
    /// source's refreshed root summary, so DITS-G can be updated without a
    /// second round trip.
    ///
    /// The summary's geometry travels as its MBR only; pivot and radius are
    /// recomputed on decode (they are fully determined by the MBR).
    SummaryRefresh {
        /// The refreshed root summary of the replying source.
        summary: SourceSummary,
        /// Number of datasets the source holds after the batch.
        dataset_count: u64,
        /// Operations that mutated the index.
        applied: u64,
        /// Operations rejected individually (duplicate insert, missing
        /// update/delete target).
        rejected: u64,
    },
    /// Data center → source: run a local k-nearest-datasets search.  The
    /// query travels *unclipped*: dropping far-away query cells could only
    /// inflate the cell-based distance, which would corrupt the ranking.
    KnnQuery {
        /// The full query cell set at the source's resolution.
        query: CellSet,
        /// Number of neighbours requested.
        k: usize,
    },
    /// Source → data center: the local k nearest datasets, sorted by
    /// ascending distance.
    KnnReply {
        /// The replying source.
        source: SourceId,
        /// Local nearest datasets with exact distances.
        neighbors: Vec<Neighbor>,
    },
    /// Source → data center: the request could not be served.  Carries a
    /// machine-readable code plus a human-readable detail, so transactional
    /// rejections survive any transport.
    Error {
        /// One of [`ERR_UNSUPPORTED`], [`ERR_REJECTED_BATCH`].
        code: u16,
        /// Human-readable reason.
        detail: String,
    },
    /// Data center → source: run a local overlap search for a whole batch of
    /// queries in one round trip.  The source answers all of them with one
    /// shared frontier walk of its index
    /// ([`overlap_search_batch`](dits::overlap_search_batch)) — the wire
    /// counterpart of the engine's per-(source, batch) shard mode.
    OverlapBatchQuery {
        /// The (possibly clipped) query cell sets, one per batched query.
        queries: Vec<CellSet>,
        /// Number of results requested per query.
        k: usize,
    },
    /// Source → data center: local overlap results for a batched query, one
    /// result list per query, in query order.
    OverlapBatchReply {
        /// The replying source.
        source: SourceId,
        /// Per-query local top-k results, in query order.
        results: Vec<Vec<OverlapResult>>,
    },
    /// Data center → source: run a local coverage search for a whole batch
    /// of queries in one round trip (shared-frontier counterpart of
    /// [`Message::CoverageQuery`]).
    CoverageBatchQuery {
        /// The (possibly clipped) query cell sets, one per batched query.
        queries: Vec<CellSet>,
        /// Number of results requested per query.
        k: usize,
        /// Connectivity threshold δ in cell units.
        delta: f64,
    },
    /// Source → data center: local coverage candidates for a batched query,
    /// one candidate list per query, in query order.
    CoverageBatchReply {
        /// The replying source.
        source: SourceId,
        /// Per-query candidate datasets with their cells, in query order.
        candidates: Vec<Vec<CoverageCandidate>>,
    },
    /// Data center → source: scrape the source's metrics registry (remote
    /// introspection; served read-only, like a summary poll).
    MetricsQuery,
    /// Source → data center: a point-in-time snapshot of the source's
    /// metrics registry, answering a [`Message::MetricsQuery`].
    MetricsSnapshot {
        /// The replying source.
        source: SourceId,
        /// The registry snapshot (counters, gauges, log₂ histograms).
        snapshot: obs::MetricsSnapshot,
    },
}

impl Message {
    /// Serialises the message into its wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Message::OverlapQuery { query, k } => {
                buf.put_u8(TAG_OVERLAP_QUERY);
                put_varint(&mut buf, *k as u64);
                put_cells(&mut buf, query);
            }
            Message::OverlapReply { source, results } => {
                buf.put_u8(TAG_OVERLAP_REPLY);
                buf.put_u16(*source);
                put_varint(&mut buf, results.len() as u64);
                for r in results {
                    put_varint(&mut buf, r.dataset as u64);
                    put_varint(&mut buf, r.overlap as u64);
                }
            }
            Message::CoverageQuery { query, k, delta } => {
                buf.put_u8(TAG_COVERAGE_QUERY);
                put_varint(&mut buf, *k as u64);
                buf.put_f64(*delta);
                put_cells(&mut buf, query);
            }
            Message::CoverageReply { source, candidates } => {
                buf.put_u8(TAG_COVERAGE_REPLY);
                buf.put_u16(*source);
                put_varint(&mut buf, candidates.len() as u64);
                for c in candidates {
                    buf.put_u16(c.source);
                    put_varint(&mut buf, c.dataset as u64);
                    put_cells(&mut buf, &c.cells);
                }
            }
            Message::ApplyUpdates { ops } => {
                buf.put_u8(TAG_APPLY_UPDATES);
                put_varint(&mut buf, ops.len() as u64);
                for op in ops {
                    match op {
                        UpdateOp::Insert(dataset) => {
                            buf.put_u8(OP_TAG_INSERT);
                            put_dataset(&mut buf, dataset);
                        }
                        UpdateOp::Update(dataset) => {
                            buf.put_u8(OP_TAG_UPDATE);
                            put_dataset(&mut buf, dataset);
                        }
                        UpdateOp::Delete(id) => {
                            buf.put_u8(OP_TAG_DELETE);
                            put_varint(&mut buf, *id as u64);
                        }
                    }
                }
            }
            Message::SummaryRefresh {
                summary,
                dataset_count,
                applied,
                rejected,
            } => {
                buf.put_u8(TAG_SUMMARY_REFRESH);
                buf.put_u16(summary.source);
                buf.put_u32(summary.resolution);
                buf.put_f64(summary.geometry.rect.min.x);
                buf.put_f64(summary.geometry.rect.min.y);
                buf.put_f64(summary.geometry.rect.max.x);
                buf.put_f64(summary.geometry.rect.max.y);
                put_varint(&mut buf, *dataset_count);
                put_varint(&mut buf, *applied);
                put_varint(&mut buf, *rejected);
            }
            Message::KnnQuery { query, k } => {
                buf.put_u8(TAG_KNN_QUERY);
                put_varint(&mut buf, *k as u64);
                put_cells(&mut buf, query);
            }
            Message::KnnReply { source, neighbors } => {
                buf.put_u8(TAG_KNN_REPLY);
                buf.put_u16(*source);
                put_varint(&mut buf, neighbors.len() as u64);
                for n in neighbors {
                    put_varint(&mut buf, n.dataset as u64);
                    buf.put_f64(n.distance);
                }
            }
            Message::Error { code, detail } => {
                buf.put_u8(TAG_ERROR);
                buf.put_u16(*code);
                let mut len = detail.len().min(MAX_ERROR_DETAIL_BYTES);
                while !detail.is_char_boundary(len) {
                    len -= 1;
                }
                put_varint(&mut buf, len as u64);
                buf.put_slice(detail.as_bytes().get(..len).unwrap_or_default());
            }
            Message::OverlapBatchQuery { queries, k } => {
                buf.put_u8(TAG_OVERLAP_BATCH_QUERY);
                put_varint(&mut buf, *k as u64);
                put_varint(&mut buf, queries.len() as u64);
                for query in queries {
                    put_cells(&mut buf, query);
                }
            }
            Message::OverlapBatchReply { source, results } => {
                buf.put_u8(TAG_OVERLAP_BATCH_REPLY);
                buf.put_u16(*source);
                put_varint(&mut buf, results.len() as u64);
                for per_query in results {
                    put_varint(&mut buf, per_query.len() as u64);
                    for r in per_query {
                        put_varint(&mut buf, r.dataset as u64);
                        put_varint(&mut buf, r.overlap as u64);
                    }
                }
            }
            Message::CoverageBatchQuery { queries, k, delta } => {
                buf.put_u8(TAG_COVERAGE_BATCH_QUERY);
                put_varint(&mut buf, *k as u64);
                buf.put_f64(*delta);
                put_varint(&mut buf, queries.len() as u64);
                for query in queries {
                    put_cells(&mut buf, query);
                }
            }
            Message::CoverageBatchReply { source, candidates } => {
                buf.put_u8(TAG_COVERAGE_BATCH_REPLY);
                buf.put_u16(*source);
                put_varint(&mut buf, candidates.len() as u64);
                for per_query in candidates {
                    put_varint(&mut buf, per_query.len() as u64);
                    for c in per_query {
                        buf.put_u16(c.source);
                        put_varint(&mut buf, c.dataset as u64);
                        put_cells(&mut buf, &c.cells);
                    }
                }
            }
            Message::MetricsQuery => {
                buf.put_u8(TAG_METRICS_QUERY);
            }
            Message::MetricsSnapshot { source, snapshot } => {
                buf.put_u8(TAG_METRICS_SNAPSHOT);
                buf.put_u16(*source);
                put_varint(&mut buf, snapshot.samples.len() as u64);
                for sample in &snapshot.samples {
                    put_string(&mut buf, &sample.name);
                    put_varint(&mut buf, sample.labels.len() as u64);
                    for (key, value) in &sample.labels {
                        put_string(&mut buf, key);
                        put_string(&mut buf, value);
                    }
                    match &sample.value {
                        obs::MetricValue::Counter(v) => {
                            buf.put_u8(METRIC_TAG_COUNTER);
                            put_varint(&mut buf, *v);
                        }
                        obs::MetricValue::Gauge(v) => {
                            buf.put_u8(METRIC_TAG_GAUGE);
                            buf.put_f64(*v);
                        }
                        obs::MetricValue::Histogram {
                            count,
                            sum,
                            buckets,
                        } => {
                            buf.put_u8(METRIC_TAG_HISTOGRAM);
                            put_varint(&mut buf, *count);
                            put_varint(&mut buf, *sum);
                            put_varint(&mut buf, buckets.len() as u64);
                            for (idx, n) in buckets {
                                buf.put_u8(*idx);
                                put_varint(&mut buf, *n);
                            }
                        }
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Deserialises a message from its wire form, reporting *why* malformed
    /// input was rejected — the difference between "a peer sent garbage" and
    /// "a frame was cut short", which a federated deployment must be able to
    /// tell apart.
    pub fn decode(mut data: Bytes) -> Result<Self, WireError> {
        if data.is_empty() {
            return Err(WireError::Truncated("message tag"));
        }
        let tag = data.get_u8();
        match tag {
            TAG_OVERLAP_QUERY => {
                let k = get_varint(&mut data, "k")? as usize;
                let query = get_cells(&mut data)?;
                Ok(Message::OverlapQuery { query, k })
            }
            TAG_OVERLAP_REPLY => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "result count")? as usize;
                let mut results = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let dataset = get_varint(&mut data, "result dataset id")? as DatasetId;
                    let overlap = get_varint(&mut data, "result overlap")? as usize;
                    results.push(OverlapResult { dataset, overlap });
                }
                Ok(Message::OverlapReply { source, results })
            }
            TAG_COVERAGE_QUERY => {
                let k = get_varint(&mut data, "k")? as usize;
                if data.remaining() < 8 {
                    return Err(WireError::Truncated("delta"));
                }
                let delta = data.get_f64();
                let query = get_cells(&mut data)?;
                Ok(Message::CoverageQuery { query, k, delta })
            }
            TAG_COVERAGE_REPLY => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "candidate count")? as usize;
                let mut candidates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if data.remaining() < 2 {
                        return Err(WireError::Truncated("candidate source id"));
                    }
                    let src = data.get_u16();
                    let dataset = get_varint(&mut data, "candidate dataset id")? as DatasetId;
                    let cells = get_cells(&mut data)?;
                    candidates.push(CoverageCandidate {
                        source: src,
                        dataset,
                        cells,
                    });
                }
                Ok(Message::CoverageReply { source, candidates })
            }
            TAG_APPLY_UPDATES => {
                let n = get_varint(&mut data, "op count")? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if !data.has_remaining() {
                        return Err(WireError::Truncated("op tag"));
                    }
                    let op = match data.get_u8() {
                        OP_TAG_INSERT => UpdateOp::Insert(get_dataset(&mut data)?),
                        OP_TAG_UPDATE => UpdateOp::Update(get_dataset(&mut data)?),
                        OP_TAG_DELETE => {
                            UpdateOp::Delete(get_varint(&mut data, "delete target")? as DatasetId)
                        }
                        other => return Err(WireError::BadOpTag(other)),
                    };
                    ops.push(op);
                }
                Ok(Message::ApplyUpdates { ops })
            }
            TAG_SUMMARY_REFRESH => {
                if data.remaining() < 2 + 4 + 4 * 8 {
                    return Err(WireError::Truncated("summary"));
                }
                let source = data.get_u16();
                let resolution = data.get_u32();
                let min = Point::new(data.get_f64(), data.get_f64());
                let max = Point::new(data.get_f64(), data.get_f64());
                let dataset_count = get_varint(&mut data, "dataset count")?;
                let applied = get_varint(&mut data, "applied count")?;
                let rejected = get_varint(&mut data, "rejected count")?;
                Ok(Message::SummaryRefresh {
                    summary: SourceSummary {
                        source,
                        geometry: dits::NodeGeometry::from_mbr(Mbr::new(min, max)),
                        resolution,
                    },
                    dataset_count,
                    applied,
                    rejected,
                })
            }
            TAG_KNN_QUERY => {
                let k = get_varint(&mut data, "k")? as usize;
                let query = get_cells(&mut data)?;
                Ok(Message::KnnQuery { query, k })
            }
            TAG_KNN_REPLY => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "neighbor count")? as usize;
                let mut neighbors = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let dataset = get_varint(&mut data, "neighbor dataset id")? as DatasetId;
                    if data.remaining() < 8 {
                        return Err(WireError::Truncated("neighbor distance"));
                    }
                    let distance = data.get_f64();
                    neighbors.push(Neighbor { dataset, distance });
                }
                Ok(Message::KnnReply { source, neighbors })
            }
            TAG_ERROR => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("error code"));
                }
                let code = data.get_u16();
                let len = get_varint(&mut data, "error detail length")? as usize;
                if len > MAX_ERROR_DETAIL_BYTES {
                    return Err(WireError::Oversized("error detail"));
                }
                if data.remaining() < len {
                    return Err(WireError::Truncated("error detail"));
                }
                let raw = data
                    .chunk()
                    .get(..len)
                    .ok_or(WireError::Truncated("error detail"))?;
                let detail = String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)?;
                data.advance(len);
                Ok(Message::Error { code, detail })
            }
            TAG_OVERLAP_BATCH_QUERY => {
                let k = get_varint(&mut data, "k")? as usize;
                let n = get_varint(&mut data, "batch query count")? as usize;
                let mut queries = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    queries.push(get_cells(&mut data)?);
                }
                Ok(Message::OverlapBatchQuery { queries, k })
            }
            TAG_OVERLAP_BATCH_REPLY => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "batch reply count")? as usize;
                let mut results = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let m = get_varint(&mut data, "result count")? as usize;
                    let mut per_query = Vec::with_capacity(m.min(1 << 16));
                    for _ in 0..m {
                        let dataset = get_varint(&mut data, "result dataset id")? as DatasetId;
                        let overlap = get_varint(&mut data, "result overlap")? as usize;
                        per_query.push(OverlapResult { dataset, overlap });
                    }
                    results.push(per_query);
                }
                Ok(Message::OverlapBatchReply { source, results })
            }
            TAG_COVERAGE_BATCH_QUERY => {
                let k = get_varint(&mut data, "k")? as usize;
                if data.remaining() < 8 {
                    return Err(WireError::Truncated("delta"));
                }
                let delta = data.get_f64();
                let n = get_varint(&mut data, "batch query count")? as usize;
                let mut queries = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    queries.push(get_cells(&mut data)?);
                }
                Ok(Message::CoverageBatchQuery { queries, k, delta })
            }
            TAG_COVERAGE_BATCH_REPLY => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "batch reply count")? as usize;
                let mut candidates = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let m = get_varint(&mut data, "candidate count")? as usize;
                    let mut per_query = Vec::with_capacity(m.min(1 << 16));
                    for _ in 0..m {
                        if data.remaining() < 2 {
                            return Err(WireError::Truncated("candidate source id"));
                        }
                        let src = data.get_u16();
                        let dataset = get_varint(&mut data, "candidate dataset id")? as DatasetId;
                        let cells = get_cells(&mut data)?;
                        per_query.push(CoverageCandidate {
                            source: src,
                            dataset,
                            cells,
                        });
                    }
                    candidates.push(per_query);
                }
                Ok(Message::CoverageBatchReply { source, candidates })
            }
            TAG_METRICS_QUERY => Ok(Message::MetricsQuery),
            TAG_METRICS_SNAPSHOT => {
                if data.remaining() < 2 {
                    return Err(WireError::Truncated("source id"));
                }
                let source = data.get_u16();
                let n = get_varint(&mut data, "sample count")? as usize;
                let mut samples = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let name = get_string(&mut data, "metric name")?;
                    let label_count = get_varint(&mut data, "label count")? as usize;
                    let mut labels = Vec::with_capacity(label_count.min(1 << 8));
                    for _ in 0..label_count {
                        let key = get_string(&mut data, "label key")?;
                        let value = get_string(&mut data, "label value")?;
                        labels.push((key, value));
                    }
                    if !data.has_remaining() {
                        return Err(WireError::Truncated("metric value tag"));
                    }
                    let value = match data.get_u8() {
                        METRIC_TAG_COUNTER => {
                            obs::MetricValue::Counter(get_varint(&mut data, "counter value")?)
                        }
                        METRIC_TAG_GAUGE => {
                            if data.remaining() < 8 {
                                return Err(WireError::Truncated("gauge value"));
                            }
                            obs::MetricValue::Gauge(data.get_f64())
                        }
                        METRIC_TAG_HISTOGRAM => {
                            let count = get_varint(&mut data, "histogram count")?;
                            let sum = get_varint(&mut data, "histogram sum")?;
                            let bucket_count =
                                get_varint(&mut data, "histogram bucket count")? as usize;
                            let mut buckets = Vec::with_capacity(bucket_count.min(1 << 8));
                            for _ in 0..bucket_count {
                                if !data.has_remaining() {
                                    return Err(WireError::Truncated("histogram bucket index"));
                                }
                                let idx = data.get_u8();
                                let bucket = get_varint(&mut data, "histogram bucket value")?;
                                buckets.push((idx, bucket));
                            }
                            obs::MetricValue::Histogram {
                                count,
                                sum,
                                buckets,
                            }
                        }
                        other => return Err(WireError::BadOpTag(other)),
                    };
                    samples.push(obs::MetricSample {
                        name,
                        labels,
                        value,
                    });
                }
                Ok(Message::MetricsSnapshot {
                    source,
                    snapshot: obs::MetricsSnapshot { samples },
                })
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Deserialises a message, collapsing the failure reason.
    #[deprecated(
        since = "0.1.0",
        note = "use `decode`, which reports why decoding failed"
    )]
    pub fn decode_opt(data: Bytes) -> Option<Self> {
        Self::decode(data).ok()
    }

    /// Size of the message on the wire, in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

/// Writes a raw spatial dataset: id, name and longitude/latitude points.
/// Maintenance ships raw points (not cells) because every source grids at
/// its own resolution.
fn put_dataset(buf: &mut BytesMut, dataset: &SpatialDataset) {
    put_varint(buf, dataset.id as u64);
    put_varint(buf, dataset.name.len() as u64);
    buf.put_slice(dataset.name.as_bytes());
    put_varint(buf, dataset.points.len() as u64);
    for p in &dataset.points {
        buf.put_f64(p.x);
        buf.put_f64(p.y);
    }
}

fn get_dataset(data: &mut Bytes) -> Result<SpatialDataset, WireError> {
    let id = get_varint(data, "dataset id")? as DatasetId;
    let name_len = get_varint(data, "dataset name length")? as usize;
    if data.remaining() < name_len {
        return Err(WireError::Truncated("dataset name"));
    }
    let raw = data
        .chunk()
        .get(..name_len)
        .ok_or(WireError::Truncated("dataset name"))?;
    let name = String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)?;
    data.advance(name_len);
    let n = get_varint(data, "point count")? as usize;
    let needed = n
        .checked_mul(16)
        .ok_or(WireError::Oversized("point count"))?;
    if data.remaining() < needed {
        return Err(WireError::Truncated("dataset points"));
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(Point::new(data.get_f64(), data.get_f64()));
    }
    Ok(SpatialDataset::named(id, name, points))
}

/// Writes a cell set as a count followed by delta-encoded varints (the cells
/// are already sorted, so deltas are small).
fn put_cells(buf: &mut BytesMut, cells: &CellSet) {
    put_varint(buf, cells.len() as u64);
    let mut previous: CellId = 0;
    for cell in cells.iter() {
        put_varint(buf, cell - previous);
        previous = cell;
    }
}

fn get_cells(data: &mut Bytes) -> Result<CellSet, WireError> {
    let n = get_varint(data, "cell count")? as usize;
    let mut cells = Vec::with_capacity(n.min(1 << 20));
    let mut previous: CellId = 0;
    for _ in 0..n {
        let delta = get_varint(data, "cell delta")?;
        previous = previous.checked_add(delta).ok_or(WireError::CellOverflow)?;
        cells.push(previous);
    }
    Ok(CellSet::from_cells(cells))
}

/// Metric names and label strings come from in-process registries and are
/// short; a decoder bound keeps a hostile snapshot from forcing a huge
/// allocation.
const MAX_METRIC_STRING_BYTES: usize = 1 << 12;

/// Writes a short metrics string (name, label key, label value), truncated at
/// a char boundary if it somehow exceeds the wire bound so that encode and
/// decode enforce the same limit.
fn put_string(buf: &mut BytesMut, s: &str) {
    let mut len = s.len().min(MAX_METRIC_STRING_BYTES);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    put_varint(buf, len as u64);
    buf.put_slice(s.as_bytes().get(..len).unwrap_or_default());
}

fn get_string(data: &mut Bytes, what: &'static str) -> Result<String, WireError> {
    let len = get_varint(data, what)? as usize;
    if len > MAX_METRIC_STRING_BYTES {
        return Err(WireError::Oversized(what));
    }
    if data.remaining() < len {
        return Err(WireError::Truncated(what));
    }
    let raw = data.chunk().get(..len).ok_or(WireError::Truncated(what))?;
    let s = String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)?;
    data.advance(len);
    Ok(s)
}

/// LEB128 unsigned varint.  `pub(crate)` so the transport frame codec reuses
/// the exact same integer representation as the messages it carries.
pub(crate) fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_varint(data: &mut Bytes, what: &'static str) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() {
            return Err(WireError::Truncated(what));
        }
        if shift >= 64 {
            return Err(WireError::BadVarint(what));
        }
        let byte = data.get_u8();
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cs(ids: &[u64]) -> CellSet {
        CellSet::from_cells(ids.iter().copied())
    }

    #[test]
    fn overlap_query_roundtrip() {
        let m = Message::OverlapQuery {
            query: cs(&[1, 5, 100, 4096]),
            k: 10,
        };
        let encoded = m.encode();
        assert_eq!(Message::decode(encoded.clone()), Ok(m.clone()));
        assert_eq!(m.wire_size(), encoded.len());
    }

    #[test]
    fn overlap_reply_roundtrip() {
        let m = Message::OverlapReply {
            source: 3,
            results: vec![
                OverlapResult {
                    dataset: 7,
                    overlap: 42,
                },
                OverlapResult {
                    dataset: 1000,
                    overlap: 1,
                },
            ],
        };
        assert_eq!(Message::decode(m.encode()), Ok(m));
    }

    #[test]
    fn coverage_messages_roundtrip() {
        let q = Message::CoverageQuery {
            query: cs(&[0, 2, 9]),
            k: 5,
            delta: 10.0,
        };
        assert_eq!(Message::decode(q.encode()), Ok(q));
        let r = Message::CoverageReply {
            source: 1,
            candidates: vec![CoverageCandidate {
                source: 1,
                dataset: 4,
                cells: cs(&[9, 10, 11]),
            }],
        };
        assert_eq!(Message::decode(r.encode()), Ok(r));
    }

    #[test]
    fn knn_messages_roundtrip() {
        let q = Message::KnnQuery {
            query: cs(&[3, 8, 1024]),
            k: 7,
        };
        assert_eq!(Message::decode(q.encode()), Ok(q));
        let r = Message::KnnReply {
            source: 4,
            neighbors: vec![
                Neighbor {
                    dataset: 12,
                    distance: 0.0,
                },
                Neighbor {
                    dataset: 99,
                    distance: 3.5,
                },
            ],
        };
        assert_eq!(Message::decode(r.encode()), Ok(r));
    }

    #[test]
    fn error_message_roundtrips() {
        let m = Message::Error {
            code: ERR_REJECTED_BATCH,
            detail: "dataset 42 is empty".to_string(),
        };
        assert_eq!(Message::decode(m.encode()), Ok(m));
        let empty = Message::Error {
            code: ERR_UNSUPPORTED,
            detail: String::new(),
        };
        assert_eq!(Message::decode(empty.encode()), Ok(empty));
    }

    #[test]
    fn malformed_input_is_rejected_with_a_reason() {
        assert_eq!(
            Message::decode(Bytes::new()),
            Err(WireError::Truncated("message tag"))
        );
        assert_eq!(
            Message::decode(Bytes::from_static(&[99, 1, 2])),
            Err(WireError::BadTag(99))
        );
        // Truncated query: the last cell delta is cut off.
        let m = Message::OverlapQuery {
            query: cs(&[1, 2, 3]),
            k: 1,
        };
        let enc = m.encode();
        let truncated = enc.slice(0..enc.len() - 1);
        assert_eq!(
            Message::decode(truncated),
            Err(WireError::Truncated("cell delta"))
        );
        // An overlong varint is a BadVarint, not a truncation.
        let mut raw = vec![0u8]; // OverlapQuery tag
        raw.extend(std::iter::repeat_n(0x80, 10));
        raw.push(0x01);
        assert_eq!(
            Message::decode(Bytes::from(raw)),
            Err(WireError::BadVarint("k"))
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_option_shim_still_works() {
        let m = Message::KnnQuery {
            query: cs(&[1]),
            k: 1,
        };
        assert_eq!(Message::decode_opt(m.encode()), Some(m));
        assert_eq!(Message::decode_opt(Bytes::new()), None);
    }

    #[test]
    fn maintenance_messages_roundtrip() {
        use spatial::Point;
        let batch = Message::ApplyUpdates {
            ops: vec![
                UpdateOp::Insert(SpatialDataset::named(
                    7,
                    "bus-route-7",
                    vec![Point::new(-77.01, 38.9), Point::new(-77.02, 38.91)],
                )),
                UpdateOp::Update(SpatialDataset::new(3, vec![Point::new(116.3, 39.9)])),
                UpdateOp::Delete(42),
            ],
        };
        let encoded = batch.encode();
        assert_eq!(Message::decode(encoded.clone()), Ok(batch.clone()));
        assert_eq!(batch.wire_size(), encoded.len());

        let grid = spatial::Grid::global(10).unwrap();
        let root = dits::NodeGeometry::from_mbr(spatial::Mbr::new(
            Point::new(100.0, 200.0),
            Point::new(300.0, 400.0),
        ));
        let reply = Message::SummaryRefresh {
            summary: SourceSummary::from_local_root(3, &grid, root),
            dataset_count: 1234,
            applied: 3,
            rejected: 1,
        };
        assert_eq!(Message::decode(reply.encode()), Ok(reply));
    }

    #[test]
    fn empty_maintenance_batch_roundtrips() {
        let m = Message::ApplyUpdates { ops: vec![] };
        assert_eq!(Message::decode(m.encode()), Ok(m));
    }

    #[test]
    fn malformed_maintenance_messages_are_rejected() {
        let batch = Message::ApplyUpdates {
            ops: vec![UpdateOp::Insert(SpatialDataset::new(
                1,
                vec![spatial::Point::new(1.0, 2.0)],
            ))],
        };
        let enc = batch.encode();
        for cut in 1..enc.len() {
            assert!(
                Message::decode(enc.slice(0..cut)).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Unknown op tag.
        let mut raw = enc.to_vec();
        raw[2] = 9;
        assert_eq!(
            Message::decode(Bytes::from(raw)),
            Err(WireError::BadOpTag(9))
        );
    }

    #[test]
    fn batch_messages_roundtrip() {
        let oq = Message::OverlapBatchQuery {
            queries: vec![cs(&[1, 5, 100]), cs(&[]), cs(&[4096])],
            k: 10,
        };
        let encoded = oq.encode();
        assert_eq!(Message::decode(encoded.clone()), Ok(oq.clone()));
        assert_eq!(oq.wire_size(), encoded.len());

        let or = Message::OverlapBatchReply {
            source: 3,
            results: vec![
                vec![
                    OverlapResult {
                        dataset: 7,
                        overlap: 42,
                    },
                    OverlapResult {
                        dataset: 1000,
                        overlap: 1,
                    },
                ],
                vec![],
            ],
        };
        assert_eq!(Message::decode(or.encode()), Ok(or));

        let cq = Message::CoverageBatchQuery {
            queries: vec![cs(&[0, 2, 9]), cs(&[7])],
            k: 5,
            delta: 10.0,
        };
        assert_eq!(Message::decode(cq.encode()), Ok(cq));

        let cr = Message::CoverageBatchReply {
            source: 1,
            candidates: vec![
                vec![CoverageCandidate {
                    source: 1,
                    dataset: 4,
                    cells: cs(&[9, 10, 11]),
                }],
                vec![],
            ],
        };
        assert_eq!(Message::decode(cr.encode()), Ok(cr));
    }

    #[test]
    fn empty_batch_messages_roundtrip() {
        for m in [
            Message::OverlapBatchQuery {
                queries: vec![],
                k: 3,
            },
            Message::OverlapBatchReply {
                source: 0,
                results: vec![],
            },
            Message::CoverageBatchQuery {
                queries: vec![],
                k: 3,
                delta: 1.0,
            },
            Message::CoverageBatchReply {
                source: 0,
                candidates: vec![],
            },
        ] {
            assert_eq!(Message::decode(m.encode()), Ok(m));
        }
    }

    #[test]
    fn malformed_batch_messages_are_rejected() {
        let messages = [
            Message::OverlapBatchQuery {
                queries: vec![cs(&[1, 2, 3]), cs(&[10])],
                k: 2,
            },
            Message::OverlapBatchReply {
                source: 2,
                results: vec![vec![OverlapResult {
                    dataset: 5,
                    overlap: 3,
                }]],
            },
            Message::CoverageBatchQuery {
                queries: vec![cs(&[1, 2])],
                k: 2,
                delta: 4.0,
            },
            Message::CoverageBatchReply {
                source: 2,
                candidates: vec![vec![CoverageCandidate {
                    source: 2,
                    dataset: 6,
                    cells: cs(&[3, 4]),
                }]],
            },
        ];
        for m in messages {
            let enc = m.encode();
            for cut in 1..enc.len() {
                assert!(
                    Message::decode(enc.slice(0..cut)).is_err(),
                    "truncation at {cut} of {m:?} must fail"
                );
            }
        }
    }

    fn sample_snapshot() -> obs::MetricsSnapshot {
        obs::MetricsSnapshot {
            samples: vec![
                obs::MetricSample {
                    name: "source_requests_total".into(),
                    labels: vec![("kind".into(), "overlap".into())],
                    value: obs::MetricValue::Counter(42),
                },
                obs::MetricSample {
                    name: "source_datasets".into(),
                    labels: vec![],
                    value: obs::MetricValue::Gauge(17.5),
                },
                obs::MetricSample {
                    name: "source_service_nanos".into(),
                    labels: vec![],
                    value: obs::MetricValue::Histogram {
                        count: 3,
                        sum: 12_345,
                        buckets: vec![(4, 1), (11, 2)],
                    },
                },
            ],
        }
    }

    #[test]
    fn metrics_messages_roundtrip() {
        let q = Message::MetricsQuery;
        assert_eq!(Message::decode(q.encode()), Ok(q));

        let m = Message::MetricsSnapshot {
            source: 3,
            snapshot: sample_snapshot(),
        };
        assert_eq!(Message::decode(m.encode()), Ok(m));

        let empty = Message::MetricsSnapshot {
            source: 0,
            snapshot: obs::MetricsSnapshot { samples: vec![] },
        };
        assert_eq!(Message::decode(empty.encode()), Ok(empty));
    }

    #[test]
    fn malformed_metrics_messages_are_rejected() {
        let m = Message::MetricsSnapshot {
            source: 3,
            snapshot: sample_snapshot(),
        };
        let enc = m.encode();
        for cut in 1..enc.len() {
            assert!(
                Message::decode(enc.slice(0..cut)).is_err(),
                "truncation at {cut} of {m:?} must fail"
            );
        }
    }

    #[test]
    fn oversized_metric_string_is_rejected() {
        // Forge a snapshot frame whose metric-name length claims more than
        // the wire bound allows; it must fail closed even if the bytes are
        // present.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_METRICS_SNAPSHOT);
        buf.put_u16(0);
        put_varint(&mut buf, 1); // one sample
        put_varint(&mut buf, (MAX_METRIC_STRING_BYTES + 1) as u64);
        buf.put_slice(&vec![b'a'; MAX_METRIC_STRING_BYTES + 1]);
        assert_eq!(
            Message::decode(buf.freeze()),
            Err(WireError::Oversized("metric name"))
        );
    }

    #[test]
    fn clipping_the_query_shrinks_the_wire_size() {
        let full: CellSet = (0..1000u64).collect();
        let clipped: CellSet = (0..100u64).collect();
        let full_size = Message::OverlapQuery { query: full, k: 10 }.wire_size();
        let clipped_size = Message::OverlapQuery {
            query: clipped,
            k: 10,
        }
        .wire_size();
        assert!(clipped_size < full_size / 5);
    }

    #[test]
    fn delta_encoding_beats_fixed_width() {
        // 1000 consecutive cells fit in ~1 byte each instead of 8.
        let cells: CellSet = (10_000..11_000u64).collect();
        let size = Message::OverlapQuery {
            query: cells,
            k: 10,
        }
        .wire_size();
        assert!(size < 1_000 * 8 / 4, "wire size {size} not compact");
    }

    proptest! {
        #[test]
        fn prop_messages_roundtrip(
            cells in proptest::collection::vec(0u64..1_000_000, 0..200),
            k in 0usize..100,
            source in 0u16..100,
            delta in 0.0f64..50.0,
        ) {
            let q = Message::OverlapQuery { query: CellSet::from_cells(cells.clone()), k };
            prop_assert_eq!(Message::decode(q.encode()), Ok(q));
            let c = Message::CoverageQuery {
                query: CellSet::from_cells(cells.clone()), k, delta };
            prop_assert_eq!(Message::decode(c.encode()), Ok(c));
            let n = Message::KnnQuery { query: CellSet::from_cells(cells.clone()), k };
            prop_assert_eq!(Message::decode(n.encode()), Ok(n));
            let r = Message::CoverageReply {
                source,
                candidates: vec![CoverageCandidate {
                    source,
                    dataset: 9,
                    cells: CellSet::from_cells(cells),
                }],
            };
            prop_assert_eq!(Message::decode(r.encode()), Ok(r));
        }

        #[test]
        fn prop_metrics_snapshot_roundtrips(
            source in 0u16..100,
            counter in 0u64..u64::MAX,
            gauge in -1.0e12f64..1.0e12,
            buckets in proptest::collection::vec((0u8..64, 1u64..1_000_000), 0..8),
            name_idx in 0usize..3,
            label_idx in 0usize..3,
        ) {
            let name = ["requests_total", "service_nanos", "x"][name_idx].to_string();
            let label = ["overlap", "coverage k=5", "été/θ"][label_idx].to_string();
            let count: u64 = buckets.iter().map(|(_, n)| n).sum();
            let m = Message::MetricsSnapshot {
                source,
                snapshot: obs::MetricsSnapshot {
                    samples: vec![
                        obs::MetricSample {
                            name: name.clone(),
                            labels: vec![("label".into(), label)],
                            value: obs::MetricValue::Counter(counter),
                        },
                        obs::MetricSample {
                            name: format!("{name}_gauge"),
                            labels: vec![],
                            value: obs::MetricValue::Gauge(gauge),
                        },
                        obs::MetricSample {
                            name: format!("{name}_nanos"),
                            labels: vec![],
                            value: obs::MetricValue::Histogram {
                                count,
                                sum: count.saturating_mul(7),
                                buckets,
                            },
                        },
                    ],
                },
            };
            prop_assert_eq!(Message::decode(m.encode()), Ok(m));
        }
    }
}
