//! Transport-parity and wire-robustness integration tests.
//!
//! * Fuzz-style proptests feed truncated / bit-flipped `Message::encode`
//!   output through `Message::decode`, asserting it never panics and always
//!   reports a typed [`WireError`] for malformed input.
//! * A loopback TCP federation ([`SourceServer`] threads, real sockets, the
//!   framed protocol) must answer every OJSP / CJSP / kNN `SearchRequest`
//!   **byte-identically** to the in-process transport — same answers, same
//!   `CommStats`, same `SearchStats` — and apply maintenance batches with
//!   the same transactional semantics.
//! * The `source-server` *binary* is spawned as real child processes and
//!   served the same checks end to end.
//! * Observability crosses the wire without perturbing it: a traced request
//!   yields the same canonical span structure on every transport while the
//!   counted protocol bytes stay identical to an untraced run, and every
//!   source's metrics registry is scrapable into valid Prometheus text.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use bytes::Bytes;
use datagen::{generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale};
use multisource::message::{
    TAG_APPLY_UPDATES, TAG_COVERAGE_BATCH_QUERY, TAG_COVERAGE_BATCH_REPLY, TAG_COVERAGE_QUERY,
    TAG_COVERAGE_REPLY, TAG_ERROR, TAG_KNN_QUERY, TAG_KNN_REPLY, TAG_METRICS_QUERY,
    TAG_METRICS_SNAPSHOT, TAG_OVERLAP_BATCH_QUERY, TAG_OVERLAP_BATCH_REPLY, TAG_OVERLAP_QUERY,
    TAG_OVERLAP_REPLY, TAG_SUMMARY_REFRESH,
};
use multisource::{
    DataCenter, DistributionStrategy, EngineConfig, FrameworkConfig, Message, MultiSourceFramework,
    QueryEngine, SearchError, SearchRequest, ShardMode, SourceServer, SourceTransport,
    TcpTransport, UpdateOp, WireError,
};
use net::PooledTcpTransport;
use proptest::prelude::*;
use spatial::{Point, SpatialDataset};

fn build_data(seed: u64) -> Vec<(String, Vec<SpatialDataset>)> {
    let config = GeneratorConfig {
        scale: SourceScale::Custom(500),
        seed,
        max_points_per_dataset: Some(80),
    };
    paper_sources()
        .iter()
        .take(3)
        .map(|p| (p.name.to_string(), generate_source(p, &config)))
        .collect()
}

fn framework(data: &[(String, Vec<SpatialDataset>)]) -> MultiSourceFramework {
    MultiSourceFramework::build(
        data,
        FrameworkConfig {
            resolution: 11,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    )
}

fn probe_queries(data: &[(String, Vec<SpatialDataset>)]) -> Vec<SpatialDataset> {
    let pool: Vec<SpatialDataset> = data.iter().flat_map(|(_, d)| d.iter().cloned()).collect();
    select_queries(&pool, 6, 3)
}

/// Engine config matching what `MultiSourceFramework` uses, so the
/// transport-built engine plans identically to the in-process framework.
fn engine_config(fw: &MultiSourceFramework) -> EngineConfig {
    EngineConfig {
        workers: fw.config().workers,
        strategy: fw.config().strategy,
        delta_cells: fw.config().delta_cells,
        ..EngineConfig::default()
    }
}

/// Spawns one `SourceServer` thread per in-process source and returns the
/// TCP transport reaching them.
fn spawn_federation(fw: &MultiSourceFramework) -> TcpTransport {
    let endpoints: Vec<_> = fw
        .sources()
        .iter()
        .map(|s| {
            SourceServer::spawn("127.0.0.1:0", s.clone())
                .expect("bind loopback")
                .endpoint()
        })
        .collect();
    TcpTransport::new(endpoints)
}

/// The core parity assertion: every search kind, identical answers, comm
/// bytes and search stats across the two transports.  Takes any transport
/// so the per-call TCP transport and the pooled, pipelined one are held to
/// the same contract.
fn assert_transport_parity(
    fw: &MultiSourceFramework,
    tcp: &dyn SourceTransport,
    queries: &[SpatialDataset],
) {
    let remote_center =
        DataCenter::from_transport(tcp, fw.config().leaf_capacity).expect("summary poll");
    assert_eq!(
        remote_center.global().summaries(),
        fw.center().global().summaries(),
        "a DITS-G bootstrapped over TCP must equal the locally built one"
    );
    let remote = QueryEngine::new(&remote_center, tcp, engine_config(fw));

    for request in [
        SearchRequest::ojsp_batch(queries.to_vec()).k(5),
        SearchRequest::cjsp_batch(queries.to_vec()).k(3),
        SearchRequest::knn_batch(queries.to_vec()).k(4),
        SearchRequest::ojsp_batch(queries.to_vec())
            .k(5)
            .strategy(DistributionStrategy::Broadcast),
        SearchRequest::knn_batch(queries.to_vec())
            .k(2)
            .strategy(DistributionStrategy::Broadcast),
        // The per-source batched shard mode moves different (batched) wire
        // messages; it must stay byte- and stats-identical across transports
        // too.
        SearchRequest::ojsp_batch(queries.to_vec())
            .k(5)
            .shard_mode(ShardMode::PerSourceBatch),
        SearchRequest::cjsp_batch(queries.to_vec())
            .k(3)
            .shard_mode(ShardMode::PerSourceBatch),
    ] {
        let local = fw.search(&request).expect("in-process search");
        let over_tcp = remote.run(&request).expect("TCP search");
        assert_eq!(
            local.results,
            over_tcp.results,
            "answers diverged across transports ({:?})",
            request.kind()
        );
        assert_eq!(
            local.comm, over_tcp.comm,
            "protocol byte accounting diverged across transports"
        );
        assert_eq!(
            local.search, over_tcp.search,
            "search statistics diverged across transports"
        );
    }
}

#[test]
fn loopback_tcp_federation_matches_in_process() {
    let data = build_data(21);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let tcp = spawn_federation(&fw);
    assert_transport_parity(&fw, &tcp, &queries);
}

/// The pooled, pipelined transport must be indistinguishable from the
/// per-call one above: the correlation id rides the frame, not the message,
/// so answers, `CommStats` and `SearchStats` stay byte-identical even
/// though the wire traffic is multiplexed over shared connections.
#[test]
fn pooled_tcp_federation_matches_in_process() {
    let data = build_data(21);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let endpoints: Vec<_> = fw
        .sources()
        .iter()
        .map(|s| {
            SourceServer::spawn("127.0.0.1:0", s.clone())
                .expect("bind loopback")
                .endpoint()
        })
        .collect();
    let pooled = PooledTcpTransport::new(endpoints).expect("pooled transport");
    assert_transport_parity(&fw, &pooled, &queries);
}

/// The verification-side fast paths (bounded kNN sweeps, cached per-node
/// verify state) must be invisible at every level of the stack: the
/// production bounded kernel answers byte-identically — results *and*
/// `SearchStats` — to the unbounded fresh-state oracle on every source, and
/// repeated kNN requests over a real socket (cold caches on the first run,
/// warm on the second) return identical responses to the in-process engine.
#[test]
fn bounded_knn_matches_unbounded_oracle_across_transports() {
    use dits::{nearest_datasets, nearest_datasets_unbounded};

    let data = build_data(47);
    let fw = framework(&data);
    let queries = probe_queries(&data);

    // Source-level oracle parity: the bounded kernel (threaded k-th-best
    // cutoff, cached sorted-coordinate state) vs the unbounded fresh oracle.
    for source in fw.sources() {
        for q in &queries {
            let cells = source.grid_query(q);
            if cells.is_empty() {
                continue;
            }
            for k in [1, 3, 7] {
                let (fast, fast_stats) = nearest_datasets(source.index(), &cells, k);
                let (oracle, oracle_stats) = nearest_datasets_unbounded(source.index(), &cells, k);
                assert_eq!(
                    fast, oracle,
                    "bounded kNN diverged from the unbounded oracle (source {}, k {k})",
                    source.id
                );
                assert_eq!(
                    fast_stats, oracle_stats,
                    "bounded kNN stats diverged from the unbounded oracle (source {}, k {k})",
                    source.id
                );
            }
        }
    }

    // Cross-transport parity of the same kernels, cold and warm: the first
    // TCP run builds the per-node caches on the servers, the second reuses
    // them — both must equal the in-process answer bit for bit.
    let tcp = spawn_federation(&fw);
    let center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity).expect("summary poll");
    let remote = QueryEngine::new(&center, &tcp, engine_config(&fw));
    for k in [2, 4] {
        let request = SearchRequest::knn_batch(queries.to_vec()).k(k);
        let local = fw.search(&request).expect("in-process kNN");
        let cold = remote.run(&request).expect("TCP kNN (cold caches)");
        let warm = remote.run(&request).expect("TCP kNN (warm caches)");
        for over_tcp in [&cold, &warm] {
            assert_eq!(
                local.results, over_tcp.results,
                "kNN answers diverged (k {k})"
            );
            assert_eq!(local.comm, over_tcp.comm, "kNN comm stats diverged (k {k})");
            assert_eq!(
                local.search, over_tcp.search,
                "kNN search stats diverged (k {k})"
            );
        }
    }
}

/// A summary registered in DITS-G whose source the transport cannot reach
/// (a fleet member that left after the global image was persisted) is
/// skipped during routing — the batch answers from the remaining sources
/// instead of failing wholesale with `UnknownSource`.
#[test]
fn unreachable_sources_are_skipped_not_fatal() {
    let data = build_data(21);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    // A center that knows every source, over a transport that lost one.
    let center = DataCenter::from_global(fw.center().global().clone());
    let partial: Vec<multisource::DataSource> = fw.sources()[..2].to_vec();
    let transport = multisource::InProcessTransport::new(&partial);
    let engine = QueryEngine::new(&center, &transport, engine_config(&fw));
    for request in [
        SearchRequest::ojsp_batch(queries.clone()).k(5),
        SearchRequest::cjsp_batch(queries.clone()).k(3),
        SearchRequest::knn_batch(queries.clone()).k(4),
    ] {
        let response = engine.run(&request).expect("partial fleet still answers");
        assert_eq!(response.results.len(), queries.len());
        // Nothing was routed to the missing source.
        assert!(response.per_source.iter().all(|t| t.source < 2));
    }
}

#[test]
fn maintenance_over_tcp_matches_in_process() {
    let data = build_data(8);
    let mut fw = framework(&data);
    let queries = probe_queries(&data);

    // Remote deployment: servers seeded with the same initial sources.
    let tcp = spawn_federation(&fw);
    let mut remote_center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity).unwrap();

    // The same mixed batch applied through both transports.
    let fresh = SpatialDataset::new(
        800_000,
        (0..8)
            .map(|j| Point::new(-76.5 + j as f64 * 0.01, 39.0))
            .collect(),
    );
    let victim = data[1].1[0].id;
    let ops = vec![
        UpdateOp::Insert(fresh.clone()),
        UpdateOp::Delete(victim),
        UpdateOp::Delete(900_000), // individually rejected: unknown id
    ];
    let local_outcome = fw.apply_updates(1, &ops).unwrap();
    let remote_outcome = remote_center.apply_updates(&tcp, 1, &ops).unwrap();
    assert_eq!(local_outcome.summary, remote_outcome.summary);
    assert_eq!(local_outcome.stats, remote_outcome.stats);
    assert_eq!(local_outcome.comm, remote_outcome.comm);
    assert_eq!(
        remote_center.global().summaries(),
        fw.center().global().summaries(),
        "DITS-G must track the remote mutation identically"
    );

    // Post-maintenance queries still agree transport to transport.
    let remote = QueryEngine::new(&remote_center, &tcp, engine_config(&fw));
    let request = SearchRequest::ojsp_batch(queries).k(5);
    let local = fw.search(&request).unwrap();
    let over_tcp = remote.run(&request).unwrap();
    assert_eq!(local.results, over_tcp.results);
    assert_eq!(local.comm, over_tcp.comm);

    // A structurally invalid batch is rejected transactionally over TCP,
    // exactly like in-process: typed error, nothing mutated.
    let before = remote_center.global().summaries();
    let bad = vec![
        UpdateOp::Insert(SpatialDataset::new(810_000, vec![Point::new(1.0, 1.0)])),
        UpdateOp::Insert(SpatialDataset::new(810_001, vec![])),
    ];
    let local_err = fw.apply_updates(1, &bad).unwrap_err();
    let remote_err = remote_center.apply_updates(&tcp, 1, &bad).unwrap_err();
    assert!(matches!(local_err, SearchError::Rejected { .. }));
    assert_eq!(
        local_err, remote_err,
        "rejections must cross the wire losslessly"
    );
    assert_eq!(remote_center.global().summaries(), before);

    // An unroutable source is the same typed error on both transports.
    assert_eq!(
        remote_center
            .apply_updates(&tcp, 77, &[UpdateOp::Delete(1)])
            .unwrap_err(),
        SearchError::UnknownSource(77)
    );
}

/// Spawned `source-server` child with its parsed listen address.  Stdin is
/// piped (for the `SHUTDOWN` drain line) and stdout kept open (for the
/// `DRAINED` confirmation).
struct ServerProcess {
    child: Child,
    addr: String,
    stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server_binary(
    id: u16,
    dir: &std::path::Path,
    datasets: &[SpatialDataset],
) -> ServerProcess {
    // One `dataset_id lon lat` triple per line.
    let data_path = dir.join(format!("source-{id}.tsv"));
    let mut file = std::fs::File::create(&data_path).expect("create data file");
    for d in datasets {
        for p in &d.points {
            writeln!(file, "{} {} {}", d.id, p.x, p.y).expect("write data file");
        }
    }
    drop(file);

    let mut child = Command::new(env!("CARGO_BIN_EXE_source-server"))
        .args([
            "--id",
            &id.to_string(),
            "--resolution",
            "11",
            "--listen",
            "127.0.0.1:0",
            "--data",
            data_path.to_str().expect("utf8 path"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn source-server");

    // The server prints `LISTENING <addr>` once bound.
    use std::io::{BufRead, BufReader};
    let stdout = child.stdout.take().expect("piped stdout");
    let mut stdout = BufReader::new(stdout);
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read ready line");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
        .to_string();
    ServerProcess {
        child,
        addr,
        stdout,
    }
}

#[test]
fn source_server_processes_answer_identically_to_in_process() {
    let data = build_data(33);
    let fw = framework(&data);
    let queries = probe_queries(&data);

    let dir = std::env::temp_dir().join(format!("source-server-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let servers: Vec<ServerProcess> = data
        .iter()
        .enumerate()
        .map(|(i, (_, datasets))| spawn_server_binary(i as u16, &dir, datasets))
        .collect();
    let tcp = TcpTransport::new(
        servers
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.addr.clone())),
    );

    assert_transport_parity(&fw, &tcp, &queries);
    drop(servers);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pooled transport against spawned `source-server` child processes —
/// the fully federated deployment — still answers byte-identically.
#[test]
fn pooled_transport_over_server_processes_matches_in_process() {
    let data = build_data(33);
    let fw = framework(&data);
    let queries = probe_queries(&data);

    let dir = std::env::temp_dir().join(format!("source-server-pooled-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let servers: Vec<ServerProcess> = data
        .iter()
        .enumerate()
        .map(|(i, (_, datasets))| spawn_server_binary(i as u16, &dir, datasets))
        .collect();
    let pooled = PooledTcpTransport::new(
        servers
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.addr.clone())),
    )
    .expect("pooled transport");

    assert_transport_parity(&fw, &pooled, &queries);
    drop(servers);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A [`SourceServer`] drains on shutdown: the call returns once in-flight
/// work is finished and open connections are closed, after which the
/// endpoint is gone.
#[test]
fn source_server_shutdown_drains_open_connections() {
    use multisource::SourceTransport as _;

    let data = build_data(61);
    let fw = framework(&data);
    let server = SourceServer::spawn("127.0.0.1:0", fw.sources()[0].clone()).expect("bind");
    let source_id = server.id();
    let tcp = TcpTransport::new([(source_id, server.addr().to_string())]);
    // Serve one request so the transport holds an open, idle connection
    // through the shutdown.
    let reply = tcp
        .call(source_id, &Message::MetricsQuery, false)
        .expect("request before shutdown");
    assert!(matches!(reply.message, Message::MetricsSnapshot { .. }));

    // Blocks until drained: the idle connection notices the signal and
    // closes instead of being severed mid-frame.
    server.shutdown();

    // The endpoint no longer serves: the cached connection is closed and
    // the listener is gone.
    assert!(
        tcp.call(source_id, &Message::MetricsQuery, false).is_err(),
        "a drained server must not accept further requests"
    );
}

/// The `source-server` binary drains on a `SHUTDOWN` stdin line: it answers
/// what is in flight, prints `DRAINED`, and exits zero — while a server
/// whose stdin merely sits open (or closes without the line) keeps serving.
#[test]
fn source_server_binary_drains_on_shutdown_line() {
    use multisource::SourceTransport as _;

    let data = build_data(77);
    let dir = std::env::temp_dir().join(format!("source-server-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut server = spawn_server_binary(9, &dir, &data[0].1);

    let tcp = TcpTransport::new([(9u16, server.addr.clone())]);
    tcp.call(9, &Message::MetricsQuery, false)
        .expect("request before shutdown");

    server
        .child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"SHUTDOWN\n")
        .expect("write shutdown line");

    use std::io::BufRead as _;
    let mut line = String::new();
    server
        .stdout
        .read_line(&mut line)
        .expect("read drained line");
    assert_eq!(line.trim(), "DRAINED");
    let status = server.child.wait().expect("wait for drained server");
    assert!(status.success(), "drained server must exit cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Observability across transports
// ---------------------------------------------------------------------------

/// A trace's canonical span structure: the `(source, name)` pairs, which must
/// be deployment-independent even though the measured durations are not.
fn span_structure(trace: &obs::Trace) -> Vec<(Option<u16>, String)> {
    trace
        .spans
        .iter()
        .map(|s| (s.source, s.name.clone()))
        .collect()
}

/// Runs the same request untraced and traced through one engine, asserting
/// tracing changes nothing observable but the trace itself, and returns the
/// trace.
fn run_traced(
    engine: &QueryEngine,
    request: &SearchRequest,
    deployment: &str,
) -> (multisource::SearchResponse, obs::Trace) {
    let plain = engine.run(request).expect("untraced run");
    assert!(
        plain.trace.is_none(),
        "{deployment}: tracing must be opt-in"
    );
    let traced = engine
        .run(&request.clone().with_trace(true))
        .expect("traced run");
    assert_eq!(
        plain.results, traced.results,
        "{deployment}: tracing changed the answers"
    );
    assert_eq!(
        plain.comm, traced.comm,
        "{deployment}: tracing changed the counted protocol bytes"
    );
    let trace = traced.trace.clone().expect("trace was requested");
    (traced, trace)
}

/// The cross-transport invariance check of the observability layer: the
/// in-process deployment, `SourceServer` threads over loopback TCP, and
/// spawned `source-server` child processes must all produce the *same
/// canonical span structure* for the same traced request — and on every
/// deployment the source-side spans must carry the center-assigned trace id
/// (the engine drops phase spans whose frame echo does not match, so their
/// presence proves propagation across the real socket).
#[test]
fn traced_span_structure_is_transport_invariant() {
    let data = build_data(21);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let request = SearchRequest::ojsp_batch(queries.clone()).k(5);

    // In-process reference.
    let engine = fw.engine();
    let (_, local_trace) = run_traced(&engine, &request, "in-process");
    let reference = span_structure(&local_trace);
    assert!(
        local_trace.spans_named("traversal").count() > 0,
        "source-side phase spans must be present"
    );

    // SourceServer threads over loopback TCP.
    let tcp = spawn_federation(&fw);
    let center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity).expect("summary poll");
    let remote = QueryEngine::new(&center, &tcp, engine_config(&fw));
    let (_, tcp_trace) = run_traced(&remote, &request, "loopback TCP");
    assert_eq!(
        span_structure(&tcp_trace),
        reference,
        "span structure diverged between in-process and loopback TCP"
    );
    assert!(
        tcp_trace.total_named("traversal") + tcp_trace.total_named("verify") > Duration::ZERO,
        "phase measurements must survive the socket round-trip"
    );

    // Spawned source-server binaries.
    let dir = std::env::temp_dir().join(format!("source-server-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let servers: Vec<ServerProcess> = data
        .iter()
        .enumerate()
        .map(|(i, (_, datasets))| spawn_server_binary(i as u16, &dir, datasets))
        .collect();
    let spawned = TcpTransport::new(
        servers
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u16, s.addr.clone())),
    );
    let center =
        DataCenter::from_transport(&spawned, fw.config().leaf_capacity).expect("summary poll");
    let remote = QueryEngine::new(&center, &spawned, engine_config(&fw));
    let (_, spawned_trace) = run_traced(&remote, &request, "spawned binary");
    assert_eq!(
        span_structure(&spawned_trace),
        reference,
        "span structure diverged between in-process and spawned source-server processes"
    );
    // Traces from different runs have distinct center-assigned ids.
    assert_ne!(tcp_trace.id, spawned_trace.id);
    drop(servers);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every source's metrics registry is scrapable through the wire protocol,
/// and the snapshot renders to Prometheus text the mini-parser accepts.
#[test]
fn metrics_scrape_renders_valid_prometheus_over_tcp() {
    use multisource::SourceTransport as _;

    let data = build_data(5);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let tcp = spawn_federation(&fw);
    let center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity).expect("summary poll");
    let remote = QueryEngine::new(&center, &tcp, engine_config(&fw));
    // Broadcast so every source demonstrably serves at least one overlap
    // query before being scraped.
    remote
        .run(
            &SearchRequest::ojsp_batch(queries.clone())
                .k(5)
                .strategy(DistributionStrategy::Broadcast),
        )
        .expect("OJSP over TCP");

    for source in tcp.source_ids() {
        let snapshot = multisource::scrape_metrics(&tcp, source).expect("metrics scrape");
        let text = obs::render_prometheus(&snapshot);
        let samples = obs::parse_prometheus(&text)
            .unwrap_or_else(|e| panic!("source {source} produced invalid exposition: {e}"));
        let overlap_served = samples.iter().any(|s| {
            s.name == "source_requests_total"
                && s.labels.iter().any(|(k, v)| k == "kind" && v == "overlap")
                && s.value >= 1.0
        });
        assert!(
            overlap_served,
            "source {source} reported no served overlap requests"
        );
        assert!(
            samples
                .iter()
                .any(|s| s.name == "source_service_nanos_count" && s.value >= 1.0),
            "source {source} reported no service-time observations"
        );
        // The JSON exporter agrees on the series.
        let json = obs::render_json(&snapshot);
        assert!(json.contains("source_requests_total"));
        assert!(json.contains("source_service_nanos"));
    }
}

// ---------------------------------------------------------------------------
// Wire-robustness fuzzing
// ---------------------------------------------------------------------------

/// Every protocol tag, so the truncation/bit-flip fuzzers exercise the whole
/// wire surface.  repo-lint's `wire-tags` rule keeps this list exhaustive: a
/// new `Message` variant whose tag is missing here fails the analysis job.
const FUZZ_TAGS: [u8; 15] = [
    TAG_OVERLAP_QUERY,
    TAG_OVERLAP_REPLY,
    TAG_COVERAGE_QUERY,
    TAG_COVERAGE_REPLY,
    TAG_APPLY_UPDATES,
    TAG_SUMMARY_REFRESH,
    TAG_KNN_QUERY,
    TAG_KNN_REPLY,
    TAG_ERROR,
    TAG_OVERLAP_BATCH_QUERY,
    TAG_OVERLAP_BATCH_REPLY,
    TAG_COVERAGE_BATCH_QUERY,
    TAG_COVERAGE_BATCH_REPLY,
    TAG_METRICS_QUERY,
    TAG_METRICS_SNAPSHOT,
];

/// Builds one message of any protocol kind from raw fuzz ingredients.
fn build_message(kind: u8, cells: &[u64], k: usize, delta: f64, ids: &[u32], code: u16) -> Message {
    let query = spatial::CellSet::from_cells(cells.iter().copied());
    let overlap_results = |ids: &[u32]| {
        ids.iter()
            .map(|&id| dits::OverlapResult {
                dataset: id,
                overlap: k,
            })
            .collect::<Vec<_>>()
    };
    let coverage_candidates = |ids: &[u32]| {
        ids.iter()
            .map(|&id| multisource::CoverageCandidate {
                source: code,
                dataset: id,
                cells: query.clone(),
            })
            .collect::<Vec<_>>()
    };
    match FUZZ_TAGS[(kind as usize) % FUZZ_TAGS.len()] {
        TAG_OVERLAP_QUERY => Message::OverlapQuery { query, k },
        TAG_OVERLAP_REPLY => Message::OverlapReply {
            source: code,
            results: overlap_results(ids),
        },
        TAG_COVERAGE_QUERY => Message::CoverageQuery { query, k, delta },
        TAG_COVERAGE_REPLY => Message::CoverageReply {
            source: code,
            candidates: coverage_candidates(ids),
        },
        TAG_APPLY_UPDATES => Message::ApplyUpdates {
            ops: ids
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let dataset = SpatialDataset::new(
                        id,
                        vec![
                            Point::new(delta - 10.0, delta),
                            Point::new(delta, delta + 1.0),
                        ],
                    );
                    match i % 3 {
                        0 => UpdateOp::Insert(dataset),
                        1 => UpdateOp::Update(dataset),
                        _ => UpdateOp::Delete(id),
                    }
                })
                .collect(),
        },
        TAG_SUMMARY_REFRESH => Message::SummaryRefresh {
            summary: dits::SourceSummary {
                source: code,
                geometry: dits::NodeGeometry::from_mbr(spatial::Mbr::new(
                    Point::new(delta - 10.0, delta),
                    Point::new(delta, delta + 1.0),
                )),
                resolution: 100,
            },
            dataset_count: ids.len() as u64,
            applied: k as u64,
            rejected: code as u64,
        },
        TAG_KNN_QUERY => Message::KnnQuery { query, k },
        TAG_ERROR => Message::Error {
            code,
            detail: format!("fuzz error {code}"),
        },
        TAG_OVERLAP_BATCH_QUERY => Message::OverlapBatchQuery {
            queries: vec![query, spatial::CellSet::new()],
            k,
        },
        TAG_OVERLAP_BATCH_REPLY => Message::OverlapBatchReply {
            source: code,
            results: vec![overlap_results(ids), Vec::new()],
        },
        TAG_COVERAGE_BATCH_QUERY => Message::CoverageBatchQuery {
            queries: vec![query],
            k,
            delta,
        },
        TAG_COVERAGE_BATCH_REPLY => Message::CoverageBatchReply {
            source: code,
            candidates: vec![coverage_candidates(ids)],
        },
        TAG_METRICS_QUERY => Message::MetricsQuery,
        TAG_METRICS_SNAPSHOT => Message::MetricsSnapshot {
            source: code,
            snapshot: obs::MetricsSnapshot {
                samples: vec![
                    obs::MetricSample {
                        name: "fuzz_total".to_string(),
                        labels: vec![("kind".to_string(), code.to_string())],
                        value: obs::MetricValue::Counter(k as u64),
                    },
                    obs::MetricSample {
                        name: "fuzz_nanos".to_string(),
                        labels: Vec::new(),
                        value: obs::MetricValue::Histogram {
                            count: ids.len() as u64,
                            sum: k as u64,
                            buckets: vec![(3, 1), (7, 2)],
                        },
                    },
                ],
            },
        },
        _ => Message::KnnReply {
            source: code,
            neighbors: ids
                .iter()
                .map(|&id| dits::Neighbor {
                    dataset: id,
                    distance: delta,
                })
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every prefix truncation decodes to a typed error -- never a panic,
    // never a bogus success.
    #[test]
    fn prop_truncations_fail_closed(
        kind in 0u8..15,
        cells in proptest::collection::vec(0u64..1_000_000, 0..60),
        k in 0usize..50,
        delta in 0.0f64..30.0,
        ids in proptest::collection::vec(0u32..10_000, 0..4),
        code in 0u16..100,
    ) {
        let message = build_message(kind, &cells, k, delta, &ids, code);
        let encoded = message.encode();
        prop_assert_eq!(Message::decode(encoded.clone()), Ok(message));
        for cut in 0..encoded.len() {
            let truncated = encoded.slice(0..cut);
            prop_assert!(
                Message::decode(truncated).is_err(),
                "truncation at {} of {} decoded successfully",
                cut,
                encoded.len()
            );
        }
    }

    // Bit flips anywhere in the buffer either decode to *some* message or
    // fail with a typed error -- decode must be total.
    #[test]
    fn prop_bit_flips_never_panic(
        kind in 0u8..15,
        cells in proptest::collection::vec(0u64..1_000_000, 0..60),
        k in 0usize..50,
        delta in 0.0f64..30.0,
        ids in proptest::collection::vec(0u32..10_000, 0..4),
        code in 0u16..100,
        byte_sel in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut raw = build_message(kind, &cells, k, delta, &ids, code)
            .encode()
            .to_vec();
        let idx = (byte_sel as usize) % raw.len();
        raw[idx] ^= 1 << bit;
        let _ = Message::decode(Bytes::from(raw));
    }

    // Arbitrary garbage decodes without panicking.
    #[test]
    fn prop_random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(Bytes::from(raw));
    }
}

#[test]
fn decode_reports_the_right_error_variants() {
    // Bad tag.
    assert_eq!(
        Message::decode(Bytes::from(vec![42u8, 0, 0])),
        Err(WireError::BadTag(42))
    );
    // Truncated mid-field.
    let enc = Message::KnnReply {
        source: 1,
        neighbors: vec![dits::Neighbor {
            dataset: 3,
            distance: 1.5,
        }],
    }
    .encode();
    assert_eq!(
        Message::decode(enc.slice(0..enc.len() - 1)),
        Err(WireError::Truncated("neighbor distance"))
    );
    // Overlong varint.
    let mut raw = vec![6u8]; // KnnQuery tag
    raw.extend(std::iter::repeat_n(0xFF, 11));
    assert_eq!(
        Message::decode(Bytes::from(raw)),
        Err(WireError::BadVarint("k"))
    );
    // Cell-delta overflow.
    let mut raw = vec![0u8]; // OverlapQuery tag
    raw.push(1); // k = 1
    raw.push(2); // two cells
                 // First delta: u64::MAX, second delta: 1 → overflow.
    raw.extend([0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
    raw.push(1);
    assert_eq!(
        Message::decode(Bytes::from(raw)),
        Err(WireError::CellOverflow)
    );
}
