//! Cross-layer maintenance integration tests: random interleaved
//! insert/update/delete batches flow through
//! `MultiSourceFramework::apply_updates` (wire messages → DITS-L mutation →
//! DITS-G summary refresh), and the mutated deployment must answer every
//! query *identically* to a framework rebuilt from scratch on the mutated
//! raw data — OJSP and CJSP answers, per-source kNN, and the
//! `candidate_sources` routing decisions alike.  A divergence in any of
//! them means a maintenance path corrupted an index or let DITS-G go stale.

use datagen::{generate_source, paper_sources, GeneratorConfig, SourceScale};
use dits::{
    decode_global, decode_local, encode_global, encode_local, nearest_datasets,
    nearest_datasets_unbounded, overlap_search,
};
use multisource::{
    DistributionStrategy, FrameworkConfig, MultiSourceFramework, SearchRequest, UpdateOp,
};
use proptest::prelude::*;
use spatial::{Point, SourceId, SpatialDataset};

fn build_data(seed: u64) -> Vec<(String, Vec<SpatialDataset>)> {
    let config = GeneratorConfig {
        scale: SourceScale::Custom(500),
        seed,
        max_points_per_dataset: Some(60),
    };
    paper_sources()
        .iter()
        .map(|p| (p.name.to_string(), generate_source(p, &config)))
        .collect()
}

fn framework(data: &[(String, Vec<SpatialDataset>)]) -> MultiSourceFramework {
    MultiSourceFramework::build(
        data,
        FrameworkConfig {
            resolution: 11,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    )
}

/// A small synthetic dataset whose placement is a deterministic function of
/// `salt`, scattered across the North-Atlantic quadrant the generated
/// sources also live in.
fn synth_dataset(id: u32, salt: u32) -> SpatialDataset {
    let base_lon = -90.0 + f64::from(salt % 40) * 0.7;
    let base_lat = 30.0 + f64::from(salt % 17) * 0.5;
    let points = (0..3 + salt % 5)
        .map(|j| {
            Point::new(
                base_lon + f64::from(j) * 0.01,
                base_lat + f64::from(j % 3) * 0.01,
            )
        })
        .collect();
    SpatialDataset::new(id, points)
}

/// Picks a mostly-live target id: a miss every fifth draw (and whenever the
/// source is empty) so update/delete rejection stays exercised.
fn pick_id(datasets: &[SpatialDataset], x: u8, seq: u32) -> u32 {
    if datasets.is_empty() || x.is_multiple_of(5) {
        200_000 + seq
    } else {
        datasets[usize::from(x) % datasets.len()].id
    }
}

/// Queries probing the mutated deployment: one surviving dataset per source
/// plus a fixed synthetic box, so empty and non-empty regions are covered.
fn probe_queries(data: &[(String, Vec<SpatialDataset>)]) -> Vec<SpatialDataset> {
    let mut queries: Vec<SpatialDataset> = data
        .iter()
        .filter_map(|(_, d)| d.first().cloned())
        .collect();
    queries.push(synth_dataset(999_999, 13));
    queries
}

/// Asserts that the incrementally maintained framework and the
/// scratch-rebuilt one are structurally sound and route identically.
fn assert_parity(
    maintained: &MultiSourceFramework,
    scratch: &MultiSourceFramework,
    queries: &[SpatialDataset],
) {
    // Structural invariants on every layer.
    maintained.center().global().check_invariants().unwrap();
    for s in maintained.sources() {
        s.index().check_invariants().unwrap();
    }

    // DITS-G holds byte-identical summaries…
    assert_eq!(
        maintained.center().global().summaries(),
        scratch.center().global().summaries()
    );

    // …and routes every probe identically (the pruning-decision parity the
    // maintenance protocol exists to preserve).
    for q in queries {
        if let Some(rect) = q.mbr() {
            for delta in [0.0, 2.5] {
                assert_eq!(
                    maintained.center().global().candidate_sources(&rect, delta),
                    scratch.center().global().candidate_sources(&rect, delta),
                );
            }
        }
    }
}

/// Full query-answer parity over a set of probe queries.
fn assert_answer_parity(
    maintained: &MultiSourceFramework,
    scratch: &MultiSourceFramework,
    queries: &[SpatialDataset],
) {
    let a = maintained.engine().run_ojsp(queries, 5).unwrap();
    let b = scratch.engine().run_ojsp(queries, 5).unwrap();
    assert_eq!(a.answers, b.answers, "OJSP answers diverged");

    let a = maintained.engine().run_cjsp(queries, 3).unwrap();
    let b = scratch.engine().run_cjsp(queries, 3).unwrap();
    assert_eq!(a.answers, b.answers, "CJSP answers diverged");

    // Multi-source kNN parity through the unified request API.
    let a = maintained
        .search(&SearchRequest::knn_batch(queries.to_vec()).k(4))
        .unwrap();
    let b = scratch
        .search(&SearchRequest::knn_batch(queries.to_vec()).k(4))
        .unwrap();
    assert_eq!(a.results, b.results, "multi-source kNN diverged");

    // Per-source kNN parity: the maintained local trees must rank datasets
    // exactly like trees built from scratch on the same content.
    for (ms, ss) in maintained.sources().iter().zip(scratch.sources()) {
        assert_eq!(ms.id, ss.id);
        for q in queries {
            let cells = ms.grid_query(q);
            if cells.is_empty() {
                continue;
            }
            let (mine, _) = nearest_datasets(ms.index(), &cells, 4);
            let (theirs, _) = nearest_datasets(ss.index(), &cells, 4);
            assert_eq!(mine, theirs, "kNN diverged on source {}", ms.id);
        }
    }
}

/// Verification-kernel parity on the *maintained* trees: the lazily-cached
/// verify state (per-node sorted coordinate decompositions) and the bounded
/// kNN sweep cutoff must be invisible after arbitrary interleaved
/// maintenance.  Every dataset distance computed through the cached sweep
/// must equal the fresh decompose-and-sort oracle, and bounded kNN must be
/// byte-identical (answers *and* stats) to the unbounded oracle.
fn assert_verify_state_parity(maintained: &MultiSourceFramework, queries: &[SpatialDataset]) {
    for s in maintained.sources() {
        for q in queries {
            let cells = s.grid_query(q);
            if cells.is_empty() {
                continue;
            }
            for d in s.index().dataset_nodes() {
                let cached = spatial::distance::dataset_distance(&cells, &d.cells);
                let fresh = spatial::distance::dataset_distance_uncached(&cells, &d.cells);
                assert_eq!(
                    cached, fresh,
                    "cached sweep diverged from fresh oracle on source {} dataset {}",
                    s.id, d.id
                );
            }
            let (fast, fast_stats) = nearest_datasets(s.index(), &cells, 4);
            let (oracle, oracle_stats) = nearest_datasets_unbounded(s.index(), &cells, 4);
            assert_eq!(fast, oracle, "bounded kNN diverged on source {}", s.id);
            assert_eq!(
                fast_stats, oracle_stats,
                "kNN stats diverged on source {}",
                s.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn prop_maintenance_matches_scratch_rebuild(
        seed in 0u64..4,
        ops in proptest::collection::vec((0u8..5, 0u8..3, any::<u8>()), 1..25),
    ) {
        let mut data = build_data(seed);
        let mut fw = framework(&data);
        let mut seq = 0u32;
        let mut expected_applied = 0usize;
        let mut expected_rejected = 0usize;
        let mut total = dits::MaintenanceStats::new();

        for (src_sel, kind, x) in ops {
            let src = usize::from(src_sel);
            let source_id = src as SourceId;
            let datasets = &mut data[src].1;
            seq += 1;
            let op = match kind {
                0 => {
                    // Mostly fresh inserts; every fourth draw reuses a live
                    // id so duplicate rejection is exercised.
                    let id = if x.is_multiple_of(4) && !datasets.is_empty() {
                        datasets[usize::from(x) % datasets.len()].id
                    } else {
                        100_000 + seq
                    };
                    UpdateOp::Insert(synth_dataset(id, seq))
                }
                1 => UpdateOp::Update(synth_dataset(
                    pick_id(datasets, x, seq),
                    seq.wrapping_mul(7) % 600,
                )),
                _ => UpdateOp::Delete(pick_id(datasets, x, seq)),
            };

            // Mirror the op on the shadow model with the documented
            // semantics: structural errors are impossible here (synthetic
            // datasets are never empty), individual misses are skipped.
            match &op {
                UpdateOp::Insert(d) => {
                    if datasets.iter().any(|e| e.id == d.id) {
                        expected_rejected += 1;
                    } else {
                        datasets.push(d.clone());
                        expected_applied += 1;
                    }
                }
                UpdateOp::Update(d) => {
                    if let Some(e) = datasets.iter_mut().find(|e| e.id == d.id) {
                        *e = d.clone();
                        expected_applied += 1;
                    } else {
                        expected_rejected += 1;
                    }
                }
                UpdateOp::Delete(id) => {
                    let before = datasets.len();
                    datasets.retain(|e| e.id != *id);
                    if datasets.len() < before {
                        expected_applied += 1;
                    } else {
                        expected_rejected += 1;
                    }
                }
            }

            let outcome = fw.apply_updates(source_id, std::slice::from_ref(&op)).unwrap();
            total.merge(&outcome.stats);
        }

        prop_assert_eq!(total.applied(), expected_applied);
        prop_assert_eq!(total.rejected, expected_rejected);

        let scratch = framework(&data);
        let queries = probe_queries(&data);
        assert_parity(&fw, &scratch, &queries);
        assert_answer_parity(&fw, &scratch, &queries);
        assert_verify_state_parity(&fw, &queries);
    }
}

#[test]
fn sustained_churn_triggers_global_rebuild_without_losing_parity() {
    let mut data = build_data(7);
    let mut fw = framework(&data);
    let mut rebuilds = 0usize;
    // Every batch refreshes one summary in place; with five sources the
    // degradation heuristic must fire well within twenty batches.
    for i in 0..20u32 {
        let src = (i % 5) as usize;
        let d = synth_dataset(300_000 + i, i * 3 + 1);
        data[src].1.push(d.clone());
        let outcome = fw
            .apply_updates(src as SourceId, &[UpdateOp::Insert(d)])
            .unwrap();
        rebuilds += outcome.stats.global_rebuilds;
    }
    assert!(rebuilds >= 1, "churn heuristic never triggered a rebuild");
    let scratch = framework(&data);
    let queries = probe_queries(&data);
    assert_parity(&fw, &scratch, &queries);
    assert_answer_parity(&fw, &scratch, &queries);
    assert_verify_state_parity(&fw, &queries);
}

#[test]
fn draining_a_source_drops_it_from_global_routing_until_data_returns() {
    let mut data = build_data(5);
    let mut fw = framework(&data);
    let drained: SourceId = 2;

    // Delete every dataset of one source through the pipeline.
    let ids: Vec<u32> = data[usize::from(drained)].1.iter().map(|d| d.id).collect();
    let ops: Vec<UpdateOp> = ids.iter().map(|id| UpdateOp::Delete(*id)).collect();
    let outcome = fw.apply_updates(drained, &ops).unwrap();
    assert_eq!(outcome.stats.deletes, ids.len());
    data[usize::from(drained)].1.clear();

    // The emptied source leaves DITS-G entirely: no degenerate placeholder
    // summary survives to attract origin-adjacent queries, and routing
    // matches a framework built from scratch on the drained data.
    assert_eq!(fw.center().global().source_count(), 4);
    assert!(fw
        .center()
        .global()
        .summaries()
        .iter()
        .all(|s| s.source != drained));
    let scratch = framework(&data);
    let queries = probe_queries(&data);
    assert_parity(&fw, &scratch, &queries);
    assert_answer_parity(&fw, &scratch, &queries);

    // Give the source data again: it is readmitted and routable.
    let refill = synth_dataset(700_001, 9);
    fw.apply_updates(drained, &[UpdateOp::Insert(refill.clone())])
        .unwrap();
    data[usize::from(drained)].1.push(refill.clone());
    assert_eq!(fw.center().global().source_count(), 5);
    let response = fw
        .search(&SearchRequest::ojsp(refill.clone()).k(1))
        .unwrap();
    let answer = &response.overlap().unwrap()[0];
    assert_eq!(answer.results[0].0, drained);
    assert_eq!(answer.results[0].1.dataset, 700_001);
    let scratch = framework(&data);
    let queries = probe_queries(&data);
    assert_parity(&fw, &scratch, &queries);
}

#[test]
fn maintained_indexes_survive_a_persistence_round_trip() {
    let mut data = build_data(3);
    let mut fw = framework(&data);
    // A mixed batch per source: grow, move, shrink.
    for src in 0..5u16 {
        let fresh = synth_dataset(400_000 + u32::from(src), u32::from(src) * 11 + 2);
        let victim = data[usize::from(src)].1[0].id;
        let moved_target = data[usize::from(src)].1[1].id;
        let moved = synth_dataset(moved_target, u32::from(src) * 17 + 5);
        let ops = vec![
            UpdateOp::Insert(fresh.clone()),
            UpdateOp::Update(moved.clone()),
            UpdateOp::Delete(victim),
        ];
        let outcome = fw.apply_updates(src, &ops).unwrap();
        assert_eq!(outcome.stats.applied(), 3);
        let shadow = &mut data[usize::from(src)].1;
        shadow.retain(|e| e.id != victim);
        if let Some(e) = shadow.iter_mut().find(|e| e.id == moved_target) {
            *e = moved;
        }
        shadow.push(fresh);
    }

    // Every mutated local index round-trips losslessly and keeps answering
    // identically.
    let queries = probe_queries(&data);
    for s in fw.sources() {
        let decoded = decode_local(&encode_local(s.index())).unwrap();
        assert_eq!(decoded.dataset_count(), s.dataset_count());
        for q in &queries {
            let cells = s.grid_query(q);
            assert_eq!(
                overlap_search(&decoded, &cells, 5).0,
                overlap_search(s.index(), &cells, 5).0,
            );
        }
    }

    // The center's mutated DITS-G round-trips through the new global image:
    // a restarted center recovers every refreshed summary (and the churn
    // state) without re-polling the sources.
    let global = fw.center().global();
    let decoded = decode_global(&encode_global(global)).unwrap();
    assert_eq!(decoded.summaries(), global.summaries());
    assert_eq!(decoded.churn(), global.churn());
    for q in &queries {
        if let Some(rect) = q.mbr() {
            assert_eq!(
                decoded.candidate_sources(&rect, 1.0),
                global.candidate_sources(&rect, 1.0)
            );
        }
    }
}
