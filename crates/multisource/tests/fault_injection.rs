//! Fault injection: a fleet member that dies or stalls mid-batch must
//! *degrade* the batch, never park or poison it.
//!
//! Each scenario runs twice — once in-process with the fault injected at
//! the transport seam, once over the pooled TCP transport against real
//! sockets (a drained `SourceServer`, or a black-hole listener that accepts
//! and never replies) — and asserts the exact same degradation contract on
//! both deployments:
//!
//! * fail-fast (the default) aborts the batch with a typed
//!   `SearchError::Transport`;
//! * `skip_failed_sources` completes the batch from the surviving sources
//!   with identical answers, identical `CommStats` (completed exchanges
//!   only) and identical `SearchStats`, reporting the failed source as a
//!   typed [`SourceFailure`](multisource::SourceFailure).

use std::net::TcpListener;
use std::time::Duration;

use datagen::{generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale};
use multisource::{
    CallOptions, DataCenter, DistributionStrategy, EngineConfig, FrameworkConfig,
    InProcessTransport, Message, MultiSourceFramework, QueryEngine, SearchError, SearchRequest,
    SourceServer, SourceTransport, TcpTransport, TransportError, TransportReply,
};
use net::{PoolConfig, PooledTcpTransport};
use spatial::{SourceId, SpatialDataset};

fn build_data(seed: u64) -> Vec<(String, Vec<SpatialDataset>)> {
    let config = GeneratorConfig {
        scale: SourceScale::Custom(400),
        seed,
        max_points_per_dataset: Some(60),
    };
    paper_sources()
        .iter()
        .take(3)
        .map(|p| (p.name.to_string(), generate_source(p, &config)))
        .collect()
}

fn framework(data: &[(String, Vec<SpatialDataset>)]) -> MultiSourceFramework {
    MultiSourceFramework::build(
        data,
        FrameworkConfig {
            resolution: 11,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    )
}

fn probe_queries(data: &[(String, Vec<SpatialDataset>)]) -> Vec<SpatialDataset> {
    let pool: Vec<SpatialDataset> = data.iter().flat_map(|(_, d)| d.iter().cloned()).collect();
    select_queries(&pool, 6, 3)
}

fn engine_config(fw: &MultiSourceFramework) -> EngineConfig {
    EngineConfig {
        workers: fw.config().workers,
        strategy: fw.config().strategy,
        delta_cells: fw.config().delta_cells,
        ..EngineConfig::default()
    }
}

/// In-process fleet with one injected-dead member: every call to `dead`
/// fails with a clone of `error`; everything else takes the plain
/// in-process path.  This is the oracle the real-socket deployments are
/// held to.
#[derive(Debug)]
struct InjectedFault<'a> {
    inner: InProcessTransport<'a>,
    dead: SourceId,
    error: TransportError,
}

impl SourceTransport for InjectedFault<'_> {
    fn source_ids(&self) -> Vec<SourceId> {
        self.inner.source_ids()
    }

    fn call_with(
        &self,
        source: SourceId,
        request: &Message,
        opts: CallOptions,
    ) -> Result<TransportReply, TransportError> {
        if source == self.dead {
            return Err(self.error.clone());
        }
        self.inner.call_with(source, request, opts)
    }
}

/// The three search kinds, all broadcast so the faulty source is
/// demonstrably contacted by every batch.
fn broadcast_requests(queries: &[SpatialDataset]) -> [SearchRequest; 3] {
    [
        SearchRequest::ojsp_batch(queries.to_vec())
            .k(5)
            .strategy(DistributionStrategy::Broadcast),
        SearchRequest::cjsp_batch(queries.to_vec())
            .k(3)
            .strategy(DistributionStrategy::Broadcast),
        SearchRequest::knn_batch(queries.to_vec())
            .k(4)
            .strategy(DistributionStrategy::Broadcast),
    ]
}

/// Asserts the full degradation contract for one request on one deployment
/// pair: fail-fast aborts both; skip-and-report completes both with
/// identical answers and accounting and exactly the dead source reported.
fn assert_degradation_parity(
    local_engine: &QueryEngine,
    remote_engine: &QueryEngine,
    request: &SearchRequest,
    dead: SourceId,
) {
    // Fail-fast default: the dead source aborts the whole batch with a
    // typed transport error on both deployments.
    assert!(
        matches!(local_engine.run(request), Err(SearchError::Transport(_))),
        "in-process fail-fast must surface the injected fault"
    );
    assert!(
        matches!(remote_engine.run(request), Err(SearchError::Transport(_))),
        "pooled fail-fast must surface the socket fault"
    );

    // Degraded mode: both complete from the survivors.
    let degraded = request.clone().skip_failed_sources(true);
    let local = local_engine
        .run(&degraded)
        .expect("in-process degraded run");
    let remote = remote_engine.run(&degraded).expect("pooled degraded run");

    assert!(!local.is_complete(), "the injected fault must be reported");
    assert_eq!(local.failures.len(), 1, "exactly one source failed");
    assert_eq!(local.failures[0].source, dead);
    assert_eq!(remote.failures.len(), 1, "exactly one source failed");
    assert_eq!(remote.failures[0].source, dead);
    assert!(
        matches!(remote.failures[0].error, SearchError::Transport(_)),
        "the reported failure must be transport-typed, got {:?}",
        remote.failures[0].error
    );

    // Answers and completed-shard accounting are deployment-independent:
    // the failed shards contribute nothing, the completed ones everything,
    // byte for byte.
    assert_eq!(local.results, remote.results, "degraded answers diverged");
    assert_eq!(
        local.comm, remote.comm,
        "completed-shard byte accounting diverged"
    );
    assert_eq!(
        local.search, remote.search,
        "completed-shard search statistics diverged"
    );
}

/// Scenario 1 — a fleet member is killed between bootstrap and the batch:
/// its connections are gone and new ones are refused.  The pooled transport
/// types that as I/O failure (retries spent), the in-process oracle injects
/// the same class of error, and both deployments degrade identically.
#[test]
fn killed_source_degrades_identically_in_process_and_pooled() {
    let data = build_data(91);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let dead: SourceId = 1;

    // Real-socket deployment: three live servers, bootstrapped while
    // healthy, then one drained away before the batches run.
    let mut servers: Vec<SourceServer> = fw
        .sources()
        .iter()
        .map(|s| SourceServer::spawn("127.0.0.1:0", s.clone()).expect("bind loopback"))
        .collect();
    let endpoints: Vec<(SourceId, String)> = servers.iter().map(|s| s.endpoint()).collect();
    let pooled = PooledTcpTransport::with_config(
        endpoints,
        PoolConfig {
            connect_timeout: Duration::from_millis(500),
            retries: 1,
            retry_backoff: Duration::from_millis(5),
            ..PoolConfig::default()
        },
    )
    .expect("pooled transport");
    let center =
        DataCenter::from_transport(&pooled, fw.config().leaf_capacity).expect("summary poll");
    servers.remove(dead as usize).shutdown();
    let remote_engine = QueryEngine::new(&center, &pooled, engine_config(&fw));

    // In-process oracle with the same member dead at the transport seam.
    let faulty = InjectedFault {
        inner: InProcessTransport::new(fw.sources()),
        dead,
        error: TransportError::Io("connection refused (injected)".to_string()),
    };
    let local_center = DataCenter::from_global(fw.center().global().clone());
    let local_engine = QueryEngine::new(&local_center, &faulty, engine_config(&fw));

    for request in broadcast_requests(&queries) {
        assert_degradation_parity(&local_engine, &remote_engine, &request, dead);
    }
}

/// Accepts connections and reads forever without ever writing a reply — a
/// stalled source, as seen from the wire.
fn spawn_black_hole() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut sink = [0u8; 4096];
                while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
                    if n == 0 {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// Scenario 2 — a fleet member stalls mid-batch: it accepts the shard and
/// never answers.  The pooled transport trips its per-call deadline and
/// types it [`TransportError::Timeout`] (no retry — the request may still
/// be executing remotely); the batch completes from the survivors,
/// identically to the in-process oracle injecting the same timeout.
#[test]
fn stalled_source_times_out_and_degrades_identically() {
    let data = build_data(29);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let stalled: SourceId = 2;

    // Two live servers and one black hole in the stalled member's place.
    let mut endpoints: Vec<(SourceId, String)> = Vec::new();
    let mut servers: Vec<SourceServer> = Vec::new();
    for s in fw.sources().iter().take(stalled as usize) {
        let server = SourceServer::spawn("127.0.0.1:0", s.clone()).expect("bind loopback");
        endpoints.push(server.endpoint());
        servers.push(server);
    }
    endpoints.push((stalled, spawn_black_hole()));

    let pooled = PooledTcpTransport::with_config(
        endpoints,
        PoolConfig {
            request_timeout: Duration::from_millis(300),
            connect_timeout: Duration::from_millis(500),
            retries: 0,
            ..PoolConfig::default()
        },
    )
    .expect("pooled transport");
    // The stalled source cannot answer a summary poll, so both deployments
    // route from the locally built global image.
    let center = DataCenter::from_global(fw.center().global().clone());
    let remote_engine = QueryEngine::new(&center, &pooled, engine_config(&fw));

    let faulty = InjectedFault {
        inner: InProcessTransport::new(fw.sources()),
        dead: stalled,
        error: TransportError::Timeout {
            source: stalled,
            waited: Duration::from_millis(300),
        },
    };
    let local_engine = QueryEngine::new(&center, &faulty, engine_config(&fw));

    for request in broadcast_requests(&queries) {
        assert_degradation_parity(&local_engine, &remote_engine, &request, stalled);
    }

    // The wire-level failure is specifically a deadline trip, and the pool
    // counted it.
    let degraded = SearchRequest::ojsp_batch(queries.clone())
        .k(5)
        .strategy(DistributionStrategy::Broadcast)
        .skip_failed_sources(true);
    let response = remote_engine.run(&degraded).expect("degraded run");
    assert!(
        matches!(
            response.failures[0].error,
            SearchError::Transport(TransportError::Timeout { source, .. }) if source == stalled
        ),
        "stall must be typed as a timeout, got {:?}",
        response.failures[0].error
    );
    assert!(
        pooled.metrics().timeouts.get() >= 1,
        "the pool must count deadline trips"
    );
}

/// The degradation contract also holds on the plain (per-call) TCP
/// transport: killing a server mid-fleet degrades a skip-enabled batch the
/// same way, so the behaviour is a property of the engine, not of any one
/// transport implementation.
#[test]
fn killed_source_degrades_on_the_per_call_tcp_transport_too() {
    let data = build_data(91);
    let fw = framework(&data);
    let queries = probe_queries(&data);
    let dead: SourceId = 0;

    let mut servers: Vec<SourceServer> = fw
        .sources()
        .iter()
        .map(|s| SourceServer::spawn("127.0.0.1:0", s.clone()).expect("bind loopback"))
        .collect();
    let tcp = TcpTransport::new(servers.iter().map(|s| s.endpoint()));
    let center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity).expect("summary poll");
    servers.remove(dead as usize).shutdown();
    let engine = QueryEngine::new(&center, &tcp, engine_config(&fw));

    let faulty = InjectedFault {
        inner: InProcessTransport::new(fw.sources()),
        dead,
        error: TransportError::Io("connection refused (injected)".to_string()),
    };
    let local_center = DataCenter::from_global(fw.center().global().clone());
    let local_engine = QueryEngine::new(&local_center, &faulty, engine_config(&fw));

    for request in broadcast_requests(&queries) {
        assert_degradation_parity(&local_engine, &engine, &request, dead);
    }
}
