//! Grandfathered-findings baseline: a committed `lint-baseline.txt` whose
//! per-(rule, file) counts may only shrink.
//!
//! Format: one `rule<TAB or spaces>path<spaces>count` triple per line; `#`
//! comments and blank lines are ignored.  The ratchet is count-based rather
//! than line-based so unrelated edits that shift line numbers do not churn
//! the file — but any *new* finding in a grandfathered file, or any fix that
//! is not reflected by shrinking the committed count, fails the run.

use std::collections::BTreeMap;

use crate::Finding;

/// `(rule, path) -> grandfathered count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses baseline text; returns `Err` with a message on malformed lines.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule path count`, got {line:?}",
                lineno + 1
            ));
        };
        let count: usize = count.parse().map_err(|_| {
            format!(
                "baseline line {}: count {count:?} is not a number",
                lineno + 1
            )
        })?;
        if out
            .insert((rule.to_string(), path.to_string()), count)
            .is_some()
        {
            return Err(format!(
                "baseline line {}: duplicate entry for {rule} {path}",
                lineno + 1
            ));
        }
    }
    Ok(out)
}

/// Renders findings as baseline text (used by `--write-baseline`).
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# repo-lint grandfathered findings: `rule path count` triples.\n\
         # Counts may only shrink; regenerate with `repo-lint --write-baseline`.\n",
    );
    for ((rule, path), count) in &counts {
        out.push_str(&format!("{rule} {path} {count}\n"));
    }
    out
}

/// Applies the ratchet.  Returns the findings that must be reported (groups
/// exceeding their grandfathered count) plus stale-baseline errors (groups
/// that shrank or vanished without the committed file being updated).
pub fn apply(findings: Vec<Finding>, baseline: &Baseline) -> (Vec<Finding>, Vec<String>) {
    let mut grouped: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        grouped
            .entry((f.rule.to_string(), f.path.clone()))
            .or_default()
            .push(f);
    }
    let mut reported = Vec::new();
    let mut stale = Vec::new();
    for (key, group) in &grouped {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        match group.len().cmp(&allowed) {
            std::cmp::Ordering::Greater => reported.extend(group.iter().cloned()),
            std::cmp::Ordering::Less => stale.push(format!(
                "stale baseline: {} {} grandfathers {} findings but only {} remain — \
                 shrink lint-baseline.txt",
                key.0,
                key.1,
                allowed,
                group.len()
            )),
            std::cmp::Ordering::Equal => {}
        }
    }
    for ((rule, path), allowed) in baseline {
        if !grouped.contains_key(&(rule.clone(), path.clone())) {
            stale.push(format!(
                "stale baseline: {rule} {path} grandfathers {allowed} findings but none remain — \
                 shrink lint-baseline.txt"
            ));
        }
    }
    (reported, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("panic-freedom a.rs 3\n# c\n\n").is_ok());
        assert!(parse("panic-freedom a.rs").is_err());
        assert!(parse("panic-freedom a.rs x").is_err());
        assert!(parse("r p 1\nr p 2").is_err());
    }

    #[test]
    fn ratchet_reports_growth_and_flags_shrink() {
        let base = parse("panic-freedom a.rs 2\nfloat-ordering b.rs 1\n").unwrap();
        // Growth: 3 > 2 -> all three reported.
        let (rep, stale) = apply(
            vec![
                f("panic-freedom", "a.rs", 1),
                f("panic-freedom", "a.rs", 2),
                f("panic-freedom", "a.rs", 3),
                f("float-ordering", "b.rs", 9),
            ],
            &base,
        );
        assert_eq!(rep.len(), 3);
        assert!(stale.is_empty());
        // Shrink without updating the file: stale error.
        let (rep, stale) = apply(vec![f("panic-freedom", "a.rs", 1)], &base);
        assert!(rep.is_empty());
        assert_eq!(stale.len(), 2); // a.rs shrank, b.rs vanished
    }

    #[test]
    fn render_then_parse_round_trips() {
        let fs = vec![f("panic-freedom", "a.rs", 1), f("panic-freedom", "a.rs", 5)];
        let text = render(&fs);
        let base = parse(&text).unwrap();
        assert_eq!(
            base.get(&("panic-freedom".to_string(), "a.rs".to_string())),
            Some(&2)
        );
    }
}
