//! repo-lint: offline static analysis for the workspace's prose invariants.
//!
//! The five rules encode invariants the test suite can only sample:
//!
//! | id | invariant |
//! |----|-----------|
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/`unreachable!`/unchecked indexing on query, wire, or maintenance paths |
//! | `wire-tags` | every `Message` variant's `TAG_*` constant appears in `encode`, `decode`, the transport fuzz list, and the README protocol table; inner `UpdateOp`/`MetricValue` tags are named constants wired through both codec directions |
//! | `cache-invalidation` | every `&mut self` `CellSet` method touching `cells` calls `invalidate_caches()` |
//! | `float-ordering` | distance ordering uses `total_cmp`, never `partial_cmp` or `f64::max`/`min` |
//! | `metrics-registration` | metric names are registered exactly once, in the pre-registration block |
//!
//! Plus `allow-directive`, which polices the escape hatch itself: every
//! `// lint:allow(<rule>): <reason>` must be well-formed, carry a non-empty
//! reason, and actually suppress something.

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lexer::Lexed;
use rules::{RuleFinding, WireInputs};

/// `(id, description)` for every rule, in severity-agnostic display order.
pub const RULES: &[(&str, &str)] = &[
    (
        "panic-freedom",
        "no unwrap/expect/panic!/unreachable! or unchecked indexing on query/wire/maintenance paths",
    ),
    (
        "wire-tags",
        "every Message variant's TAG_* constant appears in encode, decode, the fuzz list, and the README table; inner UpdateOp/MetricValue tags are named and wired through both codec directions",
    ),
    (
        "cache-invalidation",
        "every &mut self CellSet method touching `cells` calls invalidate_caches()",
    ),
    (
        "float-ordering",
        "distance ordering uses total_cmp, never partial_cmp or f64::max/min",
    ),
    (
        "metrics-registration",
        "metric names are registered exactly once, in the pre-registration block",
    ),
    (
        "allow-directive",
        "lint:allow directives are well-formed, justified, and actually suppress a finding",
    ),
];

/// One reportable diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Files on the panic-free query/wire/maintenance paths (L1 scope).
const L1_PATHS: &[&str] = &[
    "crates/multisource/src/message.rs",
    "crates/multisource/src/transport.rs",
    "crates/multisource/src/engine.rs",
    "crates/multisource/src/source.rs",
    "crates/multisource/src/api.rs",
    "crates/multisource/src/framework.rs",
    "crates/dits/src/overlap.rs",
    "crates/dits/src/coverage.rs",
    "crates/dits/src/knn.rs",
    "crates/dits/src/frontier.rs",
    "crates/dits/src/bounds.rs",
    "crates/dits/src/inverted.rs",
    "crates/dits/src/persist.rs",
    "crates/spatial/src/cellset.rs",
    "crates/spatial/src/distance.rs",
];

/// Files where float comparisons order *distances* (L4 scope).
const L4_PATHS: &[&str] = &[
    "crates/spatial/src/distance.rs",
    "crates/spatial/src/cellset.rs",
    "crates/dits/src/knn.rs",
    "crates/dits/src/frontier.rs",
    "crates/dits/src/bounds.rs",
    "crates/multisource/src/engine.rs",
    "crates/multisource/src/center.rs",
];

/// Files that may hold `obs` instrument handles (L5 scope).
const L5_PATHS: &[&str] = &[
    "crates/multisource/src/source.rs",
    "crates/multisource/src/engine.rs",
    "crates/multisource/src/center.rs",
    "crates/multisource/src/api.rs",
    "crates/multisource/src/framework.rs",
    "crates/multisource/src/transport.rs",
    "crates/obs/src/lib.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/export.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/slowlog.rs",
];

const CELLSET_PATH: &str = "crates/spatial/src/cellset.rs";
const MESSAGE_PATH: &str = "crates/multisource/src/message.rs";
const TRANSPORT_TESTS_PATH: &str = "crates/multisource/tests/transport.rs";
const OBS_METRICS_PATH: &str = "crates/obs/src/metrics.rs";
const README_PATH: &str = "README.md";

/// The per-file rules that apply to `rel` (wire-tags is handled separately).
fn applicable_rules(rel: &str) -> Vec<&'static str> {
    let mut v = Vec::new();
    if L1_PATHS.contains(&rel) {
        v.push("panic-freedom");
    }
    if L4_PATHS.contains(&rel) {
        v.push("float-ordering");
    }
    if rel == CELLSET_PATH {
        v.push("cache-invalidation");
    }
    if L5_PATHS.contains(&rel) {
        v.push("metrics-registration");
    }
    v
}

/// Runs all (or one) rule over the workspace at `root`.
///
/// With `only == Some(rule)`, unused-`lint:allow` accounting is skipped:
/// whether a directive is used depends on every rule having run.
pub fn analyze(root: &Path, only: Option<&str>) -> Result<Vec<Finding>, String> {
    if let Some(r) = only {
        if !RULES.iter().any(|(id, _)| *id == r) {
            return Err(format!(
                "unknown rule {r:?}; see --list-rules for the rule set"
            ));
        }
    }
    let enabled = |rule: &str| only.is_none() || only == Some(rule);

    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    files.sort();

    // Cross-file inputs for the wire-tags rule.
    let transport_lexed: Option<Lexed> = if enabled("wire-tags") {
        read_rel(root, TRANSPORT_TESTS_PATH)?.map(|s| lexer::lex(&s))
    } else {
        None
    };
    let metrics_lexed: Option<Lexed> = if enabled("wire-tags") {
        read_rel(root, OBS_METRICS_PATH)?.map(|s| lexer::lex(&s))
    } else {
        None
    };
    let readme: Option<String> = if enabled("wire-tags") {
        read_rel(root, README_PATH)?
    } else {
        None
    };

    let mut findings = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let rules_here = applicable_rules(&rel);
        let is_message = rel == MESSAGE_PATH;
        if rules_here.iter().all(|r| !enabled(r)) && !(is_message && enabled("wire-tags")) {
            continue;
        }
        let src = fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        let lexed = lexer::lex(&src);

        let mut raw: Vec<(&'static str, RuleFinding)> = Vec::new();
        for rule in &rules_here {
            if !enabled(rule) {
                continue;
            }
            let found = match *rule {
                "panic-freedom" => rules::panic_freedom(&lexed),
                "float-ordering" => rules::float_ordering(&lexed),
                "cache-invalidation" => rules::cache_invalidation(&lexed),
                "metrics-registration" => rules::metrics_registration(&lexed),
                _ => Vec::new(),
            };
            raw.extend(found.into_iter().map(|f| (*rule, f)));
        }
        if is_message && enabled("wire-tags") {
            let inputs = WireInputs {
                message: &lexed,
                transport: transport_lexed.as_ref(),
                metrics: metrics_lexed.as_ref(),
                readme: readme.as_deref(),
            };
            raw.extend(
                rules::wire_tags(&inputs)
                    .into_iter()
                    .map(|f| ("wire-tags", f)),
            );
        }

        findings.extend(filter_allows(&lexed, raw, &rel, only.is_none()));
        if enabled("allow-directive") {
            for m in &lexed.malformed_allows {
                findings.push(Finding {
                    rule: "allow-directive",
                    path: rel.clone(),
                    line: m.line,
                    message: m.detail.clone(),
                });
            }
        }
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Applies `lint:allow` suppression to one file's raw findings.  A directive
/// on line `L` covers findings on `L` (trailing comment) and `L + 1` (the
/// line below it).  When `report_unused` is set, directives that suppressed
/// nothing — or that name an unknown rule — become `allow-directive` findings.
pub fn filter_allows(
    lexed: &Lexed,
    raw: Vec<(&'static str, RuleFinding)>,
    rel: &str,
    report_unused: bool,
) -> Vec<Finding> {
    let mut used = vec![false; lexed.allows.len()];
    let mut out = Vec::new();
    for (rule, rf) in raw {
        let hit = lexed
            .allows
            .iter()
            .position(|a| a.rule == rule && (a.line == rf.line || a.line + 1 == rf.line));
        match hit {
            Some(i) => used[i] = true,
            None => out.push(Finding {
                rule,
                path: rel.to_string(),
                line: rf.line,
                message: rf.message,
            }),
        }
    }
    if report_unused {
        for (i, a) in lexed.allows.iter().enumerate() {
            if used[i] {
                continue;
            }
            let message = if RULES.iter().any(|(id, _)| *id == a.rule) {
                format!("lint:allow({}) suppresses nothing — remove it", a.rule)
            } else {
                format!("lint:allow names unknown rule {:?}", a.rule)
            };
            out.push(Finding {
                rule: "allow-directive",
                path: rel.to_string(),
                line: a.line,
                message,
            });
        }
    }
    out
}

fn read_rel(root: &Path, rel: &str) -> Result<Option<String>, String> {
    let path = root.join(rel);
    if !path.is_file() {
        return Ok(None);
    }
    fs::read_to_string(&path)
        .map(Some)
        .map_err(|e| format!("reading {rel}: {e}"))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files, skipping vendored code, build output,
/// lint fixtures, and VCS metadata.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace root: `--root` if given, else walk up from the current directory
/// to the first dir holding both `Cargo.toml` and `crates/`, else the
/// compile-time manifest location (stable inside this repo).
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    if let Ok(mut cur) = std::env::current_dir() {
        loop {
            if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
                return cur;
            }
            if !cur.pop() {
                break;
            }
        }
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_scoping_targets_the_right_files() {
        let r = applicable_rules("crates/spatial/src/cellset.rs");
        assert!(r.contains(&"panic-freedom"));
        assert!(r.contains(&"float-ordering"));
        assert!(r.contains(&"cache-invalidation"));
        assert!(applicable_rules("crates/bench/src/lib.rs").is_empty());
        assert!(applicable_rules("crates/spatial/src/grid.rs").is_empty());
    }

    #[test]
    fn unknown_rule_filter_is_rejected() {
        assert!(analyze(Path::new("/nonexistent"), Some("no-such-rule")).is_err());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "\
// lint:allow(panic-freedom): covered below
fn a(x: Option<u8>) -> u8 { x.unwrap() }
fn b(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(panic-freedom): trailing

fn c(x: Option<u8>) -> u8 { x.unwrap() }
";
        let lexed = lexer::lex(src);
        let raw: Vec<(&'static str, RuleFinding)> = rules::panic_freedom(&lexed)
            .into_iter()
            .map(|f| ("panic-freedom", f))
            .collect();
        let out = filter_allows(&lexed, raw, "f.rs", true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint:allow(panic-freedom): nothing here to allow\nfn f() {}\n";
        let lexed = lexer::lex(src);
        let out = filter_allows(&lexed, Vec::new(), "f.rs", true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "allow-directive");
    }
}
