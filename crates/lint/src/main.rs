//! repo-lint CLI: rustc-style diagnostics, non-zero exit on violations.
//!
//! ```text
//! repo-lint [--root <dir>] [--rule <id>] [--baseline <file> | --no-baseline]
//!           [--write-baseline <file>] [--list-rules]
//! ```
//!
//! With no flags it analyzes the enclosing workspace and, when a committed
//! `lint-baseline.txt` exists at the root, applies the shrink-only ratchet.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{analyze, baseline, find_root, RULES};

struct Args {
    root: Option<String>,
    rule: Option<String>,
    baseline: Option<String>,
    no_baseline: bool,
    write_baseline: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        rule: None,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--root" => args.root = Some(take("--root")?),
            "--rule" => args.rule = Some(take("--rule")?),
            "--baseline" => args.baseline = Some(take("--baseline")?),
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = Some(take("--write-baseline")?),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "repo-lint: workspace static analysis\n\n\
                     USAGE: repo-lint [--root <dir>] [--rule <id>] [--baseline <file>]\n\
                     \x20      [--no-baseline] [--write-baseline <file>] [--list-rules]\n\n\
                     Exits 0 when clean, 1 on findings, 2 on usage/IO errors.\n\
                     Suppress a single finding with `// lint:allow(<rule>): <reason>`\n\
                     on the offending line or the line above it."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, desc) in RULES {
            println!("{id:<22} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = find_root(args.root.as_deref());
    let findings = match analyze(&root, args.rule.as_deref()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("repo-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("repo-lint: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "repo-lint: wrote {} grandfathered finding(s) to {path}",
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    // Baseline: explicit flag wins; otherwise the committed file, if present.
    let baseline_path: Option<PathBuf> = if args.no_baseline {
        None
    } else if let Some(p) = &args.baseline {
        Some(PathBuf::from(p))
    } else {
        let default = root.join("lint-baseline.txt");
        default.is_file().then_some(default)
    };

    let (reported, stale) = match &baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("repo-lint: reading {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            let base = match baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("repo-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            baseline::apply(findings, &base)
        }
        None => (findings, Vec::new()),
    };

    for f in &reported {
        println!("{f}");
    }
    for s in &stale {
        println!("{s}");
    }
    if reported.is_empty() && stale.is_empty() {
        eprintln!("repo-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "repo-lint: {} finding(s), {} stale baseline entr(ies)",
            reported.len(),
            stale.len()
        );
        ExitCode::FAILURE
    }
}
