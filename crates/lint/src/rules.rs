//! The five workspace rules, each a pure function over lexed source.
//!
//! Rule functions return findings as `(line, message)` pairs; the caller
//! ([`crate::analyze`]) attaches the rule id and file path, applies
//! `lint:allow` suppression, and handles path scoping.  Keeping the rules
//! pure over [`Lexed`] is what lets the fixture tests feed them known-bad
//! snippets directly.

use crate::lexer::{matching_brace, Lexed, Tok, TokKind};

/// One raw finding before path/rule attribution.
#[derive(Debug, Clone)]
pub struct RuleFinding {
    pub line: u32,
    pub message: String,
}

fn finding(line: u32, message: impl Into<String>) -> RuleFinding {
    RuleFinding {
        line,
        message: message.into(),
    }
}

/// Rust keywords that can legally precede `[` without the bracket being an
/// index expression (array types, slice patterns, `&mut [T]`, ...).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// L1 — panic-freedom: no `unwrap`/`expect`/`panic!`/`unreachable!`/
/// `todo!`/`unimplemented!` or unchecked slice indexing in shipping code.
pub fn panic_freedom(lexed: &Lexed) -> Vec<RuleFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.test_mask[i] {
            continue;
        }
        if t.kind == TokKind::Ident {
            let prev_dot = i > 0 && toks[i - 1].is_punct('.');
            let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct('!');
            let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct('(');
            match t.text.as_str() {
                "unwrap" | "expect" if prev_dot && next_paren => out.push(finding(
                    t.line,
                    format!(
                        "`.{}()` can panic on the query/wire path — propagate a typed error",
                        t.text
                    ),
                )),
                "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => out.push(
                    finding(t.line, format!("`{}!` is banned in shipping code", t.text)),
                ),
                _ => {}
            }
        }
        if t.is_punct('[') && i > 0 {
            let p = &toks[i - 1];
            let indexing = match p.kind {
                TokKind::Ident => !is_keyword(&p.text),
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            };
            if indexing {
                out.push(finding(
                    t.line,
                    "slice/array index can panic — use `.get(..)` or a checked pattern",
                ));
            }
        }
    }
    out
}

/// L4 — float-ordering: distance values are ordered with `total_cmp`, never
/// `partial_cmp` (NaN-lossy) or the `f64::max`/`f64::min` fold idiom.
pub fn float_ordering(lexed: &Lexed) -> Vec<RuleFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.test_mask[i] {
            continue;
        }
        if t.is_ident("partial_cmp") && i > 0 && toks[i - 1].is_punct('.') {
            out.push(finding(
                t.line,
                "`.partial_cmp()` on distances silently misorders NaN — use `total_cmp`",
            ));
        }
        if (t.is_ident("max") || t.is_ident("min"))
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("f64")
        {
            out.push(finding(
                t.line,
                format!(
                    "`f64::{}` drops NaN operands — fold with `total_cmp` or an explicit loop",
                    t.text
                ),
            ));
        }
    }
    out
}

/// L3 — cache-invalidation: every `&mut self` method in an `impl` block
/// mentioning `CellSet` that touches `self.cells` must call the
/// `invalidate_caches` helper (the PR 8 OnceLock bug class).
pub fn cache_invalidation(lexed: &Lexed) -> Vec<RuleFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Gather the impl header up to `{`; in scope iff it names CellSet.
            let mut j = i + 1;
            let mut names_cellset = false;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_ident("CellSet") {
                    names_cellset = true;
                }
                j += 1;
            }
            if names_cellset && j < toks.len() {
                if let Some(close) = matching_brace(toks, j, '{', '}') {
                    scan_impl_methods(lexed, j + 1, close, &mut out);
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

fn scan_impl_methods(lexed: &Lexed, start: usize, end: usize, out: &mut Vec<RuleFinding>) {
    let toks = &lexed.toks;
    let mut j = start;
    while j < end {
        if !toks[j].is_ident("fn") || lexed.test_mask[j] {
            j += 1;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) else {
            j += 1;
            continue;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Parameter list.
        let mut p = j + 2;
        while p < end && !toks[p].is_punct('(') {
            p += 1;
        }
        let Some(params_close) = matching_brace(toks, p, '(', ')') else {
            break;
        };
        let takes_mut_self = (p..params_close).any(|k| {
            toks[k].is_ident("self")
                && k >= 2
                && toks[k - 1].is_ident("mut")
                && (toks[k - 2].is_punct('&') || toks[k - 2].kind == TokKind::Lifetime)
        });
        // Body: next `{` after the parameter list (return types here are
        // brace-free).
        let mut b = params_close + 1;
        while b < end && !toks[b].is_punct('{') {
            if toks[b].is_punct(';') {
                break; // trait-method signature without a body
            }
            b += 1;
        }
        if b >= end || !toks[b].is_punct('{') {
            j = params_close + 1;
            continue;
        }
        let Some(body_close) = matching_brace(toks, b, '{', '}') else {
            break;
        };
        if takes_mut_self && name != "invalidate_caches" {
            let touches_cells = (b..body_close).any(|k| {
                toks[k].is_ident("cells")
                    && k >= 2
                    && toks[k - 1].is_punct('.')
                    && toks[k - 2].is_ident("self")
            });
            let invalidates = (b..body_close).any(|k| toks[k].is_ident("invalidate_caches"));
            if touches_cells && !invalidates {
                out.push(finding(
                    line,
                    format!(
                        "`&mut self` method `{name}` touches `self.cells` without calling \
                         `invalidate_caches()` — stale OnceLock verify state"
                    ),
                ));
            }
        }
        j = body_close + 1;
    }
}

/// L5 — metrics-registration: every instrument call carrying a string-literal
/// metric name lives in the pre-registration block (`fn new` of an `impl`
/// whose type name ends in `Metrics`); inside the block names are registered
/// exactly once per (kind, name, labels) and are prometheus-shaped.
pub fn metrics_registration(lexed: &Lexed) -> Vec<RuleFinding> {
    let toks = &lexed.toks;
    let mut out = Vec::new();

    // 1. Locate pre-registration blocks.
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            let mut j = i + 1;
            let mut is_metrics = false;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].kind == TokKind::Ident && toks[j].text.ends_with("Metrics") {
                    is_metrics = true;
                }
                j += 1;
            }
            if is_metrics && j < toks.len() {
                if let Some(close) = matching_brace(toks, j, '{', '}') {
                    let mut k = j + 1;
                    while k < close {
                        if toks[k].is_ident("fn")
                            && toks.get(k + 1).is_some_and(|t| t.is_ident("new"))
                        {
                            let mut b = k + 2;
                            while b < close && !toks[b].is_punct('{') {
                                b += 1;
                            }
                            if let Some(bc) = matching_brace(toks, b, '{', '}') {
                                blocks.push((b, bc));
                                k = bc + 1;
                                continue;
                            }
                        }
                        k += 1;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    // 2. Every instrument call with a literal name, anywhere in the file.
    let mut registered: Vec<(String, String, String, u32)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if lexed.test_mask[k] {
            continue;
        }
        let is_instr = t.is_ident("counter") || t.is_ident("gauge") || t.is_ident("histogram");
        if !is_instr
            || k == 0
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            || toks.get(k + 2).map(|n| n.kind) != Some(TokKind::Str)
        {
            continue;
        }
        let name = toks[k + 2].text.clone();
        let in_block = blocks.iter().any(|&(b, e)| k > b && k < e);
        if !in_block {
            out.push(finding(
                t.line,
                format!(
                    "metric \"{name}\" registered outside the pre-registration block \
                     — register the handle in `Metrics::new` and reuse it"
                ),
            ));
            continue;
        }
        if !valid_metric_name(&name) {
            out.push(finding(
                t.line,
                format!("metric name \"{name}\" is not prometheus-shaped ([a-z_][a-z0-9_]*)"),
            ));
        }
        let labels = label_signature(toks, k + 1);
        registered.push((t.text.clone(), name, labels, t.line));
    }

    // 3. Duplicates and cross-kind conflicts inside the block.
    for (idx, (kind, name, labels, line)) in registered.iter().enumerate() {
        for (pkind, pname, plabels, _) in &registered[..idx] {
            if name == pname && labels == plabels && kind == pkind {
                out.push(finding(
                    *line,
                    format!("metric \"{name}\" registered twice with identical labels"),
                ));
                break;
            }
            if name == pname && kind != pkind {
                out.push(finding(
                    *line,
                    format!(
                        "metric \"{name}\" registered as both `{pkind}` and `{kind}` \
                         — one name, one instrument kind"
                    ),
                ));
                break;
            }
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Concatenates the string literals of an instrument call's label argument so
/// two registrations of the same name can be told apart (`("phase",
/// "traversal")` vs `("phase", "verify")`).
fn label_signature(toks: &[Tok], open_paren: usize) -> String {
    let Some(close) = matching_brace(toks, open_paren, '(', ')') else {
        return String::new();
    };
    toks[open_paren + 3..close]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

/// Everything L2 needs to cross-check the wire protocol.
pub struct WireInputs<'a> {
    /// Lexed `crates/multisource/src/message.rs`.
    pub message: &'a Lexed,
    /// Lexed `crates/multisource/tests/transport.rs` (fuzz-tag list).
    pub transport: Option<&'a Lexed>,
    /// Lexed `crates/obs/src/metrics.rs` (`MetricValue`, whose inner tags
    /// live in message.rs).
    pub metrics: Option<&'a Lexed>,
    /// Raw `README.md` text (protocol table).
    pub readme: Option<&'a str>,
}

/// Collects one tag family's `const <PREFIX>X: u8 = N;` constants from
/// message.rs, flagging constants of the family that are not literal `u8`s
/// (the cross-checks below can only follow literal values).
fn tag_consts(toks: &[Tok], prefix: &str, out: &mut Vec<RuleFinding>) -> Vec<(String, u64, u32)> {
    let mut consts: Vec<(String, u64, u32)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !name.text.starts_with(prefix) {
            continue;
        }
        // name : u8 = <num>
        let val = toks
            .get(i + 5)
            .filter(|v| {
                v.kind == TokKind::Num
                    && toks[i + 2].is_punct(':')
                    && toks[i + 3].is_ident("u8")
                    && toks[i + 4].is_punct('=')
            })
            .and_then(|v| v.text.parse::<u64>().ok());
        match val {
            Some(v) => consts.push((name.text.clone(), v, name.line)),
            None => out.push(finding(
                name.line,
                format!("`{}` must be a literal `u8` tag constant", name.text),
            )),
        }
    }
    consts
}

/// L2 — wire-tags: every `Message` variant's `TAG_*` constant exists, has a
/// distinct value, and appears in `encode`, `decode`, the transport fuzz-tag
/// list, and the README protocol table; and every inner enum framed inside a
/// variant's payload (`UpdateOp`, `MetricValue`) has its own named tag
/// family (`OP_TAG_*`, `METRIC_TAG_*`) wired through both `encode` and
/// `decode`.  All findings anchor to message.rs lines (the variant or
/// constant that is out of sync).
pub fn wire_tags(inp: &WireInputs) -> Vec<RuleFinding> {
    let toks = &inp.message.toks;
    let mut out = Vec::new();

    // TAG_* constants: `const TAG_X: u8 = N;`.  The prefix match is exact
    // on the name's start, so the inner families (`OP_TAG_*`,
    // `METRIC_TAG_*`) stay out of the frame-level set.
    let consts = tag_consts(toks, "TAG_", &mut out);

    let variants = enum_variants(toks, "Message");
    if variants.is_empty() {
        out.push(finding(
            1,
            "no `enum Message` found to check wire tags against",
        ));
        return out;
    }

    // Duplicate tag values.
    for (idx, (name, v, line)) in consts.iter().enumerate() {
        if let Some((prev, _, _)) = consts[..idx].iter().find(|(_, pv, _)| pv == v) {
            out.push(finding(
                *line,
                format!("tag value {v} of `{name}` already used by `{prev}`"),
            ));
        }
    }

    // Variant <-> constant bijection.
    for (vname, vline) in &variants {
        let expected = format!("TAG_{}", screaming(vname));
        if !consts.iter().any(|(c, _, _)| *c == expected) {
            out.push(finding(
                *vline,
                format!("variant `{vname}` has no `{expected}` wire-tag constant"),
            ));
        }
    }
    let variant_consts: Vec<String> = variants
        .iter()
        .map(|(v, _)| format!("TAG_{}", screaming(v)))
        .collect();
    for (cname, _, cline) in &consts {
        if !variant_consts.iter().any(|e| e == cname) {
            out.push(finding(
                *cline,
                format!("`{cname}` does not correspond to any `Message` variant"),
            ));
        }
    }

    // Reference checks: encode, decode, fuzz list, README table.
    let encode_idents = fn_body_idents(toks, "encode");
    let decode_idents = fn_body_idents(toks, "decode");
    let transport_idents: Option<Vec<String>> = inp.transport.map(|t| {
        t.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    });
    for (cname, value, cline) in &consts {
        if !variant_consts.iter().any(|e| e == cname) {
            continue; // already reported above
        }
        if !encode_idents.iter().any(|i| i == cname) {
            out.push(finding(
                *cline,
                format!("`{cname}` is never used in `encode`"),
            ));
        }
        if !decode_idents.iter().any(|i| i == cname) {
            out.push(finding(
                *cline,
                format!("`{cname}` is never matched in `decode`"),
            ));
        }
        if let Some(ids) = &transport_idents {
            if !ids.iter().any(|i| i == cname) {
                out.push(finding(
                    *cline,
                    format!("`{cname}` is missing from the transport fuzz-tag list"),
                ));
            }
        }
        if let Some(readme) = inp.readme {
            let variant = variants
                .iter()
                .find(|(v, _)| format!("TAG_{}", screaming(v)) == *cname)
                .map(|(v, _)| v.as_str())
                .unwrap_or("");
            if !readme_table_has(readme, *value, variant) {
                out.push(finding(
                    *cline,
                    format!(
                        "tag {value} (`{variant}`) is missing from the README wire-protocol table"
                    ),
                ));
            }
        }
    }

    // Inner tag families: each enum framed inside a variant's payload gets
    // one byte of tag on the wire, named in message.rs and wired through
    // both codec directions.  `UpdateOp` is declared in message.rs itself;
    // `MetricValue` lives in obs, so its variant list is read from the
    // lexed metrics file when available.
    inner_tag_family(
        toks,
        Some(toks),
        "UpdateOp",
        "OP_TAG_",
        &encode_idents,
        &decode_idents,
        &mut out,
    );
    inner_tag_family(
        toks,
        inp.metrics.map(|m| m.toks.as_slice()),
        "MetricValue",
        "METRIC_TAG_",
        &encode_idents,
        &decode_idents,
        &mut out,
    );
    out
}

/// Cross-checks one inner tag family: the variants of `enum_name` (parsed
/// from `enum_toks`, when that file is available) must biject with literal
/// `{prefix}{SCREAMING}` constants in message.rs, distinct-valued within the
/// family and referenced in both `encode` and `decode`.  Findings anchor to
/// message.rs; when the enum is declared elsewhere, missing-constant
/// findings anchor to line 1.
fn inner_tag_family(
    message_toks: &[Tok],
    enum_toks: Option<&[Tok]>,
    enum_name: &str,
    prefix: &str,
    encode_idents: &[String],
    decode_idents: &[String],
    out: &mut Vec<RuleFinding>,
) {
    let same_file = enum_toks.is_some_and(|t| std::ptr::eq(t, message_toks));
    let consts = tag_consts(message_toks, prefix, out);

    // Duplicate tag values within the family (families are independent
    // namespaces: each is disambiguated by its enclosing variant's payload).
    for (idx, (name, v, line)) in consts.iter().enumerate() {
        if let Some((prev, _, _)) = consts[..idx].iter().find(|(_, pv, _)| pv == v) {
            out.push(finding(
                *line,
                format!("tag value {v} of `{name}` already used by `{prev}`"),
            ));
        }
    }

    // Variant <-> constant bijection, when the enum's source is on hand.
    if let Some(enum_toks) = enum_toks {
        let variants = enum_variants(enum_toks, enum_name);
        if variants.is_empty() {
            out.push(finding(
                1,
                format!("no `enum {enum_name}` found to check inner wire tags against"),
            ));
        } else {
            for (vname, vline) in &variants {
                let expected = format!("{prefix}{}", screaming(vname));
                if !consts.iter().any(|(c, _, _)| *c == expected) {
                    out.push(finding(
                        if same_file { *vline } else { 1 },
                        format!(
                            "variant `{enum_name}::{vname}` has no `{expected}` inner wire-tag constant"
                        ),
                    ));
                }
            }
            let expected: Vec<String> = variants
                .iter()
                .map(|(v, _)| format!("{prefix}{}", screaming(v)))
                .collect();
            for (cname, _, cline) in &consts {
                if !expected.iter().any(|e| e == cname) {
                    out.push(finding(
                        *cline,
                        format!("`{cname}` does not correspond to any `{enum_name}` variant"),
                    ));
                }
            }
        }
    }

    // Both codec directions must go through the named constant.
    for (cname, _, cline) in &consts {
        if !encode_idents.iter().any(|i| i == cname) {
            out.push(finding(
                *cline,
                format!("`{cname}` is never used in `encode`"),
            ));
        }
        if !decode_idents.iter().any(|i| i == cname) {
            out.push(finding(
                *cline,
                format!("`{cname}` is never matched in `decode`"),
            ));
        }
    }
}

/// `OverlapQuery` → `OVERLAP_QUERY`, `KnnReply` → `KNN_REPLY`.
fn screaming(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

/// Variant names (with lines) of `enum <name> { ... }`.
fn enum_variants(toks: &[Tok], name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let mut open = i + 2;
        while open < toks.len() && !toks[open].is_punct('{') {
            open += 1;
        }
        let Some(close) = matching_brace(toks, open, '{', '}') else {
            break;
        };
        let mut k = open + 1;
        while k < close {
            // Skip variant attributes.
            while k + 1 < close && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                match matching_brace(toks, k + 1, '[', ']') {
                    Some(e) => k = e + 1,
                    None => return variants,
                }
            }
            if k >= close {
                break;
            }
            if toks[k].kind == TokKind::Ident {
                variants.push((toks[k].text.clone(), toks[k].line));
            }
            // Advance past this variant's payload to the next top-level `,`.
            let mut depth = 0usize;
            while k < close {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct(',') && depth == 0 {
                    k += 1;
                    break;
                }
                k += 1;
            }
        }
        break;
    }
    variants
}

/// Identifiers inside the body of `fn <name>`.
fn fn_body_idents(toks: &[Tok], name: &str) -> Vec<String> {
    for i in 0..toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let mut b = i + 2;
            while b < toks.len() && !toks[b].is_punct('{') {
                b += 1;
            }
            if let Some(close) = matching_brace(toks, b, '{', '}') {
                return toks[b..close]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
            }
        }
    }
    Vec::new()
}

/// True when the README has a table row `| <value> | ...<variant>... |`.
fn readme_table_has(readme: &str, value: u64, variant: &str) -> bool {
    let value = value.to_string();
    readme.lines().any(|line| {
        let cells: Vec<&str> = line.split('|').collect();
        cells.len() >= 3 && cells[1].trim() == value && cells[2].contains(variant)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn screaming_case_handles_acronym_style_variants() {
        assert_eq!(screaming("OverlapQuery"), "OVERLAP_QUERY");
        assert_eq!(screaming("KnnReply"), "KNN_REPLY");
        assert_eq!(screaming("Error"), "ERROR");
    }

    #[test]
    fn panic_freedom_ignores_test_items_and_comments() {
        let src = "\
fn live(x: Option<u8>) -> u8 { x.unwrap() }
// x.unwrap() in a comment is fine
#[cfg(test)]
mod tests {
    fn t(x: Option<u8>) -> u8 { x.unwrap() }
}
";
        let found = panic_freedom(&lex(src));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn slice_index_heuristic_skips_types_and_patterns() {
        let src = "\
fn f(xs: &[u8], buf: [u8; 4]) -> u8 {
    let [a, _b] = [xs[0], buf[1]];
    a
}
";
        let found = panic_freedom(&lex(src));
        // Exactly the two real index expressions on line 2.
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.line == 2));
    }

    #[test]
    fn float_ordering_flags_partial_cmp_calls_not_impls() {
        let src = "\
fn order(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }
impl PartialOrd for D { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }
fn fold(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NAN, f64::max) }
";
        let found = float_ordering(&lex(src));
        let lines: Vec<u32> = found.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 3]);
    }

    #[test]
    fn metrics_duplicate_registration_is_flagged() {
        let src = "\
impl FooMetrics {
    fn new(reg: &Registry) -> Self {
        let a = reg.counter(\"dup_total\", &[]);
        let b = reg.counter(\"dup_total\", &[]);
        Self { a, b }
    }
}
";
        let found = metrics_registration(&lex(src));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn metrics_outside_block_is_flagged() {
        let src = "fn hot(reg: &Registry) { reg.counter(\"late_total\", &[]).inc(); }";
        let found = metrics_registration(&lex(src));
        assert_eq!(found.len(), 1);
    }
}
