//! A comment-, string- and attribute-aware Rust token stream.
//!
//! This is not a full Rust lexer — it is exactly the subset the lint rules
//! need to be *sound on this workspace*: tokens never come from comments or
//! string literals, `lint:allow` directives are recognised while comments are
//! skipped, and `#[cfg(test)]` / `#[test]` items can be masked out so the
//! panic-freedom rule only sees code that ships.  Consistent with the
//! vendored-stubs policy, there is no `syn` anywhere near this crate.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A single punctuation character (`.`, `[`, `&`, ...).
    Punct,
    /// A string literal (regular, raw, byte); `text` is the *content*.
    Str,
    /// A numeric literal (integer or float head; suffixes included).
    Num,
    /// A character literal.
    CharLit,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One `// lint:allow(<rule>): <reason>` directive found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// A comment that mentions `lint:allow` but does not parse as a directive.
#[derive(Debug, Clone)]
pub struct MalformedAllow {
    pub line: u32,
    pub detail: String,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
    pub malformed_allows: Vec<MalformedAllow>,
    /// `test_mask[i]` is true when token `i` belongs to a `#[cfg(test)]` or
    /// `#[test]` item (including the attribute itself).
    pub test_mask: Vec<bool>,
}

/// Lexes a whole file.
pub fn lex(src: &str) -> Lexed {
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut malformed_allows = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments): skip, but mine for directives.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let comment: String = bytes[start..i].iter().collect();
            scan_allow(&comment, line, &mut allows, &mut malformed_allows);
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (any number of #).
        if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
            let (content, consumed, newlines) = lex_raw_string(&bytes, i);
            toks.push(Tok {
                kind: TokKind::Str,
                text: content,
                line,
            });
            line += newlines;
            i += consumed;
            continue;
        }
        // Regular or byte string.
        if c == '"' || (c == 'b' && i + 1 < n && bytes[i + 1] == '"') {
            let start = if c == 'b' { i + 1 } else { i };
            let (content, consumed, newlines) = lex_quoted(&bytes, start, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: content,
                line,
            });
            line += newlines;
            i = start + consumed;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            if is_lifetime(&bytes, i) {
                let mut j = i + 1;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: bytes[i..j].iter().collect(),
                    line,
                });
                i = j;
            } else {
                let (content, consumed, newlines) = lex_quoted(&bytes, i, '\'');
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: content,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            continue;
        }
        // Identifier (incl. raw identifiers r#foo).
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            if c == 'r' && i + 2 < n && bytes[i + 1] == '#' && is_ident_char(bytes[i + 2]) {
                j = i + 2; // raw identifier: token text drops the r# prefix
            }
            let start = j;
            while j < n && is_ident_char(bytes[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: bytes[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number: digits plus alphanumeric tail (0x.., 1_000u64, 1.5e3).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && (is_ident_char(bytes[j])) {
                j += 1;
            }
            // One fractional part, but never eat a `..` range operator.
            if j < n && bytes[j] == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && is_ident_char(bytes[j]) {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: bytes[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation character per token.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    let test_mask = mask_test_items(&toks);
    Lexed {
        toks,
        allows,
        malformed_allows,
        test_mask,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_lifetime(bytes: &[char], i: usize) -> bool {
    // 'x is a lifetime unless the tick closes again right after ('x').
    if i + 1 >= bytes.len() {
        return false;
    }
    let next = bytes[i + 1];
    if !(next.is_alphabetic() || next == '_') {
        return false;
    }
    // 'a' is a char literal; 'ab is a lifetime; 'a, is a lifetime.
    !(i + 2 < bytes.len() && bytes[i + 2] == '\'')
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != 'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

fn lex_raw_string(bytes: &[char], start: usize) -> (String, usize, u32) {
    let mut j = start;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // r
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let mut newlines = 0;
    while j < bytes.len() {
        if bytes[j] == '\n' {
            newlines += 1;
        }
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < bytes.len() && bytes[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let content: String = bytes[content_start..j].iter().collect();
                return (content, k - start, newlines);
            }
        }
        j += 1;
    }
    let content: String = bytes[content_start..].iter().collect();
    (content, bytes.len() - start, newlines)
}

/// Lexes a `"..."` or `'...'` literal starting at the opening quote; returns
/// (content, consumed chars incl. quotes, newline count).
fn lex_quoted(bytes: &[char], start: usize, quote: char) -> (String, usize, u32) {
    let mut j = start + 1;
    let mut newlines = 0;
    let mut content = String::new();
    while j < bytes.len() {
        let c = bytes[j];
        if c == '\\' && j + 1 < bytes.len() {
            content.push(c);
            content.push(bytes[j + 1]);
            j += 2;
            continue;
        }
        if c == quote {
            return (content, j + 1 - start, newlines);
        }
        if c == '\n' {
            newlines += 1;
        }
        content.push(c);
        j += 1;
    }
    (content, bytes.len() - start, newlines)
}

/// Parses `lint:allow(<rule>): <reason>` out of one comment.
fn scan_allow(
    comment: &str,
    line: u32,
    allows: &mut Vec<AllowDirective>,
    malformed: &mut Vec<MalformedAllow>,
) {
    let Some(pos) = comment.find("lint:allow") else {
        return;
    };
    let rest = &comment[pos + "lint:allow".len()..];
    let Some(open) = rest.find('(') else {
        malformed.push(MalformedAllow {
            line,
            detail: "expected `lint:allow(<rule>): <reason>`".to_string(),
        });
        return;
    };
    let Some(close) = rest.find(')') else {
        malformed.push(MalformedAllow {
            line,
            detail: "unclosed rule name in lint:allow".to_string(),
        });
        return;
    };
    if close < open {
        malformed.push(MalformedAllow {
            line,
            detail: "expected `lint:allow(<rule>): <reason>`".to_string(),
        });
        return;
    }
    let rule = rest[open + 1..close].trim().to_string();
    let tail = &rest[close + 1..];
    let reason = match tail.strip_prefix(':') {
        Some(r) => r.trim().to_string(),
        None => {
            malformed.push(MalformedAllow {
                line,
                detail: "missing `: <reason>` after lint:allow rule".to_string(),
            });
            return;
        }
    };
    if reason.is_empty() {
        malformed.push(MalformedAllow {
            line,
            detail: "empty justification — lint:allow requires a reason".to_string(),
        });
        return;
    }
    allows.push(AllowDirective { line, rule, reason });
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item.
fn mask_test_items(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            if let Some((attr_end, is_test)) = scan_attribute(toks, i) {
                if is_test {
                    let item_end = skip_item(toks, attr_end + 1);
                    for m in mask.iter_mut().take(item_end.min(toks.len())).skip(i) {
                        *m = true;
                    }
                    i = item_end;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Returns (index of the closing `]`, attribute-is-test) for the attribute
/// starting at `#` token `i`, or None when malformed.
fn scan_attribute(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut is_cfg_like = false;
    let mut mentions_test = false;
    let mut mentions_not = false;
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                // `#[test]` itself never mentions cfg.  A `not(...)` anywhere
                // in the predicate disqualifies it: `#[cfg(not(test))]` is
                // *shipping* code and must stay visible to the rules.
                let bare_test = j == i + 3 && toks[i + 2].is_ident("test");
                return Some((
                    j,
                    bare_test || (is_cfg_like && mentions_test && !mentions_not),
                ));
            }
        } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
            is_cfg_like = true;
        } else if t.is_ident("test") {
            mentions_test = true;
        } else if t.is_ident("not") {
            mentions_not = true;
        }
        j += 1;
    }
    None
}

/// Skips one item starting at token `start` (other attributes, then either a
/// `{ ... }` body or a `;`), returning the index just past it.
fn skip_item(toks: &[Tok], start: usize) -> usize {
    let mut j = start;
    // Skip any further attributes on the same item.
    while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
        match scan_attribute(toks, j) {
            Some((end, _)) => j = end + 1,
            None => return toks.len(),
        }
    }
    let mut depth = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    toks.len()
}

/// Finds the index of the matching close brace for the open brace at `open`.
pub fn matching_brace(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let src = r##"
// unwrap() in a comment
/* panic!() in /* a nested */ block */
let s = "call .unwrap() here";
let r = r#"also .expect("x") here"#;
let c = '"';
"##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").toks;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::CharLit && t.text == "x"));
    }

    #[test]
    fn lines_are_tracked_through_comments_and_strings() {
        let src = "a\n/* two\nlines */\nb\n\"str\nstr\"\nc";
        let toks = lex(src).toks;
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn allow_directives_parse_and_malformed_ones_are_reported() {
        let src = "\
x(); // lint:allow(panic-freedom): documented panic in a deprecated shim
y(); // lint:allow(panic-freedom):
z(); // lint:allow(panic-freedom) no colon
";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "panic-freedom");
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.malformed_allows.len(), 2);
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "\
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn live2() {}
";
        let lexed = lex(src);
        let masked: Vec<&str> = lexed
            .toks
            .iter()
            .zip(&lexed.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"tests"));
        assert!(masked.contains(&"y"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"live2"));
    }

    #[test]
    fn bare_test_attribute_masks_the_function() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() {}";
        let lexed = lex(src);
        let masked: Vec<&str> = lexed
            .toks
            .iter()
            .zip(&lexed.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"check"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#fn = 1;");
        assert!(ids.contains(&"fn".to_string()));
    }
}
