//! Fixture: metrics-registration violations (lines asserted by
//! tests/fixtures.rs).

pub struct EngineMetrics {
    queries: Counter,
    latency: Histogram,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        let queries = registry.counter("engine_queries_total", &[]);
        let latency = registry.histogram("engine_latency_nanos", &[]);
        let duplicate = registry.counter("engine_queries_total", &[]);
        Self { queries, latency }
    }
}

pub fn rogue_registration(registry: &Registry) {
    registry.counter("engine_rogue_total", &[]);
}
