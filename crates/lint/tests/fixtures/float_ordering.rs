//! Fixture: float-ordering violations (lines asserted by tests/fixtures.rs).

pub fn widest(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
