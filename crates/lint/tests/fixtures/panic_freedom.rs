//! Fixture: panic-freedom violations, one idiom per line (lines asserted
//! by tests/fixtures.rs — keep them stable).

pub fn lookup(values: &[u64], i: usize) -> u64 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("two elements");
    if i > values.len() {
        panic!("out of range");
    }
    first + second + values[i]
}
