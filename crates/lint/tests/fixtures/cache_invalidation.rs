//! Fixture: cache-invalidation violation (lines asserted by
//! tests/fixtures.rs).

pub struct CellSet {
    cells: Vec<u64>,
    cached_len: Option<usize>,
}

impl CellSet {
    fn invalidate_caches(&mut self) {
        self.cached_len = None;
    }

    pub fn insert(&mut self, cell: u64) {
        self.cells.push(cell);
        self.invalidate_caches();
    }

    pub fn remove_last(&mut self) {
        self.cells.pop();
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }
}
