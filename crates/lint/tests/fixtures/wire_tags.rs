//! Fixture: wire-tags violations (lines asserted by tests/fixtures.rs).
//! `TAG_PONG` is encoded but never matched in `decode`, `Ack` has no
//! constant at all, `OP_TAG_CLEAR` reuses `OP_TAG_SET`'s value, and
//! `OP_TAG_DROP` is never wired through `encode`.

pub const TAG_PING: u8 = 0;
pub const TAG_PONG: u8 = 1;

pub const OP_TAG_SET: u8 = 0;
pub const OP_TAG_CLEAR: u8 = 0;
pub const OP_TAG_DROP: u8 = 2;

pub enum Message {
    Ping,
    Pong,
    Ack,
}

pub enum UpdateOp {
    Set,
    Clear,
    Drop,
}

impl Message {
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Ping => buf.push(TAG_PING),
            Message::Pong => buf.push(TAG_PONG),
            Message::Ack => buf.push(2),
        }
        buf.push(OP_TAG_SET);
        buf.push(OP_TAG_CLEAR);
    }

    pub fn decode(tag: u8) -> Option<Message> {
        match tag {
            TAG_PING => Some(Message::Ping),
            OP_TAG_SET | OP_TAG_CLEAR | OP_TAG_DROP => None,
            _ => None,
        }
    }
}
