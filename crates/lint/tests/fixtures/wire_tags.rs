//! Fixture: wire-tags violations (lines asserted by tests/fixtures.rs).
//! `TAG_PONG` is encoded but never matched in `decode`, and `Ack` has no
//! constant at all.

pub const TAG_PING: u8 = 0;
pub const TAG_PONG: u8 = 1;

pub enum Message {
    Ping,
    Pong,
    Ack,
}

impl Message {
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Ping => buf.push(TAG_PING),
            Message::Pong => buf.push(TAG_PONG),
            Message::Ack => buf.push(2),
        }
    }

    pub fn decode(tag: u8) -> Option<Message> {
        match tag {
            TAG_PING => Some(Message::Ping),
            _ => None,
        }
    }
}
