//! Fixture: allow directives — one used, one unused, one with an empty
//! reason (lines asserted by tests/fixtures.rs).  The directive spelling
//! is avoided in this doc comment: the scanner reads every comment.

pub fn checked(values: &[u64]) -> u64 {
    // lint:allow(panic-freedom): fixture demonstrating a justified escape hatch
    values.first().unwrap()
}

// lint:allow(panic-freedom): nothing on the next line triggers this rule
pub fn quiet() {}

pub fn empty_reason(values: &[u64]) -> u64 {
    // lint:allow(panic-freedom):
    values[0]
}
