//! End-to-end rule tests over the snippets in `tests/fixtures/` — one bad
//! snippet per rule, each asserting the finding lands on the exact line —
//! plus the whole-workspace integration check: the tree must be lint-clean
//! modulo the committed baseline.

use std::path::Path;

use lint::lexer;
use lint::rules::{self, WireInputs};
use lint::{analyze, baseline, filter_allows, find_root};

fn fixture(name: &str) -> lexer::Lexed {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    lexer::lex(&src)
}

fn lines(findings: &[rules::RuleFinding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

#[test]
fn panic_freedom_fixture_flags_each_idiom_on_its_line() {
    let found = rules::panic_freedom(&fixture("panic_freedom.rs"));
    // unwrap, expect, panic!, slice index.
    assert_eq!(lines(&found), vec![5, 6, 8, 10], "{found:?}");
}

#[test]
fn float_ordering_fixture_flags_fold_and_partial_cmp() {
    let found = rules::float_ordering(&fixture("float_ordering.rs"));
    assert_eq!(lines(&found), vec![4, 8], "{found:?}");
}

#[test]
fn cache_invalidation_fixture_flags_the_mutator_that_skips_invalidation() {
    let found = rules::cache_invalidation(&fixture("cache_invalidation.rs"));
    // Only `remove_last`: `insert` invalidates, `len` is `&self`, and
    // `invalidate_caches` itself is exempt.
    assert_eq!(lines(&found), vec![19], "{found:?}");
}

#[test]
fn metrics_registration_fixture_flags_dup_and_rogue_call() {
    let found = rules::metrics_registration(&fixture("metrics_registration.rs"));
    let mut got = lines(&found);
    got.sort_unstable();
    assert_eq!(got, vec![13, 19], "{found:?}");
}

#[test]
fn wire_tags_fixture_flags_missing_decode_arm_and_missing_constant() {
    let message = fixture("wire_tags.rs");
    let found = rules::wire_tags(&WireInputs {
        message: &message,
        transport: None,
        metrics: None,
        readme: None,
    });
    let mut got = lines(&found);
    got.sort_unstable();
    // Line 7: `TAG_PONG` never matched in `decode`; line 10: `OP_TAG_CLEAR`
    // reuses `OP_TAG_SET`'s value; line 11: `OP_TAG_DROP` never used in
    // `encode`; line 16: variant `Ack` has no wire-tag constant.
    assert_eq!(got, vec![7, 10, 11, 16], "{found:?}");
}

#[test]
fn allow_directive_fixture_suppresses_used_and_reports_unused() {
    let lexed = fixture("allow_directive.rs");
    let raw: Vec<_> = rules::panic_freedom(&lexed)
        .into_iter()
        .map(|f| ("panic-freedom", f))
        .collect();
    assert_eq!(
        raw.iter().map(|(_, f)| f.line).collect::<Vec<_>>(),
        vec![7, 15],
        "fixture must trigger exactly the two raw findings"
    );

    let out = filter_allows(&lexed, raw, "fixture.rs", true);
    // The directive on line 6 suppresses the unwrap on line 7.  The one on
    // line 10 suppresses nothing and is reported.  The one on line 14 has an
    // empty reason, so it is malformed — it does NOT suppress line 15.
    let summary: Vec<(&str, u32)> = out.iter().map(|f| (f.rule, f.line)).collect();
    assert!(summary.contains(&("panic-freedom", 15)), "{summary:?}");
    assert!(summary.contains(&("allow-directive", 10)), "{summary:?}");
    assert!(!summary.iter().any(|&(_, line)| line == 7), "{summary:?}");

    assert_eq!(
        lexed.malformed_allows.len(),
        1,
        "{:?}",
        lexed.malformed_allows
    );
    assert_eq!(lexed.malformed_allows[0].line, 14);
}

/// The tree itself must be lint-clean modulo the committed baseline: every
/// finding `analyze` produces is either fixed or grandfathered, and the
/// baseline holds no stale (already-fixed) entries.
#[test]
fn workspace_is_lint_clean_modulo_committed_baseline() {
    let root = find_root(None);
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root not found from {}",
        root.display()
    );
    let findings = analyze(&root, None).expect("analyze workspace");

    let baseline_path = root.join("lint-baseline.txt");
    let text = std::fs::read_to_string(&baseline_path).expect("committed lint-baseline.txt");
    let base = baseline::parse(&text).expect("well-formed baseline");
    let (reported, stale) = baseline::apply(findings, &base);

    let rendered: Vec<String> = reported.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has findings not covered by lint-baseline.txt:\n{}",
        rendered.join("\n")
    );
    assert!(
        stale.is_empty(),
        "lint-baseline.txt has stale entries (shrink it):\n{}",
        stale.join("\n")
    );
}
