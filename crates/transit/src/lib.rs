//! Transit-planning applications of joinable spatial dataset search.
//!
//! The paper motivates both search problems with municipal transit planning
//! (Example 1): overlap joinable search feeds trajectory near-duplicate
//! detection and congestion analysis, coverage joinable search helps build
//! transfer routes that "cover larger regions" while staying connected to the
//! planner's query.  This crate turns that motivation into a small, concrete
//! application layer on top of the core library:
//!
//! * [`route`] — transit routes as polylines, resampling them into the point
//!   datasets the core library consumes, plus a deterministic synthetic
//!   network generator (grid streets + radial express lines) used by the
//!   examples and benches.
//! * [`neardup`] — near-duplicate route detection: find route pairs whose
//!   cell-based overlap fraction exceeds a threshold, driven by the exact
//!   OverlapSearch over DITS-L.
//! * [`transfer`] — transfer-network planning: pick `k` routes connected to a
//!   query corridor that maximise the covered area, and derive the transfer
//!   points (shared or adjacent cells) between consecutive selections.

#![warn(missing_docs)]

pub mod neardup;
pub mod route;
pub mod transfer;

pub use neardup::{find_near_duplicates, DuplicatePair, NearDuplicateConfig};
pub use route::{generate_network, NetworkConfig, RouteMode, TransitRoute};
pub use transfer::{plan_transfers, TransferPlan, TransferPlanConfig, TransferPoint};
