//! Near-duplicate route detection driven by the overlap joinable search.
//!
//! Open transit portals accumulate near-identical copies of the same route
//! (re-uploads, rebrandings, minor timetable revisions with the same shape).
//! The paper cites trajectory near-duplicate detection \[56\] as the first
//! downstream use of overlap joinable search; this module implements it:
//!
//! 1. grid every route,
//! 2. index the cell sets in DITS-L,
//! 3. for each route, run OverlapSearch and flag the pairs whose overlap
//!    fraction (relative to the smaller route) exceeds a threshold.
//!
//! Using the index keeps the detection near-linear in practice instead of the
//! quadratic all-pairs comparison.

use crate::route::TransitRoute;
use dits::{overlap_search, DatasetNode, DitsLocal, DitsLocalConfig};
use serde::{Deserialize, Serialize};
use spatial::{DatasetId, Grid};
use std::collections::HashMap;

/// Configuration of the near-duplicate detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NearDuplicateConfig {
    /// Grid resolution θ used to rasterise the routes.
    pub resolution: u32,
    /// Resampling spacing along route polylines, in degrees.
    pub spacing: f64,
    /// Minimum overlap fraction `|A ∩ B| / min(|A|, |B|)` for a pair to be
    /// reported as near-duplicates.
    pub overlap_threshold: f64,
    /// How many overlap candidates to examine per route (the `k` of the
    /// underlying OJSP); only the strongest `k` overlaps can be reported.
    pub candidates_per_route: usize,
    /// Leaf capacity of the temporary index.
    pub leaf_capacity: usize,
}

impl Default for NearDuplicateConfig {
    fn default() -> Self {
        Self {
            resolution: 13,
            spacing: 0.005,
            overlap_threshold: 0.8,
            candidates_per_route: 10,
            leaf_capacity: 10,
        }
    }
}

/// One detected near-duplicate pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DuplicatePair {
    /// The route with the smaller id.
    pub first: DatasetId,
    /// The route with the larger id.
    pub second: DatasetId,
    /// Number of shared cells.
    pub shared_cells: usize,
    /// Overlap fraction relative to the smaller route.
    pub overlap_fraction: f64,
}

/// Detects near-duplicate route pairs in a network.
///
/// Returns pairs sorted by decreasing overlap fraction (ties by ids); each
/// unordered pair is reported once.  Degenerate routes that rasterise to no
/// cell are skipped.
pub fn find_near_duplicates(
    routes: &[TransitRoute],
    config: &NearDuplicateConfig,
) -> Vec<DuplicatePair> {
    let Ok(grid) = Grid::global(config.resolution) else {
        return Vec::new();
    };
    // Rasterise every route once.
    let nodes: Vec<DatasetNode> = routes
        .iter()
        .filter_map(|r| DatasetNode::from_dataset(&grid, &r.to_dataset(config.spacing)).ok())
        .collect();
    if nodes.len() < 2 {
        return Vec::new();
    }
    let sizes: HashMap<DatasetId, usize> = nodes.iter().map(|n| (n.id, n.coverage())).collect();
    let index = DitsLocal::build(
        nodes.clone(),
        DitsLocalConfig {
            leaf_capacity: config.leaf_capacity.max(1),
        },
    );

    let mut pairs: Vec<DuplicatePair> = Vec::new();
    for node in &nodes {
        // `k + 1` because the route always finds itself with full overlap.
        let (results, _) = overlap_search(&index, &node.cells, config.candidates_per_route + 1);
        for result in results {
            if result.dataset == node.id {
                continue;
            }
            // Report each unordered pair once, from the smaller-id side.
            if result.dataset < node.id {
                continue;
            }
            let smaller = sizes[&node.id].min(sizes[&result.dataset]);
            if smaller == 0 {
                continue;
            }
            let fraction = result.overlap as f64 / smaller as f64;
            if fraction + 1e-12 >= config.overlap_threshold {
                pairs.push(DuplicatePair {
                    first: node.id,
                    second: result.dataset,
                    shared_cells: result.overlap,
                    overlap_fraction: fraction,
                });
            }
        }
    }
    pairs.sort_unstable_by(|a, b| {
        b.overlap_fraction
            .total_cmp(&a.overlap_fraction)
            .then(a.first.cmp(&b.first))
            .then(a.second.cmp(&b.second))
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{generate_network, NetworkConfig, RouteMode};
    use spatial::Point;

    fn straight_route(id: DatasetId, y: f64) -> TransitRoute {
        TransitRoute::new(
            id,
            format!("route-{id}"),
            RouteMode::Bus,
            vec![Point::new(-77.1, y), Point::new(-76.9, y)],
        )
    }

    #[test]
    fn identical_routes_are_detected() {
        let a = straight_route(0, 38.90);
        let mut b = straight_route(1, 38.90);
        b.name = "same shape, new brand".to_string();
        let c = straight_route(2, 38.95); // parallel but far: not a duplicate
        let pairs = find_near_duplicates(&[a, b, c], &NearDuplicateConfig::default());
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].first, pairs[0].second), (0, 1));
        assert!(pairs[0].overlap_fraction >= 0.99);
        assert!(pairs[0].shared_cells > 0);
    }

    #[test]
    fn threshold_controls_sensitivity() {
        // Two routes sharing roughly half their extent.
        let a = TransitRoute::new(
            0,
            "a",
            RouteMode::Bus,
            vec![Point::new(-77.2, 38.9), Point::new(-77.0, 38.9)],
        );
        let b = TransitRoute::new(
            1,
            "b",
            RouteMode::Bus,
            vec![Point::new(-77.1, 38.9), Point::new(-76.9, 38.9)],
        );
        let strict = find_near_duplicates(
            &[a.clone(), b.clone()],
            &NearDuplicateConfig {
                overlap_threshold: 0.9,
                ..NearDuplicateConfig::default()
            },
        );
        assert!(strict.is_empty());
        let lenient = find_near_duplicates(
            &[a, b],
            &NearDuplicateConfig {
                overlap_threshold: 0.3,
                ..NearDuplicateConfig::default()
            },
        );
        assert_eq!(lenient.len(), 1);
        assert!(lenient[0].overlap_fraction >= 0.3 && lenient[0].overlap_fraction <= 0.7);
    }

    #[test]
    fn generated_duplicates_are_found() {
        let config = NetworkConfig {
            duplicates: 4,
            ..NetworkConfig::default()
        };
        let routes = generate_network(&config);
        let pairs = find_near_duplicates(&routes, &NearDuplicateConfig::default());
        // Every injected rebranded route must be matched with its original.
        assert!(
            pairs.len() >= config.duplicates,
            "found only {} pairs for {} injected duplicates",
            pairs.len(),
            config.duplicates
        );
        // Pairs are sorted by decreasing overlap fraction.
        for w in pairs.windows(2) {
            assert!(w[0].overlap_fraction >= w[1].overlap_fraction);
        }
        // And each reported pair is unordered-unique.
        let mut keys: Vec<(DatasetId, DatasetId)> =
            pairs.iter().map(|p| (p.first, p.second)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), pairs.len());
        for p in &pairs {
            assert!(p.first < p.second);
        }
    }

    #[test]
    fn degenerate_inputs_produce_no_pairs() {
        assert!(find_near_duplicates(&[], &NearDuplicateConfig::default()).is_empty());
        let single = straight_route(0, 38.9);
        assert!(find_near_duplicates(&[single], &NearDuplicateConfig::default()).is_empty());
        // A resolution of zero is invalid; the detector degrades to no pairs
        // instead of panicking.
        let pairs = find_near_duplicates(
            &[straight_route(0, 38.9), straight_route(1, 38.9)],
            &NearDuplicateConfig {
                resolution: 0,
                ..NearDuplicateConfig::default()
            },
        );
        assert!(pairs.is_empty());
    }
}
