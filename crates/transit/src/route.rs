//! Transit routes and a synthetic network generator.
//!
//! A [`TransitRoute`] is a polyline (an ordered list of stops / shape points)
//! with a transport mode.  The core library works on point datasets, so a
//! route is *resampled* along its segments at a configurable spacing before
//! being handed to the grid partitioner — exactly how the Transit portal
//! datasets of Table I (bus, metro and waterway shapes) become point sets.
//!
//! [`generate_network`] produces a deterministic synthetic city: a grid of
//! local street routes plus radial express lines through the centre, with a
//! configurable amount of duplicated ("rebranded") routes so the
//! near-duplicate detector has something to find.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use spatial::{DatasetId, Point, SpatialDataset};

/// The transport mode of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteMode {
    /// Local bus.
    Bus,
    /// Metro / subway.
    Metro,
    /// Commuter rail.
    Rail,
    /// Ferry / waterway.
    Ferry,
}

impl RouteMode {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            RouteMode::Bus => "bus",
            RouteMode::Metro => "metro",
            RouteMode::Rail => "rail",
            RouteMode::Ferry => "ferry",
        }
    }
}

/// One transit route: an identified polyline with a mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitRoute {
    /// Identifier of the route (doubles as the dataset id when indexed).
    pub id: DatasetId,
    /// Human-readable route name (e.g. "Bus 42 — Union Station").
    pub name: String,
    /// Transport mode.
    pub mode: RouteMode,
    /// Ordered shape points of the route (longitude / latitude).
    pub shape: Vec<Point>,
}

impl TransitRoute {
    /// Creates a route.
    pub fn new(id: DatasetId, name: impl Into<String>, mode: RouteMode, shape: Vec<Point>) -> Self {
        Self {
            id,
            name: name.into(),
            mode,
            shape,
        }
    }

    /// Total polyline length in coordinate units.
    pub fn length(&self) -> f64 {
        self.shape.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Returns `true` when the route has fewer than two shape points.
    pub fn is_degenerate(&self) -> bool {
        self.shape.len() < 2
    }

    /// Resamples the route into points spaced at most `spacing` apart along
    /// every segment (segment endpoints are always included), producing the
    /// point dataset the grid partitioner consumes.
    ///
    /// A degenerate route (0 or 1 shape points) yields its shape unchanged.
    pub fn resample(&self, spacing: f64) -> Vec<Point> {
        if self.shape.len() < 2 || spacing <= 0.0 {
            return self.shape.clone();
        }
        let mut out = Vec::new();
        for w in self.shape.windows(2) {
            let (a, b) = (w[0], w[1]);
            let segment = a.distance(&b);
            let steps = (segment / spacing).ceil().max(1.0) as usize;
            for s in 0..steps {
                let t = s as f64 / steps as f64;
                out.push(Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t));
            }
        }
        out.push(*self.shape.last().expect("at least two shape points"));
        out
    }

    /// Converts the route into a [`SpatialDataset`] by resampling.
    pub fn to_dataset(&self, spacing: f64) -> SpatialDataset {
        SpatialDataset::named(self.id, self.name.clone(), self.resample(spacing))
    }
}

/// Configuration of the synthetic transit network generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Centre of the city (longitude / latitude).
    pub center: Point,
    /// Half-extent of the city in degrees (routes stay within
    /// `center ± extent`).
    pub extent: f64,
    /// Number of horizontal + vertical grid (local bus) routes.
    pub grid_routes: usize,
    /// Number of radial express (metro) lines through the centre.
    pub radial_routes: usize,
    /// Number of near-duplicate copies to add (same geometry as an existing
    /// route with small jitter — "rebranded" routes).
    pub duplicates: usize,
    /// RNG seed: the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            // Washington, D.C. — the city of the paper's running example.
            center: Point::new(-77.03, 38.90),
            extent: 0.25,
            grid_routes: 20,
            radial_routes: 8,
            duplicates: 5,
            seed: 42,
        }
    }
}

/// Generates a deterministic synthetic transit network.
pub fn generate_network(config: &NetworkConfig) -> Vec<TransitRoute> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut routes = Vec::new();
    let mut next_id: DatasetId = 0;
    let c = config.center;
    let e = config.extent;

    // Grid routes: alternately horizontal and vertical lines with a little
    // jitter so they are not perfectly axis-aligned.
    for i in 0..config.grid_routes {
        let frac = if config.grid_routes > 1 {
            i as f64 / (config.grid_routes - 1) as f64
        } else {
            0.5
        };
        let offset = -e + 2.0 * e * frac;
        let jitter = rng.random_range(-0.02..0.02);
        let shape = if i % 2 == 0 {
            // Horizontal route at latitude c.y + offset.
            vec![
                Point::new(c.x - e, c.y + offset + jitter),
                Point::new(c.x - e / 3.0, c.y + offset),
                Point::new(c.x + e / 3.0, c.y + offset - jitter),
                Point::new(c.x + e, c.y + offset),
            ]
        } else {
            // Vertical route at longitude c.x + offset.
            vec![
                Point::new(c.x + offset + jitter, c.y - e),
                Point::new(c.x + offset, c.y - e / 3.0),
                Point::new(c.x + offset - jitter, c.y + e / 3.0),
                Point::new(c.x + offset, c.y + e),
            ]
        };
        routes.push(TransitRoute::new(
            next_id,
            format!("bus-{next_id}"),
            RouteMode::Bus,
            shape,
        ));
        next_id += 1;
    }

    // Radial express lines through the centre.
    for i in 0..config.radial_routes {
        let angle = std::f64::consts::TAU * i as f64 / config.radial_routes.max(1) as f64;
        let (dx, dy) = (angle.cos(), angle.sin());
        let shape = vec![
            Point::new(c.x - dx * e, c.y - dy * e),
            Point::new(c.x - dx * e / 2.0, c.y - dy * e / 2.0),
            c,
            Point::new(c.x + dx * e / 2.0, c.y + dy * e / 2.0),
            Point::new(c.x + dx * e, c.y + dy * e),
        ];
        routes.push(TransitRoute::new(
            next_id,
            format!("metro-{next_id}"),
            RouteMode::Metro,
            shape,
        ));
        next_id += 1;
    }

    // Near-duplicates: copy an existing route and jitter every shape point by
    // a tiny amount (well within one grid cell at the paper's resolutions).
    for _ in 0..config.duplicates {
        if routes.is_empty() {
            break;
        }
        let original = routes[rng.random_range(0..routes.len())].clone();
        let shape = original
            .shape
            .iter()
            .map(|p| {
                Point::new(
                    p.x + rng.random_range(-0.001..0.001),
                    p.y + rng.random_range(-0.001..0.001),
                )
            })
            .collect();
        routes.push(TransitRoute::new(
            next_id,
            format!("{}-rebranded", original.name),
            original.mode,
            shape,
        ));
        next_id += 1;
    }

    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spatial::Grid;

    #[test]
    fn route_length_and_resampling() {
        let route = TransitRoute::new(
            0,
            "test",
            RouteMode::Bus,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.3, 0.0),
                Point::new(0.3, 0.4),
            ],
        );
        assert!((route.length() - 0.7).abs() < 1e-12);
        assert!(!route.is_degenerate());
        let sampled = route.resample(0.05);
        // Spacing 0.05 over a 0.7-long polyline: at least 14 points plus ends.
        assert!(sampled.len() >= 15);
        assert_eq!(sampled.first(), Some(&Point::new(0.0, 0.0)));
        assert_eq!(sampled.last(), Some(&Point::new(0.3, 0.4)));
        // Consecutive samples are never farther apart than the spacing (plus
        // a small tolerance for the per-segment rounding).
        for w in sampled.windows(2) {
            assert!(w[0].distance(&w[1]) <= 0.05 + 1e-9);
        }
    }

    #[test]
    fn degenerate_routes_are_passed_through() {
        let single = TransitRoute::new(1, "dot", RouteMode::Ferry, vec![Point::new(1.0, 2.0)]);
        assert!(single.is_degenerate());
        assert_eq!(single.length(), 0.0);
        assert_eq!(single.resample(0.1), vec![Point::new(1.0, 2.0)]);
        let route = TransitRoute::new(
            2,
            "line",
            RouteMode::Bus,
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
        );
        // Non-positive spacing falls back to the raw shape.
        assert_eq!(route.resample(0.0).len(), 2);
    }

    #[test]
    fn to_dataset_preserves_identity() {
        let route = TransitRoute::new(
            7,
            "Bus 42",
            RouteMode::Bus,
            vec![Point::new(-77.0, 38.9), Point::new(-76.95, 38.92)],
        );
        let dataset = route.to_dataset(0.005);
        assert_eq!(dataset.id, 7);
        assert_eq!(dataset.name, "Bus 42");
        assert!(dataset.len() >= 2);
        assert_eq!(RouteMode::Bus.label(), "bus");
    }

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let config = NetworkConfig::default();
        let a = generate_network(&config);
        let b = generate_network(&config);
        assert_eq!(a, b);
        assert_eq!(
            a.len(),
            config.grid_routes + config.radial_routes + config.duplicates
        );
        // Ids are unique and dense.
        let mut ids: Vec<DatasetId> = a.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
        // Every route grids to a non-empty cell set at the paper's default
        // resolution.
        let grid = Grid::global(12).unwrap();
        for route in &a {
            let dataset = route.to_dataset(0.01);
            assert!(
                dataset.to_cell_set(&grid).is_ok(),
                "route {} has no cells",
                route.name
            );
        }
        // Different seeds give different jitter.
        let other = generate_network(&NetworkConfig { seed: 43, ..config });
        assert_ne!(a, other);
    }

    #[test]
    fn duplicates_stay_close_to_their_original() {
        let config = NetworkConfig {
            grid_routes: 4,
            radial_routes: 2,
            duplicates: 3,
            ..NetworkConfig::default()
        };
        let routes = generate_network(&config);
        let originals = config.grid_routes + config.radial_routes;
        for dup in &routes[originals..] {
            assert!(dup.name.ends_with("-rebranded"));
            // A rebranded route deviates from *some* original by < 0.01 deg on
            // every shape point.
            let close_to_original = routes[..originals].iter().any(|orig| {
                orig.shape.len() == dup.shape.len()
                    && orig
                        .shape
                        .iter()
                        .zip(dup.shape.iter())
                        .all(|(a, b)| a.distance(b) < 0.01)
            });
            assert!(
                close_to_original,
                "{} is not close to any original",
                dup.name
            );
        }
    }

    proptest! {
        #[test]
        fn prop_resampling_respects_spacing(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 2..8),
            spacing in 0.01f64..0.5,
        ) {
            let shape: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let route = TransitRoute::new(0, "r", RouteMode::Bus, shape.clone());
            let sampled = route.resample(spacing);
            // Endpoints preserved.
            prop_assert_eq!(sampled.first(), shape.first());
            prop_assert_eq!(sampled.last(), shape.last());
            // No gap larger than the spacing.
            for w in sampled.windows(2) {
                prop_assert!(w[0].distance(&w[1]) <= spacing + 1e-9);
            }
        }
    }
}
