//! Transfer-network planning driven by the coverage joinable search.
//!
//! The second half of the paper's Example 1: given a query corridor (the
//! route a planner starts from), find `k` routes that are directly or
//! indirectly connected to it and maximise the covered area — the routes a
//! rider could transfer to without an unreasonable walk.  On top of the raw
//! CJSP answer this module derives the *transfer points*: for every selected
//! route, the grid cell where it comes closest to the already-connected part
//! of the plan, which is where the planner would place the interchange.

use crate::route::TransitRoute;
use dits::{coverage_search, CoverageConfig, DatasetNode, DitsLocal, DitsLocalConfig};
use serde::{Deserialize, Serialize};
use spatial::zorder::cell_coords;
use spatial::{CellId, CellSet, DatasetId, Grid, Point};
use std::collections::HashMap;

/// Configuration of a transfer plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPlanConfig {
    /// Grid resolution θ used to rasterise the routes.
    pub resolution: u32,
    /// Resampling spacing along route polylines, in degrees.
    pub spacing: f64,
    /// Number of routes to add to the plan (the `k` of CJSP).
    pub k: usize,
    /// Maximum transfer distance in grid cells (the δ of CJSP): how far apart
    /// two routes may be while still counting as transferable.
    pub max_transfer_cells: f64,
    /// Leaf capacity of the temporary index.
    pub leaf_capacity: usize,
}

impl Default for TransferPlanConfig {
    fn default() -> Self {
        Self {
            resolution: 13,
            spacing: 0.005,
            k: 4,
            max_transfer_cells: 2.0,
            leaf_capacity: 10,
        }
    }
}

/// A transfer point between a newly added route and the existing plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPoint {
    /// The route being added.
    pub route: DatasetId,
    /// Grid cell of the interchange (on the added route, closest to the plan).
    pub cell: CellId,
    /// Approximate longitude/latitude of the interchange (cell centre).
    pub location: Point,
    /// Distance in cells between the added route and the plan at this point
    /// (0 when they share a cell).
    pub distance_cells: f64,
}

/// The result of planning transfers around a query corridor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Routes selected by the coverage search, in greedy order.
    pub selected: Vec<DatasetId>,
    /// One transfer point per selected route (same order).
    pub transfers: Vec<TransferPoint>,
    /// Covered cells of the final plan (query plus selected routes).
    pub coverage: usize,
    /// Covered cells of the query corridor alone.
    pub query_coverage: usize,
}

impl TransferPlan {
    /// Coverage gained over the query corridor alone.
    pub fn coverage_gain(&self) -> usize {
        self.coverage - self.query_coverage
    }
}

/// Plans transfers around a query corridor: selects up to `k` connected
/// routes with maximum coverage and derives a transfer point for each.
///
/// Routes that rasterise to no cell (or an invalid resolution) make the plan
/// degrade to "no selections" rather than fail.
pub fn plan_transfers(
    routes: &[TransitRoute],
    query: &TransitRoute,
    config: &TransferPlanConfig,
) -> TransferPlan {
    let empty = TransferPlan {
        selected: Vec::new(),
        transfers: Vec::new(),
        coverage: 0,
        query_coverage: 0,
    };
    let Ok(grid) = Grid::global(config.resolution) else {
        return empty;
    };
    let Ok(query_cells) = query.to_dataset(config.spacing).to_cell_set(&grid) else {
        return empty;
    };
    let nodes: Vec<DatasetNode> = routes
        .iter()
        .filter(|r| r.id != query.id)
        .filter_map(|r| DatasetNode::from_dataset(&grid, &r.to_dataset(config.spacing)).ok())
        .collect();
    let cells_by_id: HashMap<DatasetId, CellSet> =
        nodes.iter().map(|n| (n.id, n.cells.clone())).collect();
    let index = DitsLocal::build(
        nodes,
        DitsLocalConfig {
            leaf_capacity: config.leaf_capacity.max(1),
        },
    );
    let (result, _) = coverage_search(
        &index,
        &query_cells,
        CoverageConfig::new(config.k, config.max_transfer_cells),
    );

    // Derive transfer points by replaying the greedy merge order.
    let mut merged = query_cells.clone();
    let mut transfers = Vec::with_capacity(result.datasets.len());
    for id in &result.datasets {
        let cells = &cells_by_id[id];
        let (cell, distance_cells) = closest_cell(cells, &merged);
        transfers.push(TransferPoint {
            route: *id,
            cell,
            location: grid.cell_center(cell),
            distance_cells,
        });
        merged.union_in_place(cells);
    }

    TransferPlan {
        selected: result.datasets,
        transfers,
        coverage: result.coverage,
        query_coverage: result.query_coverage,
    }
}

/// The cell of `candidate` closest to `target`, with its distance in cells.
fn closest_cell(candidate: &CellSet, target: &CellSet) -> (CellId, f64) {
    let mut best_cell = candidate.cells().first().copied().unwrap_or(0);
    let mut best = f64::INFINITY;
    for c in candidate.iter() {
        let (cx, cy) = cell_coords(c);
        for t in target.iter() {
            let (tx, ty) = cell_coords(t);
            let dx = cx as f64 - tx as f64;
            let dy = cy as f64 - ty as f64;
            let d = (dx * dx + dy * dy).sqrt();
            if d < best {
                best = d;
                best_cell = c;
                if best == 0.0 {
                    return (best_cell, 0.0);
                }
            }
        }
    }
    (best_cell, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{generate_network, NetworkConfig, RouteMode};

    fn horizontal(id: DatasetId, y: f64, x0: f64, x1: f64) -> TransitRoute {
        TransitRoute::new(
            id,
            format!("route-{id}"),
            RouteMode::Bus,
            vec![Point::new(x0, y), Point::new(x1, y)],
        )
    }

    fn vertical(id: DatasetId, x: f64, y0: f64, y1: f64) -> TransitRoute {
        TransitRoute::new(
            id,
            format!("route-{id}"),
            RouteMode::Metro,
            vec![Point::new(x, y0), Point::new(x, y1)],
        )
    }

    #[test]
    fn crossing_routes_are_selected_with_zero_distance_transfers() {
        // Query: horizontal corridor.  Candidates: two vertical routes that
        // cross it and one far-away route.
        let query = horizontal(100, 38.90, -77.10, -76.90);
        let routes = vec![
            vertical(0, -77.05, 38.80, 39.00),
            vertical(1, -76.95, 38.80, 39.00),
            horizontal(2, 45.0, 10.0, 10.2),
        ];
        let plan = plan_transfers(&routes, &query, &TransferPlanConfig::default());
        assert_eq!(plan.selected.len(), 2);
        assert!(plan.selected.contains(&0) && plan.selected.contains(&1));
        assert_eq!(plan.transfers.len(), 2);
        for t in &plan.transfers {
            // Crossing routes share a cell with the corridor: distance 0.
            assert_eq!(t.distance_cells, 0.0);
            // The interchange lies on the corridor's latitude give or take a
            // cell.
            assert!((t.location.y - 38.90).abs() < 0.05);
        }
        assert!(plan.coverage_gain() > 0);
        assert!(plan.coverage > plan.query_coverage);
    }

    #[test]
    fn chained_transfers_reach_indirectly_connected_routes() {
        // Route 2 is reachable only through route 1: it lies a quarter of a
        // degree east of both the query corridor and route 0, far beyond the
        // transfer distance, but route 1 bridges the gap.  With k=3 the plan
        // must include all three, and route 2 can only appear after route 1.
        let query = horizontal(100, 38.90, -77.10, -77.05);
        let routes = vec![
            vertical(0, -77.05, 38.85, 38.95),
            horizontal(1, 38.95, -77.05, -76.80),
            vertical(2, -76.80, 38.95, 39.05),
        ];
        let plan = plan_transfers(
            &routes,
            &query,
            &TransferPlanConfig {
                k: 3,
                ..TransferPlanConfig::default()
            },
        );
        assert_eq!(plan.selected.len(), 3);
        // The greedy order must respect the chain: route 2 after route 1.
        let pos = |id: DatasetId| plan.selected.iter().position(|d| *d == id).unwrap();
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn k_and_transfer_distance_bound_the_plan() {
        let query = horizontal(100, 38.90, -77.10, -76.80);
        // Spaced wider than one grid cell (≈0.044° of longitude at θ=13) so
        // every route rasterises into its own column and contributes new
        // coverage.
        let routes: Vec<TransitRoute> = (0..6)
            .map(|i| vertical(i, -77.08 + i as f64 * 0.05, 38.80, 39.00))
            .collect();
        let small = plan_transfers(
            &routes,
            &query,
            &TransferPlanConfig {
                k: 2,
                ..TransferPlanConfig::default()
            },
        );
        assert_eq!(small.selected.len(), 2);
        // A one-cell transfer distance admits every crossing route (they
        // either share the crossing cell or sit in the neighbouring one after
        // rasterisation).
        let strict = plan_transfers(
            &routes,
            &query,
            &TransferPlanConfig {
                max_transfer_cells: 1.0,
                k: 6,
                ..TransferPlanConfig::default()
            },
        );
        assert_eq!(strict.selected.len(), 6);
        for t in &strict.transfers {
            assert!(t.distance_cells <= 1.0);
        }
    }

    #[test]
    fn far_away_routes_are_never_selected() {
        let query = horizontal(100, 38.90, -77.10, -76.90);
        let routes = vec![
            horizontal(0, 45.0, 10.0, 10.2),
            vertical(1, 120.0, -5.0, 5.0),
        ];
        let plan = plan_transfers(&routes, &query, &TransferPlanConfig::default());
        assert!(plan.selected.is_empty());
        assert!(plan.transfers.is_empty());
        assert_eq!(plan.coverage, plan.query_coverage);
        assert_eq!(plan.coverage_gain(), 0);
    }

    #[test]
    fn degenerate_inputs_degrade_gracefully() {
        let query = horizontal(100, 38.90, -77.10, -76.90);
        // No candidate routes at all.
        let plan = plan_transfers(&[], &query, &TransferPlanConfig::default());
        assert!(plan.selected.is_empty());
        assert!(plan.coverage > 0, "query itself still counts");
        // Invalid resolution.
        let plan = plan_transfers(
            &[vertical(0, -77.0, 38.8, 39.0)],
            &query,
            &TransferPlanConfig {
                resolution: 0,
                ..TransferPlanConfig::default()
            },
        );
        assert_eq!(plan.coverage, 0);
        // The query itself appears in the candidate list: it must not be
        // selected as its own transfer.
        let plan = plan_transfers(
            &[query.clone(), vertical(0, -77.0, 38.8, 39.0)],
            &query,
            &TransferPlanConfig::default(),
        );
        assert!(!plan.selected.contains(&query.id));
    }

    #[test]
    fn synthetic_network_produces_a_rich_plan() {
        let routes = generate_network(&NetworkConfig::default());
        let query = routes[0].clone();
        let plan = plan_transfers(
            &routes,
            &query,
            &TransferPlanConfig {
                k: 5,
                ..TransferPlanConfig::default()
            },
        );
        assert!(!plan.selected.is_empty());
        assert_eq!(plan.selected.len(), plan.transfers.len());
        assert!(plan.coverage >= plan.query_coverage);
        // Transfer distances are all within the configured bound.
        for t in &plan.transfers {
            assert!(t.distance_cells <= TransferPlanConfig::default().max_transfer_cells);
        }
    }
}
