//! Figs. 9–12 as criterion benches: OJSP search time of OverlapSearch and
//! the four baselines, swept over k and leaf capacity f.

use bench::{ExperimentEnv, IndexKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ojsp(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let queries = env.query_cells(10, theta);

    // Fig. 9: search time per algorithm at the default parameters.
    let mut group = c.benchmark_group("ojsp_by_algorithm");
    group.sample_size(10);
    for kind in IndexKind::all() {
        let index = kind.build(nodes.clone(), 10);
        group.bench_with_input(BenchmarkId::new("k10", kind.name()), &index, |b, index| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.overlap_search(q, 10));
                }
            });
        });
    }
    group.finish();

    // Fig. 9 x-axis: OverlapSearch as k grows.
    let mut group = c.benchmark_group("ojsp_overlapsearch_vs_k");
    group.sample_size(10);
    let dits = IndexKind::Dits.build(nodes.clone(), 10);
    for k in [10usize, 30, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    black_box(dits.overlap_search(q, k));
                }
            });
        });
    }
    group.finish();

    // Fig. 12: OverlapSearch vs Rtree as the leaf capacity f grows.
    let mut group = c.benchmark_group("ojsp_vs_leaf_capacity");
    group.sample_size(10);
    for f in [10usize, 30, 50] {
        let dits = IndexKind::Dits.build(nodes.clone(), f);
        let rtree = IndexKind::RTree.build(nodes.clone(), f);
        group.bench_with_input(BenchmarkId::new("OverlapSearch", f), &dits, |b, index| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.overlap_search(q, 10));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("Rtree", f), &rtree, |b, index| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.overlap_search(q, 10));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ojsp);
criterion_main!(benches);
