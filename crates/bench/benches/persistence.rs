//! Index persistence benchmarks: encode / decode throughput of the DITS-L
//! binary image against rebuilding the index from dataset nodes.
//!
//! Not a figure of the paper — an extension study justifying the persistence
//! layer: reloading an image should be comparable to (or cheaper than) a full
//! rebuild while also skipping the re-gridding of the raw data.

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, Criterion};
use dits::{decode_local, encode_local, DitsLocal, DitsLocalConfig};
use std::hint::black_box;

fn bench_persistence(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let index = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
    let image = encode_local(&index);

    let mut group = c.benchmark_group("index_persistence");
    group.sample_size(10);
    group.bench_function("rebuild_from_nodes", |b| {
        b.iter(|| black_box(DitsLocal::build(nodes.clone(), DitsLocalConfig::default())));
    });
    group.bench_function("encode_image", |b| {
        b.iter(|| black_box(encode_local(&index)));
    });
    group.bench_function("decode_image", |b| {
        b.iter(|| black_box(decode_local(&image).expect("valid image")));
    });
    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
