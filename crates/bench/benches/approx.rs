//! Exact vs approximate overlap joinable search.
//!
//! Not a figure of the paper — an extension study: how much faster is the
//! MinHash / LSH-Ensemble pipeline than the exact OverlapSearch, with and
//! without exact re-ranking of the shortlist, on the same synthetic source.

use approx_join::{ApproxConfig, ApproxOverlapIndex, LshConfig};
use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, Criterion};
use dits::{overlap_search, DitsLocal, DitsLocalConfig};
use std::hint::black_box;

fn bench_approx(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let queries = env.query_cells(10, theta);

    let exact_index = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
    let rerank_index = ApproxOverlapIndex::build(
        nodes.iter().map(|n| (n.id, &n.cells)),
        ApproxConfig::default(),
    );
    let sketch_only_index = ApproxOverlapIndex::build(
        nodes.iter().map(|n| (n.id, &n.cells)),
        ApproxConfig {
            exact_rerank: false,
            lsh: LshConfig::default(),
            ..ApproxConfig::default()
        },
    );

    let mut group = c.benchmark_group("approx_vs_exact_ojsp");
    group.sample_size(10);
    group.bench_function("exact_overlap_search", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(overlap_search(&exact_index, q, 10));
            }
        });
    });
    group.bench_function("approx_with_exact_rerank", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(rerank_index.search(q, 10));
            }
        });
    });
    group.bench_function("approx_sketch_only", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(sketch_only_index.search(q, 10));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
