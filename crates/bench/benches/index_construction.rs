//! Fig. 8 (left) as a criterion bench: construction time of the five indexes
//! over the Transit source at the default resolution, plus a resolution
//! sweep for DITS-L.

use bench::{ExperimentEnv, IndexKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_index_construction(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let mut group = c.benchmark_group("index_construction");
    group.sample_size(10);

    // All five indexes on the Transit source at θ = 12 (Fig. 8 columns).
    let nodes = env.dataset_nodes(3, 12);
    for kind in IndexKind::all() {
        group.bench_with_input(
            BenchmarkId::new("transit_theta12", kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| black_box(kind.build(nodes.clone(), 10)));
            },
        );
    }

    // DITS-L across the θ sweep (Fig. 8 x-axis).
    for theta in [10u32, 12, 14] {
        let nodes = env.dataset_nodes(3, theta);
        group.bench_with_input(BenchmarkId::new("dits_theta", theta), &nodes, |b, nodes| {
            b.iter(|| black_box(IndexKind::Dits.build(nodes.clone(), 10)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_construction);
criterion_main!(benches);
