//! Figs. 13–14 and 19–20 as criterion benches: wall-clock cost of the whole
//! multi-source exchange under the three query-distribution strategies
//! (bytes are reported by the `experiments` binary; here the end-to-end
//! request/serialise/search/reply loop is what is timed).

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multisource::{DistributionStrategy, FrameworkConfig, SearchRequest};
use std::hint::black_box;

fn bench_communication(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let queries = env.query_datasets(5);
    let strategies = [
        ("broadcast", DistributionStrategy::Broadcast),
        ("pruned", DistributionStrategy::Pruned),
        ("pruned_clipped", DistributionStrategy::PrunedClipped),
    ];

    let mut group = c.benchmark_group("multisource_ojsp");
    group.sample_size(10);
    for (name, strategy) in strategies {
        let framework = env.framework(FrameworkConfig {
            resolution: 11,
            strategy,
            ..FrameworkConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &framework, |b, fw| {
            let request = SearchRequest::ojsp_batch(queries.clone()).k(10);
            b.iter(|| black_box(fw.search(&request).expect("in-process search")));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("multisource_cjsp");
    group.sample_size(10);
    for (name, strategy) in strategies {
        let framework = env.framework(FrameworkConfig {
            resolution: 11,
            strategy,
            ..FrameworkConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &framework, |b, fw| {
            let request = SearchRequest::cjsp_batch(queries.clone()).k(10);
            b.iter(|| black_box(fw.search(&request).expect("in-process search")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_communication);
criterion_main!(benches);
