//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. OverlapSearch with and without the leaf-bound pruning of Lemmas 2–3.
//! 2. CoverageSearch with and without the spatial-merge strategy.
//! 3. Query clipping on and off in the multi-source exchange.
//! 4. Top-down median-split construction vs the bottom-up agglomerative
//!    construction the paper argues against (small corpus only — the
//!    bottom-up pairing is cubic).

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, Criterion};
use dits::{
    build_bottom_up, coverage_search, overlap_search_with_options, CoverageConfig, DitsLocal,
    DitsLocalConfig,
};
use multisource::{DistributionStrategy, FrameworkConfig, SearchRequest};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let index = DitsLocal::build(nodes, DitsLocalConfig { leaf_capacity: 10 });
    let queries = env.query_cells(10, theta);

    let mut group = c.benchmark_group("ablation_overlap_bounds");
    group.sample_size(10);
    group.bench_function("with_bounds", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(overlap_search_with_options(&index, q, 10, true));
            }
        });
    });
    group.bench_function("without_bounds", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(overlap_search_with_options(&index, q, 10, false));
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_spatial_merge");
    group.sample_size(10);
    group.bench_function("merge_on", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(coverage_search(
                    &index,
                    q,
                    CoverageConfig {
                        k: 10,
                        delta: 10.0,
                        merge_results: true,
                    },
                ));
            }
        });
    });
    group.bench_function("merge_off", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(coverage_search(
                    &index,
                    q,
                    CoverageConfig {
                        k: 10,
                        delta: 10.0,
                        merge_results: false,
                    },
                ));
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_query_clipping");
    group.sample_size(10);
    let raw_queries = env.query_datasets(5);
    for (name, strategy) in [
        ("clipped", DistributionStrategy::PrunedClipped),
        ("unclipped", DistributionStrategy::Pruned),
    ] {
        let framework = env.framework(FrameworkConfig {
            resolution: 11,
            strategy,
            ..FrameworkConfig::default()
        });
        group.bench_function(name, |b| {
            let request = SearchRequest::ojsp_batch(raw_queries.clone()).k(10);
            b.iter(|| black_box(framework.search(&request).expect("in-process search")));
        });
    }
    group.finish();

    // Construction strategy: the bottom-up pairing is cubic, so the ablation
    // uses a small slice of the source.
    let small_nodes: Vec<_> = env.dataset_nodes(3, theta).into_iter().take(300).collect();
    let mut group = c.benchmark_group("ablation_construction_strategy");
    group.sample_size(10);
    group.bench_function("top_down_median_split", |b| {
        b.iter(|| {
            black_box(DitsLocal::build(
                small_nodes.clone(),
                DitsLocalConfig { leaf_capacity: 10 },
            ))
        });
    });
    group.bench_function("bottom_up_agglomerative", |b| {
        b.iter(|| {
            black_box(build_bottom_up(
                small_nodes.clone(),
                DitsLocalConfig { leaf_capacity: 10 },
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
