//! Price-aware coverage search benchmarks.
//!
//! Not a figure of the paper — an extension study for the future-work
//! direction: the budgeted coverage search against the unbudgeted
//! CoverageSearch it generalises, and the weighted variant against the
//! unweighted one, all on the same synthetic source.

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, Criterion};
use dits::{coverage_search, CoverageConfig, DitsLocal, DitsLocalConfig};
use pricing::{
    budgeted_coverage_search, weighted_coverage_search, BudgetedConfig, CellWeights, PriceBook,
    PricingModel, WeightedConfig,
};
use std::hint::black_box;

fn bench_pricing(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let queries = env.query_cells(10, theta);
    let index = DitsLocal::build(nodes.clone(), DitsLocalConfig::default());
    let model = PricingModel::PerCell {
        rate: 0.5,
        minimum: 1.0,
    };
    let prices = PriceBook::from_model(&model, nodes.iter());
    let weights = CellWeights::uniform(1.0);

    let mut group = c.benchmark_group("pricing_coverage_variants");
    group.sample_size(10);
    group.bench_function("coverage_search_k10", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(coverage_search(&index, q, CoverageConfig::new(10, 10.0)));
            }
        });
    });
    group.bench_function("budgeted_coverage_search", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(budgeted_coverage_search(
                    &index,
                    q,
                    &prices,
                    BudgetedConfig::new(200.0, 10.0),
                ));
            }
        });
    });
    group.bench_function("weighted_coverage_search_k10", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(weighted_coverage_search(
                    &index,
                    q,
                    &weights,
                    WeightedConfig::new(10, 10.0),
                ));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
