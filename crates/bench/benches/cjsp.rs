//! Figs. 15–18 as criterion benches: CJSP search time of CoverageSearch,
//! SG+DITS and SG, swept over k and δ.

use baselines::{sg_coverage_search, sg_dits_coverage_search};
use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dits::{coverage_search, CoverageConfig, DitsLocal, DitsLocalConfig};
use std::hint::black_box;

fn bench_cjsp(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let theta = 12;
    let nodes = env.dataset_nodes(3, theta);
    let index = DitsLocal::build(nodes.clone(), DitsLocalConfig { leaf_capacity: 10 });
    let queries = env.query_cells(5, theta);
    let delta = 10.0;

    // Fig. 15 columns: the three algorithms at the default parameters.
    let mut group = c.benchmark_group("cjsp_by_algorithm");
    group.sample_size(10);
    group.bench_function("CoverageSearch", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(coverage_search(&index, q, CoverageConfig::new(10, delta)));
            }
        });
    });
    group.bench_function("SG+DITS", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(sg_dits_coverage_search(&index, q, 10, delta));
            }
        });
    });
    group.bench_function("SG", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(sg_coverage_search(&nodes, q, 10, delta));
            }
        });
    });
    group.finish();

    // Fig. 18 x-axis: CoverageSearch as δ grows.
    let mut group = c.benchmark_group("cjsp_coveragesearch_vs_delta");
    group.sample_size(10);
    for d in [0.0f64, 10.0, 20.0] {
        group.bench_with_input(BenchmarkId::from_parameter(d as u32), &d, |b, &d| {
            b.iter(|| {
                for q in &queries {
                    black_box(coverage_search(&index, q, CoverageConfig::new(10, d)));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cjsp);
criterion_main!(benches);
