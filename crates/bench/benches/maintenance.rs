//! Maintenance throughput: interleaved update/query batches through the
//! cross-layer maintenance pipeline (`MultiSourceFramework::apply_updates`:
//! wire message → DITS-L mutation → DITS-G summary refresh) versus the
//! naive alternative of rebuilding the whole framework from the mutated raw
//! data before every query batch.
//!
//! Alongside the criterion groups, the bench prints a one-line ops/sec
//! summary so the two strategies can be compared at a glance.

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use multisource::{FrameworkConfig, MultiSourceFramework, SearchRequest, UpdateOp};
use spatial::{Point, SourceId, SpatialDataset};
use std::hint::black_box;
use std::time::Instant;

/// Number of maintenance operations per batch (the paper's β).
const BETA: usize = 64;
/// Queries interleaved after each maintenance batch.
const QUERIES: usize = 8;

fn synth_dataset(id: u32, salt: u32) -> SpatialDataset {
    let base_lon = -100.0 + f64::from(salt % 50) * 0.6;
    let base_lat = 25.0 + f64::from(salt % 20) * 0.4;
    let points = (0..4)
        .map(|j| {
            Point::new(
                base_lon + f64::from(j) * 0.01,
                base_lat + f64::from(j % 2) * 0.01,
            )
        })
        .collect();
    SpatialDataset::new(id, points)
}

/// One mixed maintenance batch for `source`: half inserts, a quarter
/// relocating updates of previously inserted datasets, a quarter deletes.
fn make_batch(source: usize, round: u32, existing: &[SpatialDataset]) -> Vec<UpdateOp> {
    let base = 500_000 + round * BETA as u32;
    (0..BETA as u32)
        .map(|i| {
            let salt = round * 31 + i * 7 + source as u32;
            match i % 4 {
                0 | 1 => UpdateOp::Insert(synth_dataset(base + i, salt)),
                2 => {
                    let target = existing[(salt as usize) % existing.len()].id;
                    UpdateOp::Update(synth_dataset(target, salt))
                }
                _ => {
                    let target = existing[(salt as usize * 13) % existing.len()].id;
                    UpdateOp::Delete(target)
                }
            }
        })
        .collect()
}

/// Applies `rounds` interleaved maintenance/query batches incrementally.
fn run_incremental(
    mut fw: MultiSourceFramework,
    batches: &[(SourceId, Vec<UpdateOp>)],
    queries: &[SpatialDataset],
) -> MultiSourceFramework {
    let request = SearchRequest::ojsp_batch(queries.to_vec()).k(5);
    for (source, batch) in batches {
        fw.apply_updates(*source, batch).expect("valid batch");
        black_box(fw.search(&request).expect("in-process search"));
    }
    fw
}

/// The rebuild baseline: fold each batch into the raw data, rebuild the
/// whole framework, then run the same query batch.
fn run_full_rebuild(
    mut data: Vec<(String, Vec<SpatialDataset>)>,
    batches: &[(SourceId, Vec<UpdateOp>)],
    queries: &[SpatialDataset],
    config: FrameworkConfig,
) -> MultiSourceFramework {
    // One build per batch, nothing more: both strategies start from an
    // already-built deployment, so charging the baseline an extra initial
    // build would bias the comparison toward the incremental path.
    let mut fw = None;
    let request = SearchRequest::ojsp_batch(queries.to_vec()).k(5);
    for (source, batch) in batches {
        let datasets = &mut data[usize::from(*source)].1;
        for op in batch {
            match op {
                UpdateOp::Insert(d) => {
                    if !datasets.iter().any(|e| e.id == d.id) {
                        datasets.push(d.clone());
                    }
                }
                UpdateOp::Update(d) => {
                    if let Some(e) = datasets.iter_mut().find(|e| e.id == d.id) {
                        *e = d.clone();
                    }
                }
                UpdateOp::Delete(id) => datasets.retain(|e| e.id != *id),
            }
        }
        let rebuilt = MultiSourceFramework::build(&data, config);
        black_box(rebuilt.search(&request).expect("in-process search"));
        fw = Some(rebuilt);
    }
    fw.unwrap_or_else(|| MultiSourceFramework::build(&data, config))
}

fn bench_maintenance(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let config = FrameworkConfig {
        resolution: 11,
        ..FrameworkConfig::default()
    };
    let fw0 = env.framework(config);
    let queries = env.query_datasets(QUERIES);
    let rounds = 4u32;
    let batches: Vec<(SourceId, Vec<UpdateOp>)> = (0..rounds)
        .map(|r| {
            let source = (r as usize) % fw0.sources().len();
            (
                source as SourceId,
                make_batch(source, r, env.source(source)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("maintenance_interleaved");
    group.sample_size(10);
    group.bench_function("incremental_apply_updates", |b| {
        b.iter_batched(
            || fw0.clone(),
            |fw| run_incremental(fw, &batches, &queries),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("full_rebuild", |b| {
        b.iter_batched(
            || env.source_data.clone(),
            |data| run_full_rebuild(data, &batches, &queries, config),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // One-line ops/sec summary: maintenance operations absorbed per second,
    // query batches included in both loops so the comparison is end to end.
    let total_ops = (rounds as usize * BETA) as f64;
    let start = Instant::now();
    black_box(run_incremental(fw0.clone(), &batches, &queries));
    let incremental = total_ops / start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(run_full_rebuild(
        env.source_data.clone(),
        &batches,
        &queries,
        config,
    ));
    let rebuild = total_ops / start.elapsed().as_secs_f64();
    eprintln!(
        "maintenance throughput: {incremental:.0} ops/s incremental vs {rebuild:.0} ops/s full-rebuild ({:.1}x)",
        incremental / rebuild.max(f64::EPSILON)
    );
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
