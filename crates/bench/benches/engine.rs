//! Query-engine scaling: batch-OJSP and batch-CJSP throughput as a function
//! of the engine's worker count, on the synthetic five-source workload.
//!
//! Each `(query, candidate source)` pair is one shard task, so a batch of
//! `q` queries over five sources exposes up to `5q` units of parallelism;
//! the workers axis shows how much of it the hardware can absorb.

use bench::ExperimentEnv;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multisource::{FrameworkConfig, SearchRequest};
use std::hint::black_box;

fn worker_counts() -> Vec<usize> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, 4];
    if cpus > 4 {
        counts.push(cpus);
    }
    counts.dedup();
    counts
}

fn bench_engine_scaling(c: &mut Criterion) {
    let env = ExperimentEnv::small();
    let queries = env.query_datasets(20);
    let framework = env.framework(FrameworkConfig {
        resolution: 11,
        ..FrameworkConfig::default()
    });

    let mut group = c.benchmark_group("engine_ojsp_batch");
    group.sample_size(10);
    for workers in worker_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let engine = framework.engine_with_workers(workers);
                let request = SearchRequest::ojsp_batch(queries.clone()).k(10);
                b.iter(|| black_box(engine.run(&request).expect("in-process search")));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("engine_cjsp_batch");
    group.sample_size(10);
    for workers in worker_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let engine = framework.engine_with_workers(workers);
                let request = SearchRequest::cjsp_batch(queries.clone()).k(10);
                b.iter(|| black_box(engine.run(&request).expect("in-process search")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
