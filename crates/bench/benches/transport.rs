//! Transport overhead: the same OJSP / kNN query batches executed over the
//! in-process transport and over a loopback-TCP federation (`SourceServer`
//! threads speaking the framed protocol).
//!
//! Answers and protocol byte counts are identical by construction (asserted
//! by `crates/multisource/tests/transport.rs`); what this bench isolates is
//! the *wall-clock* cost of the wire — connect, frame, serialise, context
//! switch — per query batch, so wire-format regressions show up in the perf
//! trajectory next to the search-side benches.
//!
//! ```text
//! cargo bench --bench transport
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{generate_source, paper_sources, select_queries, GeneratorConfig, SourceScale};
use multisource::{
    DataCenter, DistributionStrategy, EngineConfig, FrameworkConfig, MultiSourceFramework,
    QueryEngine, SearchRequest, SourceServer, TcpTransport,
};
use spatial::SpatialDataset;
use std::hint::black_box;

struct Env {
    framework: MultiSourceFramework,
    queries: Vec<SpatialDataset>,
}

fn build_env() -> Env {
    let generator = GeneratorConfig {
        scale: SourceScale::Custom(400),
        seed: 4242,
        max_points_per_dataset: Some(120),
    };
    let source_data: Vec<(String, Vec<SpatialDataset>)> = paper_sources()
        .iter()
        .map(|p| (p.name.to_string(), generate_source(p, &generator)))
        .collect();
    let pool: Vec<SpatialDataset> = source_data
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let queries = select_queries(&pool, 16, 7);
    let framework = MultiSourceFramework::try_build(
        &source_data,
        FrameworkConfig {
            resolution: 11,
            strategy: DistributionStrategy::PrunedClipped,
            ..FrameworkConfig::default()
        },
    )
    .expect("static configuration is valid");
    Env { framework, queries }
}

fn bench_transports(c: &mut Criterion) {
    let env = build_env();
    let fw = &env.framework;

    // Stand up the loopback federation once; servers are detached threads.
    let endpoints: Vec<_> = fw
        .sources()
        .iter()
        .map(|s| {
            SourceServer::spawn("127.0.0.1:0", s.clone())
                .expect("bind loopback")
                .endpoint()
        })
        .collect();
    let tcp = TcpTransport::new(endpoints);
    let center = DataCenter::from_transport(&tcp, fw.config().leaf_capacity)
        .expect("summary poll over loopback");
    let config = EngineConfig {
        workers: fw.config().workers,
        strategy: fw.config().strategy,
        delta_cells: fw.config().delta_cells,
        ..EngineConfig::default()
    };
    let remote = QueryEngine::new(&center, &tcp, config);

    let ojsp = SearchRequest::ojsp_batch(env.queries.clone()).k(10);
    let knn = SearchRequest::knn_batch(env.queries.clone()).k(5);

    let mut group = c.benchmark_group("transport");
    group.bench_function("ojsp_batch_in_process", |b| {
        b.iter(|| black_box(fw.search(&ojsp).expect("in-process search")));
    });
    group.bench_function("ojsp_batch_tcp_loopback", |b| {
        b.iter(|| black_box(remote.run(&ojsp).expect("loopback search")));
    });
    group.bench_function("knn_batch_in_process", |b| {
        b.iter(|| black_box(fw.search(&knn).expect("in-process search")));
    });
    group.bench_function("knn_batch_tcp_loopback", |b| {
        b.iter(|| black_box(remote.run(&knn).expect("loopback search")));
    });
    group.finish();

    // Sanity: the two transports agreed on the last answers (cheap spot
    // check so a drifting wire format fails the bench run, not only CI).
    let local = fw.search(&ojsp).expect("in-process search");
    let over_tcp = remote.run(&ojsp).expect("loopback search");
    assert_eq!(local.results, over_tcp.results);
    assert_eq!(local.comm, over_tcp.comm);
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
